"""Cost-based planning of the Section 5 pipeline, with EXPLAIN.

The repo grew four ways to answer "count the objects passing through
these geometries over this window": the serial scan (the paper's
baseline), the grid-indexed scan, the sharded fan-out
(:class:`~repro.parallel.ShardedExecutor`) and the materialized
pre-aggregation route with its sliver hybrid (:mod:`repro.preagg`).
Choosing between them was ad hoc — preagg routes when it can, sharding
happens when the caller constructed an executor.  This module makes the
choice a *costed* decision:

* a **statistics layer** — :func:`table_statistics` (MOFT row/object
  counts and time extent), :func:`geometry_statistics` (per-answer
  bbox-coverage selectivity of the queried geometries against the
  table's spatial extent) and the store-side figures exposed by
  :meth:`~repro.preagg.PreAggStore.stats` /
  :meth:`~repro.preagg.PreAggStore.window_coverage`;

* a **cost model** (:class:`CostModel`) pricing every candidate
  strategy in one abstract unit (≈ one geometry intersection check):
  rows×geometries for the serial scan, probe + coverage-discounted
  checks for the indexed scan, scan/speedup + per-task overhead (+
  per-row pickling for processes) for the sharded fan-out, and granule
  reads + residual sliver scan for the pre-agg hybrid;

* an **EXPLAIN surface** — :func:`plan_count_objects_through` returns a
  :class:`QueryPlan` tree, :func:`planned_count_objects_through`
  executes the chosen strategy (answers are strategy-independent; the
  differential suite in ``tests/parallel`` asserts it), and
  :func:`explain` renders the tree with estimated vs. *actual* rows and
  seconds pulled from the :mod:`repro.obs` counters and stage timers
  (``scan_rows``, ``segment_scan``, ``preagg_lookup``, …).

The planner never changes execution semantics: every strategy funnels
through :func:`repro.query.evaluator.objects_through` with the flags
that select it, so a planner-picked path is bit-identical to calling
the evaluator directly.  The cost constants are calibration knobs, not
truth — the invariant the tests pin is that *whatever* the constants,
the chosen strategy returns the same answer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import EvaluationError
from repro.geometry.overlay import geometry_bbox
from repro.mo.moft import MOFT
from repro.obs import EvaluationStats
from repro.query.evaluator import (
    ShardedTrajectoryExecutor,
    geometric_subquery,
    validated_window,
    window_restricted,
)
from repro.query.region import EvaluationContext


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableStatistics:
    """Row/object counts and time extent of one MOFT."""

    name: str
    rows: int
    objects: int
    time_min: Optional[float]
    time_max: Optional[float]


def table_statistics(moft: MOFT) -> TableStatistics:
    """Collect :class:`TableStatistics` from a MOFT (cheap, columnar)."""
    if len(moft) == 0:
        return TableStatistics(moft.name, 0, 0, None, None)
    tmin, tmax = moft.time_range()
    return TableStatistics(
        moft.name, len(moft), len(moft.objects()), float(tmin), float(tmax)
    )


@dataclass(frozen=True)
class GeometryStatistics:
    """Selectivity figures of one geometric answer against one MOFT.

    ``coverage`` estimates the fraction of trajectory probes whose
    bounding box meets some answer geometry — the bbox area of the
    geometries over the table's sampled spatial extent, clamped to
    [0, 1].  It discounts the per-probe check count on the grid-indexed
    path: a probe only reaches real intersection tests for geometries
    the grid did not prune.
    """

    count: int
    coverage: float


def geometry_statistics(
    context: EvaluationContext,
    target: Tuple[str, str],
    ids: Set[Hashable],
    moft: MOFT,
) -> GeometryStatistics:
    """Estimate answer-geometry selectivity against the MOFT's extent."""
    if not ids:
        return GeometryStatistics(0, 0.0)
    if len(moft) == 0:
        return GeometryStatistics(len(ids), 1.0)
    layer, kind = target
    elements = context.gis.layer(layer).elements(kind)
    _, x, y = moft.as_arrays()
    extent = (float(x.max()) - float(x.min())) * (
        float(y.max()) - float(y.min())
    )
    if extent <= 0:
        return GeometryStatistics(len(ids), 1.0)
    area = 0.0
    for gid in ids:
        box = geometry_bbox(elements[gid])
        area += max(0.0, box.max_x - box.min_x) * max(
            0.0, box.max_y - box.min_y
        )
    return GeometryStatistics(len(ids), min(1.0, area / extent))


# ---------------------------------------------------------------------------
# The cost model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CostModel:
    """Prices candidate strategies in abstract check-equivalent units.

    One unit ≈ one geometry×probe intersection test.  The constants are
    deliberately coarse: the planner only needs the *ordering* of
    strategies to be sane, and the differential tests pin that the
    answer is identical whatever it picks.
    """

    #: One geometry×probe intersection test.
    check_cost: float = 1.0
    #: Touching one MOFT row (iteration, history reconstruction).
    row_cost: float = 0.05
    #: One grid-index probe per trajectory probe.
    probe_cost: float = 0.25
    #: Building a grid index, per geometry (skipped when cached).
    index_build_per_geometry: float = 8.0
    #: Reading one store cell run entry, per geometry per granule.
    granule_cost: float = 0.5
    #: Fixed per-shard-task overhead by backend.
    serial_task_overhead: float = 2.0
    thread_task_overhead: float = 400.0
    process_task_overhead: float = 20000.0
    #: Shipping one MOFT row across the process boundary (pickling).
    process_row_ship_cost: float = 0.5
    #: Effective speedup of the threads backend — the trajectory scan is
    #: pure Python, so the GIL caps parallelism just above 1.
    thread_speedup: float = 1.15
    #: Don't cut shards smaller than this many rows.
    min_rows_per_shard: int = 256

    def scan_cost(
        self,
        rows: int,
        n_geometries: int,
        coverage: float,
        indexed: bool,
        index_cached: bool = True,
    ) -> float:
        """Cost of one trajectory scan (serial or grid-indexed)."""
        if not indexed:
            per_row = self.row_cost + n_geometries * self.check_cost
            return rows * per_row
        per_row = (
            self.row_cost
            + self.probe_cost
            + coverage * n_geometries * self.check_cost
        )
        cost = rows * per_row
        if not index_cached:
            cost += n_geometries * self.index_build_per_geometry
        return cost

    def sharded_cost(
        self, scan: float, backend: str, n_shards: int, rows: int
    ) -> float:
        """Cost of fanning a scan of cost ``scan`` over ``n_shards``."""
        if backend == "processes":
            speedup = float(max(1, n_shards))
            overhead = (
                n_shards * self.process_task_overhead
                + rows * self.process_row_ship_cost
            )
        elif backend == "threads":
            speedup = self.thread_speedup
            overhead = n_shards * self.thread_task_overhead
        else:
            speedup = 1.0
            overhead = n_shards * self.serial_task_overhead
        return scan / speedup + overhead

    def preagg_cost(
        self,
        granules: int,
        n_geometries: int,
        sliver_rows: int,
        coverage: float,
    ) -> float:
        """Cost of the pre-agg lookup plus the residual sliver scan."""
        lookup = granules * n_geometries * self.granule_cost
        if sliver_rows:
            lookup += self.scan_cost(
                sliver_rows, n_geometries, coverage, indexed=True
            )
        return lookup

    def choose_shard_count(self, rows: int, cpus: int) -> int:
        """Shard count balancing per-task overhead against parallelism."""
        by_rows = max(1, rows // max(1, self.min_rows_per_shard))
        return max(1, min(max(1, cpus), by_rows))


# ---------------------------------------------------------------------------
# Plan trees
# ---------------------------------------------------------------------------


@dataclass
class PlanNode:
    """One operator of a plan tree, with estimates and (later) actuals."""

    op: str
    detail: str
    est_rows: Optional[int] = None
    est_cost: Optional[float] = None
    children: Tuple["PlanNode", ...] = ()
    actual_rows: Optional[int] = None
    actual_seconds: Optional[float] = None

    def render(self, indent: int = 0) -> List[str]:
        pad = "  " * indent
        parts = []
        if self.est_rows is not None:
            parts.append(f"est_rows={self.est_rows}")
        if self.est_cost is not None:
            parts.append(f"est_cost={self.est_cost:.1f}")
        if self.actual_rows is not None:
            parts.append(f"actual_rows={self.actual_rows}")
        if self.actual_seconds is not None:
            parts.append(f"actual_s={self.actual_seconds:.6f}")
        suffix = f"  ({', '.join(parts)})" if parts else ""
        lines = [f"{pad}{self.op}[{self.detail}]{suffix}"]
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, op: str) -> Optional["PlanNode"]:
        for node in self.walk():
            if node.op == op:
                return node
        return None


#: The strategies the planner knows how to price and execute.
STRATEGIES = ("serial", "grid", "sharded", "preagg")


@dataclass
class QueryPlan:
    """A costed, renderable plan for one through-style aggregate."""

    strategy: str
    root: PlanNode
    est_cost: float
    alternatives: Tuple[Tuple[str, float], ...]
    table: TableStatistics
    geometry: GeometryStatistics
    shard_count: Optional[int] = None
    shard_backend: Optional[str] = None
    executed: bool = False
    result_count: Optional[int] = None

    def render(self) -> str:
        """The EXPLAIN text: the plan tree plus the rejected candidates."""
        header = (
            f"QueryPlan strategy={self.strategy} "
            f"est_cost={self.est_cost:.1f}"
        )
        if self.executed:
            header += f" (executed: count={self.result_count})"
        lines = [header]
        lines.extend(self.root.render(1))
        if self.alternatives:
            rejected = ", ".join(
                f"{name}={cost:.1f}" for name, cost in self.alternatives
            )
            lines.append(f"  rejected: {rejected}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


def _available_cpus() -> int:
    from repro.parallel.backends import available_cpus

    return available_cpus()


class _ShardHint:
    """Adapter forwarding a planner-chosen shard count to an executor."""

    def __init__(
        self, executor: ShardedTrajectoryExecutor, n_shards: int
    ) -> None:
        self.executor = executor
        self.n_shards = n_shards

    def matching_objects(self, counter, moft, stats=None):
        return self.executor.matching_objects(
            counter, moft, stats, n_shards=self.n_shards
        )


def plan_count_objects_through(
    context: EvaluationContext,
    target: Tuple[str, str],
    constraints: Sequence[Tuple[str, Tuple[str, str]]],
    moft_name: str = "FM",
    window: Optional[Tuple[float, float]] = None,
    executor: Optional[ShardedTrajectoryExecutor] = None,
    cost_model: Optional[CostModel] = None,
    force_strategy: Optional[str] = None,
) -> QueryPlan:
    """Price every applicable strategy and return the cheapest as a plan.

    Candidates: ``serial`` (unindexed scan), ``grid`` (indexed scan,
    always applicable), ``sharded`` (only when ``executor`` is given —
    the plan records the chosen shard count and the executor's backend)
    and ``preagg`` (only when a registered fresh store covers the
    queried geometries and the window holds a whole granule).

    The geometric subquery runs *during planning* — its answer drives
    geometry selectivity and pre-agg matching, it is cheap against the
    overlay, and its ids are exactly what execution would recompute.

    ``force_strategy`` bypasses the cost comparison (used by the
    differential tests to drive every strategy over the same query);
    forcing an inapplicable strategy raises :class:`EvaluationError`.
    """
    model = cost_model if cost_model is not None else CostModel()
    moft = context.moft(moft_name)
    window = validated_window(moft, window)
    ids = geometric_subquery(context, target, constraints)
    table = table_statistics(moft)
    geometry = geometry_statistics(context, target, ids, moft)

    if window is None:
        scan_rows = table.rows
    else:
        scan_rows = len(window_restricted(moft, window))
    layer, kind = target
    n_geoms = geometry.count
    index_cached = (layer, kind, frozenset(ids)) in context._grid_cache

    costs: Dict[str, float] = {}
    if n_geoms == 0:
        # Empty geometric answer: every strategy degenerates to "return
        # the empty set".  Keep the serial label with zero cost.
        costs["serial"] = 0.0
        costs["grid"] = 0.0
    else:
        costs["serial"] = model.scan_cost(
            scan_rows, n_geoms, geometry.coverage, indexed=False
        )
        costs["grid"] = model.scan_cost(
            scan_rows,
            n_geoms,
            geometry.coverage,
            indexed=True,
            index_cached=index_cached,
        )

    shard_count: Optional[int] = None
    shard_backend: Optional[str] = None
    if executor is not None and n_geoms:
        shard_backend = getattr(
            getattr(executor, "backend", None), "name", "serial"
        )
        shard_count = model.choose_shard_count(scan_rows, _available_cpus())
        costs["sharded"] = model.sharded_cost(
            costs["grid"], shard_backend, shard_count, scan_rows
        )

    preagg_detail: Optional[Tuple[str, Tuple[int, int], int]] = None
    if n_geoms:
        store = context.preagg_for(moft, layer, kind, ids)
        if store is not None and not store.is_stale():
            start, end = (window if window is not None else (None, None))
            coverage = store.window_coverage(start, end)
            if coverage.covered:
                run = coverage.run
                granules = run[1] - run[0] + 1
                costs["preagg"] = model.preagg_cost(
                    granules, n_geoms, coverage.sliver_rows,
                    geometry.coverage,
                )
                preagg_detail = (store.name, run, coverage.sliver_rows)

    if force_strategy is not None:
        if force_strategy not in STRATEGIES:
            raise EvaluationError(
                f"unknown strategy {force_strategy!r}; "
                f"expected one of {STRATEGIES}"
            )
        if force_strategy not in costs:
            raise EvaluationError(
                f"strategy {force_strategy!r} is not applicable here "
                f"(candidates: {sorted(costs)})"
            )
        chosen = force_strategy
    else:
        chosen = min(costs, key=lambda name: costs[name])

    geo_node = PlanNode(
        op="GeometricSubquery",
        detail=(
            f"target={layer}:{kind}, constraints={len(constraints)}"
        ),
        est_rows=n_geoms,
    )
    window_label = (
        "window=full" if window is None else f"window=[{window[0]}, {window[1]}]"
    )
    if chosen in ("serial", "grid"):
        scan_node = PlanNode(
            op="SerialScan" if chosen == "serial" else "GridScan",
            detail=(
                f"moft={moft_name}, {window_label}, geoms={n_geoms}"
                + ("" if chosen == "serial" else
                   f", coverage={geometry.coverage:.3f}"
                   f", index_cached={index_cached}")
            ),
            est_rows=scan_rows,
            est_cost=costs[chosen],
        )
        body = scan_node
    elif chosen == "sharded":
        scan_node = PlanNode(
            op="GridScan",
            detail=(
                f"moft={moft_name}, {window_label}, geoms={n_geoms}, "
                f"per_shard"
            ),
            est_rows=scan_rows,
            est_cost=costs["grid"],
        )
        body = PlanNode(
            op="ShardFanout",
            detail=f"backend={shard_backend}, shards={shard_count}",
            est_rows=scan_rows,
            est_cost=costs["sharded"],
            children=(scan_node,),
        )
    else:  # preagg
        assert preagg_detail is not None
        store_name, run, sliver_rows = preagg_detail
        children: Tuple[PlanNode, ...] = ()
        if sliver_rows:
            children = (
                PlanNode(
                    op="SliverScan",
                    detail=f"moft={moft_name}, geoms={n_geoms}",
                    est_rows=sliver_rows,
                    est_cost=model.scan_cost(
                        sliver_rows, n_geoms, geometry.coverage,
                        indexed=True,
                    ),
                ),
            )
        body = PlanNode(
            op="PreAggLookup",
            detail=(
                f"store={store_name}, run={run[0]}..{run[1]}, "
                f"granules={run[1] - run[0] + 1}"
            ),
            est_rows=sliver_rows,
            est_cost=costs["preagg"],
            children=children,
        )
    root = PlanNode(
        op="Aggregate",
        detail=f"count_objects_through, strategy={chosen}",
        est_rows=1,
        est_cost=costs[chosen],
        children=(geo_node, body),
    )
    alternatives = tuple(
        sorted(
            ((name, cost) for name, cost in costs.items() if name != chosen),
            key=lambda pair: pair[1],
        )
    )
    return QueryPlan(
        strategy=chosen,
        root=root,
        est_cost=costs[chosen],
        alternatives=alternatives,
        table=table,
        geometry=geometry,
        shard_count=shard_count if chosen == "sharded" else None,
        shard_backend=shard_backend if chosen == "sharded" else None,
    )


# ---------------------------------------------------------------------------
# Execution with actuals
# ---------------------------------------------------------------------------


def execute_plan(
    plan: QueryPlan,
    context: EvaluationContext,
    target: Tuple[str, str],
    constraints: Sequence[Tuple[str, Tuple[str, str]]],
    moft_name: str = "FM",
    window: Optional[Tuple[float, float]] = None,
    executor: Optional[ShardedTrajectoryExecutor] = None,
) -> int:
    """Run the plan's chosen strategy; fill the tree with actuals.

    Every strategy funnels through
    :func:`repro.query.evaluator.objects_through` with the flags that
    select it, so the answer is identical whichever strategy the cost
    model picked — the planner only chooses *how*, never *what*.
    Actual rows come from the ``scan_rows`` / ``sliver_scan_rows``
    counters, actual seconds from the ``segment_scan`` /
    ``geometric_subquery`` / ``preagg_lookup`` stage timers, bracketed
    via :meth:`~repro.obs.PipelineStats.snapshot` /
    :meth:`~repro.obs.PipelineStats.since` on the context observer.
    """
    from repro.query.evaluator import objects_through

    run_stats = EvaluationStats()
    before = context.obs.snapshot()
    started = time.perf_counter()
    strategy = plan.strategy
    if strategy == "preagg":
        matched = objects_through(
            context, target, constraints, moft_name=moft_name,
            stats=run_stats, window=window, use_preagg=True,
        )
    elif strategy == "sharded":
        if executor is None:
            raise EvaluationError(
                "plan chose the sharded strategy but no executor was "
                "passed to execute it"
            )
        hinted = (
            _ShardHint(executor, plan.shard_count)
            if plan.shard_count is not None
            else executor
        )
        matched = objects_through(
            context, target, constraints, moft_name=moft_name,
            stats=run_stats, window=window, use_preagg=False,
            executor=hinted,
        )
    elif strategy == "serial":
        matched = objects_through(
            context, target, constraints, moft_name=moft_name,
            stats=run_stats, window=window, use_preagg=False,
            use_index=False, vectorized=False,
        )
    else:  # grid
        matched = objects_through(
            context, target, constraints, moft_name=moft_name,
            stats=run_stats, window=window, use_preagg=False,
        )
    elapsed = time.perf_counter() - started
    obs_delta = context.obs.since(before)
    flat = run_stats.as_dict()

    count = len(matched)
    plan.executed = True
    plan.result_count = count
    plan.root.actual_rows = count
    plan.root.actual_seconds = elapsed
    geo_node = plan.root.find("GeometricSubquery")
    if geo_node is not None:
        geo_node.actual_seconds = flat.get("geometric_subquery_seconds", 0.0)
    for op in ("SerialScan", "GridScan"):
        node = plan.root.find(op)
        if node is not None and strategy != "preagg":
            node.actual_rows = int(flat.get("scan_rows", 0))
            node.actual_seconds = flat.get("elapsed_seconds", 0.0)
    fanout = plan.root.find("ShardFanout")
    if fanout is not None:
        fanout.actual_rows = int(flat.get("scan_rows", 0))
        fanout.actual_seconds = obs_delta.get("shard_fanout_seconds", 0.0)
    lookup = plan.root.find("PreAggLookup")
    if lookup is not None:
        lookup.actual_rows = int(flat.get("sliver_scan_rows", 0))
        lookup.actual_seconds = obs_delta.get("preagg_lookup_seconds", 0.0)
    sliver = plan.root.find("SliverScan")
    if sliver is not None:
        sliver.actual_rows = int(flat.get("scan_rows", 0))
        sliver.actual_seconds = flat.get("elapsed_seconds", 0.0)
    return count


def planned_count_objects_through(
    context: EvaluationContext,
    target: Tuple[str, str],
    constraints: Sequence[Tuple[str, Tuple[str, str]]],
    moft_name: str = "FM",
    window: Optional[Tuple[float, float]] = None,
    executor: Optional[ShardedTrajectoryExecutor] = None,
    cost_model: Optional[CostModel] = None,
    force_strategy: Optional[str] = None,
) -> Tuple[int, QueryPlan]:
    """Plan, execute the chosen strategy, return ``(count, plan)``."""
    plan = plan_count_objects_through(
        context, target, constraints, moft_name=moft_name, window=window,
        executor=executor, cost_model=cost_model,
        force_strategy=force_strategy,
    )
    count = execute_plan(
        plan, context, target, constraints, moft_name=moft_name,
        window=window, executor=executor,
    )
    return count, plan


def explain(
    context: EvaluationContext,
    target: Tuple[str, str],
    constraints: Sequence[Tuple[str, Tuple[str, str]]],
    moft_name: str = "FM",
    window: Optional[Tuple[float, float]] = None,
    executor: Optional[ShardedTrajectoryExecutor] = None,
    cost_model: Optional[CostModel] = None,
    analyze: bool = False,
) -> str:
    """Render the chosen plan; with ``analyze`` execute it for actuals."""
    plan = plan_count_objects_through(
        context, target, constraints, moft_name=moft_name, window=window,
        executor=executor, cost_model=cost_model,
    )
    if analyze:
        execute_plan(
            plan, context, target, constraints, moft_name=moft_name,
            window=window, executor=executor,
        )
    return plan.render()


# ---------------------------------------------------------------------------
# POI aggregates
# ---------------------------------------------------------------------------

#: The strategies the planner prices for POI aggregate queries.
POI_STRATEGIES = ("serial", "sharded", "preagg")


def plan_poi_aggregate(
    context: EvaluationContext,
    layer: str,
    granule_level: str,
    min_dwell: float = 0.0,
    moft_name: str = "FM",
    measure: str = "visits",
    k: Optional[int] = None,
    cost_model: Optional[CostModel] = None,
    force_strategy: Optional[str] = None,
) -> QueryPlan:
    """Price the POI aggregate strategies and pick the cheapest.

    The candidate space mirrors :func:`plan_count_objects_through` with
    the POI twists: the scan is a per-object *segmentation* pass (every
    row against every disc — no grid pruning, stops are global per
    trajectory), sharding splits by objects on the threads backend, and
    a registered fresh :class:`~repro.poi.PoiVisitStore` covering the
    (layer, granule, min_dwell) key reduces the query to a cell read.
    """
    from repro.query.poi import resolve_pois

    if force_strategy is not None and force_strategy not in POI_STRATEGIES:
        raise EvaluationError(
            f"unknown POI strategy {force_strategy!r}; expected one of "
            f"{POI_STRATEGIES}"
        )
    model = cost_model if cost_model is not None else CostModel()
    pois = resolve_pois(context, layer)
    moft = context.moft(moft_name)
    table = table_statistics(moft)
    geometry = GeometryStatistics(len(pois), 1.0)
    partition = context.time.granules(granule_level)
    n_granules = len(partition.members)
    detail = (
        f"{layer}/{granule_level} measure={measure}"
        + (f" k={k}" if k is not None else "")
        + (f" min_dwell={min_dwell}" if min_dwell else "")
    )

    serial_cost = model.scan_cost(
        table.rows, len(pois), coverage=1.0, indexed=False
    )
    cpus = _available_cpus()
    n_shards = min(
        model.choose_shard_count(table.rows, cpus), max(1, table.objects)
    )
    sharded_cost = model.sharded_cost(
        serial_cost, "threads", n_shards, table.rows
    )
    candidates: List[Tuple[str, float]] = [
        ("serial", serial_cost),
        ("sharded", sharded_cost),
    ]
    store = context.poi_store_for(
        moft, layer, granule_level, min_dwell, pois
    )
    if store is not None and not store.is_stale():
        candidates.append(
            ("preagg", model.preagg_cost(n_granules, len(pois), 0, 1.0))
        )

    by_name = dict(candidates)
    if force_strategy is not None:
        if force_strategy not in by_name:
            raise EvaluationError(
                f"strategy {force_strategy!r} unavailable: no fresh POI "
                "store covers this query"
            )
        chosen, chosen_cost = force_strategy, by_name[force_strategy]
    else:
        chosen, chosen_cost = min(candidates, key=lambda c: (c[1], c[0]))

    segment_node = PlanNode(
        "StopSegmentScan",
        f"{table.name} x {len(pois)} discs",
        est_rows=table.rows,
        est_cost=serial_cost,
    )
    if chosen == "preagg":
        body = PlanNode(
            "PoiCellRead",
            f"store granules={n_granules} pois={len(pois)}",
            est_rows=n_granules * len(pois),
            est_cost=chosen_cost,
        )
    elif chosen == "sharded":
        body = PlanNode(
            "ShardedSegmentScan",
            f"threads x{n_shards} + merge",
            est_rows=table.rows,
            est_cost=chosen_cost,
            children=(segment_node,),
        )
    else:
        body = segment_node
    root = PlanNode(
        "PoiAggregate",
        detail,
        est_rows=n_granules * len(pois),
        est_cost=chosen_cost,
        children=(body,),
    )
    rejected = tuple(
        (name, cost) for name, cost in candidates if name != chosen
    )
    return QueryPlan(
        strategy=chosen,
        root=root,
        est_cost=chosen_cost,
        alternatives=rejected,
        table=table,
        geometry=geometry,
        shard_count=n_shards if chosen == "sharded" else None,
        shard_backend="threads" if chosen == "sharded" else None,
    )


def execute_poi_plan(
    plan: QueryPlan,
    context: EvaluationContext,
    layer: str,
    granule_level: str,
    min_dwell: float = 0.0,
    moft_name: str = "FM",
    measure: str = "visits",
    k: Optional[int] = None,
):
    """Execute a POI plan's chosen strategy; returns the aggregate dict."""
    from repro.query import poi as poi_queries

    options = {
        "min_dwell": min_dwell,
        "moft_name": moft_name,
        "strategy": plan.strategy,
    }
    if plan.strategy == "sharded":
        options["shards"] = plan.shard_count or 1
        options["backend"] = "threads"
    if measure == "visits":
        result = poi_queries.poi_visit_counts(
            context, layer, granule_level, **options
        )
    elif measure == "visitors":
        result = poi_queries.poi_distinct_visitors(
            context, layer, granule_level, **options
        )
    elif measure == "dwell":
        result = poi_queries.poi_dwell_times(
            context, layer, granule_level, **options
        )
    elif measure == "topk":
        if k is None:
            raise EvaluationError("top-k POI aggregate needs k")
        result = poi_queries.poi_topk(
            context, layer, granule_level, k, **options
        )
    else:
        raise EvaluationError(f"unknown POI measure {measure!r}")
    plan.executed = True
    plan.result_count = len(result)
    return result


__all__ = [
    "POI_STRATEGIES",
    "STRATEGIES",
    "CostModel",
    "GeometryStatistics",
    "PlanNode",
    "QueryPlan",
    "TableStatistics",
    "execute_plan",
    "execute_poi_plan",
    "explain",
    "geometry_statistics",
    "plan_count_objects_through",
    "plan_poi_aggregate",
    "planned_count_objects_through",
    "table_statistics",
]
