"""POI aggregate queries: visits, distinct visitors, dwell, top-k.

The follow-up paper's aggregation language asks questions like "how many
distinct objects visited each place of interest per hour?" and "which
are the top-k places by distinct visitors this granule?".  This module
exposes those four aggregates over an
:class:`~repro.query.region.EvaluationContext`, under three execution
strategies pinned byte-identical by the differential campaign:

``serial``
    Segment every trajectory against the POI discs in one pass
    (:func:`repro.poi.poi_cells` via a throwaway store build).
``sharded``
    Object-partition the MOFT, build per-shard cells (optionally on a
    thread pool) and :meth:`~repro.poi.PoiVisitStore.merge` them with
    completeness checks.
``preagg``
    Serve from a registered, fresh :class:`~repro.poi.PoiVisitStore`
    (``poi_preagg_hits``); a stale or missing store is a miss.

The answers are plain dicts in canonical order (POI ids and visitor ids
sorted by ``repr``), ready for canonical-JSON comparison.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Hashable, Mapping, Optional, Tuple

from repro.errors import EvaluationError
from repro.gis import geometries as gk
from repro.mo.moft import MOFT
from repro.poi.store import PoiVisitStore
from repro.query.region import EvaluationContext

#: Execution strategies for POI aggregates.
POI_STRATEGIES = ("serial", "sharded", "preagg")

#: Supported aggregate measures.
POI_MEASURES = ("visits", "visitors", "dwell", "topk")


def resolve_pois(
    context: EvaluationContext, layer: str
) -> Dict[Hashable, object]:
    """The POI discs of one layer; typed error when the layer has none."""
    pois = dict(context.gis.layer(layer).elements(gk.POI))
    if not pois:
        raise EvaluationError(
            f"layer {layer!r} holds no {gk.POI!r} geometries; "
            "POI aggregates need a POI layer"
        )
    return pois


def _build_serial(
    context: EvaluationContext,
    moft: MOFT,
    pois: Mapping[Hashable, object],
    layer: str,
    granule_level: str,
    min_dwell: float,
) -> PoiVisitStore:
    return PoiVisitStore(
        moft,
        context.time,
        granule_level,
        pois,
        layer=layer,
        min_dwell=min_dwell,
        obs=context.obs,
    )


def _build_sharded(
    context: EvaluationContext,
    moft: MOFT,
    pois: Mapping[Hashable, object],
    layer: str,
    granule_level: str,
    min_dwell: float,
    shards: int,
    backend: str,
) -> PoiVisitStore:
    if shards < 1:
        raise EvaluationError(f"shard count must be >= 1, got {shards}")
    if backend not in ("serial", "threads"):
        raise EvaluationError(
            f"POI shard backend must be 'serial' or 'threads', got {backend!r}"
        )
    parts = moft.partition_by_objects(shards)

    def build(part: MOFT) -> PoiVisitStore:
        return PoiVisitStore(
            part,
            context.time,
            granule_level,
            pois,
            layer=layer,
            min_dwell=min_dwell,
            obs=context.obs,
        )

    if backend == "threads" and len(parts) > 1:
        with ThreadPoolExecutor(max_workers=len(parts)) as pool:
            stores = list(pool.map(build, parts))
    else:
        stores = [build(part) for part in parts]
    return PoiVisitStore.merge(stores, moft)


def poi_store_view(
    context: EvaluationContext,
    layer: str,
    granule_level: str,
    *,
    min_dwell: float = 0.0,
    moft_name: str = "FM",
    strategy: Optional[str] = None,
    shards: int = 2,
    backend: str = "serial",
) -> Tuple[PoiVisitStore, str]:
    """Resolve a readable cell store for one POI aggregate.

    Returns ``(store, strategy_used)``.  ``strategy=None`` routes
    through a registered fresh pre-agg store when one covers the query
    and falls back to the serial scan otherwise; naming a strategy is
    strict (``preagg`` without a usable store raises).
    """
    if strategy is not None and strategy not in POI_STRATEGIES:
        raise EvaluationError(
            f"unknown POI strategy {strategy!r}; expected one of "
            f"{POI_STRATEGIES}"
        )
    pois = resolve_pois(context, layer)
    moft = context.moft(moft_name)
    if strategy in (None, "preagg"):
        store = context.poi_store_for(
            moft, layer, granule_level, min_dwell, pois
        )
        if store is not None and not store.is_stale():
            context.obs.incr("poi_preagg_hits")
            return store, "preagg"
        if strategy == "preagg":
            raise EvaluationError(
                "no fresh PoiVisitStore registered for "
                f"(layer={layer!r}, granule={granule_level!r}, "
                f"min_dwell={min_dwell!r})"
            )
        if context.has_preagg:
            context.obs.incr("poi_preagg_misses")
    if strategy == "sharded":
        built = _build_sharded(
            context, moft, pois, layer, granule_level, min_dwell,
            shards, backend,
        )
        return built, "sharded"
    built = _build_serial(
        context, moft, pois, layer, granule_level, min_dwell
    )
    return built, "serial"


def poi_visit_counts(
    context: EvaluationContext,
    layer: str,
    granule_level: str,
    **options,
) -> Dict[Tuple[Hashable, Hashable], int]:
    """``{(poi id, granule member): visit count}``."""
    store, _ = poi_store_view(context, layer, granule_level, **options)
    return store.visit_counts()


def poi_distinct_visitors(
    context: EvaluationContext,
    layer: str,
    granule_level: str,
    **options,
) -> Dict[Tuple[Hashable, Hashable], Tuple[Hashable, ...]]:
    """``{(poi id, granule member): sorted distinct visitor ids}``."""
    store, _ = poi_store_view(context, layer, granule_level, **options)
    return store.distinct_visitors()


def poi_dwell_times(
    context: EvaluationContext,
    layer: str,
    granule_level: str,
    **options,
) -> Dict[Tuple[Hashable, Hashable], float]:
    """``{(poi id, granule member): clipped dwell}`` (canonical fold order)."""
    store, _ = poi_store_view(context, layer, granule_level, **options)
    return store.dwell_times()


def poi_topk(
    context: EvaluationContext,
    layer: str,
    granule_level: str,
    k: int,
    **options,
) -> Dict[Hashable, Tuple[Tuple[Hashable, int], ...]]:
    """Top-``k`` POIs by distinct visitors per granule member."""
    store, _ = poi_store_view(context, layer, granule_level, **options)
    return store.topk(k)


class PoiQueryBuilder:
    """Fluent spec for one POI aggregate.

    >>> (PoiQueryBuilder("Lp").per("hour").with_min_dwell(0.5)
    ...     .sharded(4, backend="threads").top_k(context, 3))

    Terminal methods (``visits`` / ``distinct_visitors`` / ``dwell`` /
    ``top_k``) take the evaluation context and execute immediately;
    :meth:`explain` prices the strategies through the planner without
    executing.
    """

    def __init__(self, layer: str, moft_name: str = "FM") -> None:
        self._layer = layer
        self._moft_name = moft_name
        self._granule: Optional[str] = None
        self._min_dwell = 0.0
        self._strategy: Optional[str] = None
        self._shards = 2
        self._backend = "serial"

    def per(self, granule_level: str) -> "PoiQueryBuilder":
        self._granule = granule_level
        return self

    def from_moft(self, name: str) -> "PoiQueryBuilder":
        self._moft_name = name
        return self

    def with_min_dwell(self, min_dwell: float) -> "PoiQueryBuilder":
        self._min_dwell = float(min_dwell)
        return self

    def serial(self) -> "PoiQueryBuilder":
        self._strategy = "serial"
        return self

    def sharded(self, shards: int, backend: str = "serial") -> "PoiQueryBuilder":
        self._strategy = "sharded"
        self._shards = shards
        self._backend = backend
        return self

    def preagg(self) -> "PoiQueryBuilder":
        self._strategy = "preagg"
        return self

    def _options(self) -> Dict[str, object]:
        if self._granule is None:
            raise EvaluationError(
                "POI query needs a granule level; call .per(level)"
            )
        return {
            "min_dwell": self._min_dwell,
            "moft_name": self._moft_name,
            "strategy": self._strategy,
            "shards": self._shards,
            "backend": self._backend,
        }

    def visits(self, context: EvaluationContext):
        return poi_visit_counts(
            context, self._layer, self._granule, **self._options()
        )

    def distinct_visitors(self, context: EvaluationContext):
        return poi_distinct_visitors(
            context, self._layer, self._granule, **self._options()
        )

    def dwell(self, context: EvaluationContext):
        return poi_dwell_times(
            context, self._layer, self._granule, **self._options()
        )

    def top_k(self, context: EvaluationContext, k: int):
        return poi_topk(
            context, self._layer, self._granule, k, **self._options()
        )

    def explain(self, context: EvaluationContext, measure: str = "visits"):
        from repro.query.planner import plan_poi_aggregate

        options = self._options()
        return plan_poi_aggregate(
            context,
            self._layer,
            self._granule,
            min_dwell=self._min_dwell,
            moft_name=self._moft_name,
            measure=measure,
            force_strategy=self._strategy,
        )
