"""Trajectory-level queries — Types 7 and 8 of the taxonomy.

Type-7 queries need the reconstructed trajectory (example query 5: "total
amount of time spent continuously by cars in Antwerp"); Type-8 queries
aggregate over trajectory-derived measures.  These helpers compute
per-object trajectory measures against α-identified geometries and fold
them with the Definition 7 functions.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.errors import EvaluationError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.mo.operations import (
    intervals_inside,
    passes_through,
    time_inside,
    time_within_distance,
)
from repro.olap.aggregation import AggregateFunction
from repro.query.region import EvaluationContext


def _member_polygon(
    context: EvaluationContext, attribute: str, member: Hashable
) -> Polygon:
    placement = context.gis.schema.placement(attribute)
    gid = context.gis.alpha(attribute, member)
    geometry = context.gis.layer(placement.layer).element(placement.kind, gid)
    if not isinstance(geometry, Polygon):
        raise EvaluationError(
            f"{attribute} member {member!r} is not polygon-placed"
        )
    return geometry


def _member_node(
    context: EvaluationContext, attribute: str, member: Hashable
) -> Point:
    placement = context.gis.schema.placement(attribute)
    gid = context.gis.alpha(attribute, member)
    geometry = context.gis.layer(placement.layer).element(placement.kind, gid)
    if not isinstance(geometry, Point):
        raise EvaluationError(
            f"{attribute} member {member!r} is not node-placed"
        )
    return geometry


def time_spent_in(
    context: EvaluationContext,
    attribute: str,
    member: Hashable,
    moft_name: str = "FM",
) -> Dict[Hashable, float]:
    """Per-object time spent inside a polygon member (query 5).

    Uses the linear-interpolation trajectory; single-sample objects
    contribute zero duration.
    """
    polygon = _member_polygon(context, attribute, member)
    moft = context.moft(moft_name)
    result: Dict[Hashable, float] = {}
    for oid in moft.objects():
        if moft.sample_count(oid) < 2:
            result[oid] = 0.0
            continue
        result[oid] = time_inside(context.trajectory(moft_name, oid), polygon)
    return result


def presence_intervals(
    context: EvaluationContext,
    attribute: str,
    member: Hashable,
    moft_name: str = "FM",
) -> Dict[Hashable, List[Tuple[float, float]]]:
    """Per-object maximal time intervals inside a polygon member."""
    polygon = _member_polygon(context, attribute, member)
    moft = context.moft(moft_name)
    result: Dict[Hashable, List[Tuple[float, float]]] = {}
    for oid in moft.objects():
        if moft.sample_count(oid) < 2:
            result[oid] = []
            continue
        result[oid] = intervals_inside(
            context.trajectory(moft_name, oid), polygon
        )
    return result


def objects_passing_through(
    context: EvaluationContext,
    attribute: str,
    member: Hashable,
    moft_name: str = "FM",
) -> set:
    """Objects whose interpolated trajectory touches a polygon member.

    The trajectory-semantics version of the paper's query 7 text: "a
    linear interpolation may indicate that the object has passed through
    that neighborhood" even when no sample lies inside.
    """
    polygon = _member_polygon(context, attribute, member)
    moft = context.moft(moft_name)
    matched = set()
    for oid in moft.objects():
        if moft.sample_count(oid) == 1:
            (_, x, y) = moft.history(oid)[0]
            if polygon.contains_point(Point(x, y)):
                matched.add(oid)
            continue
        if passes_through(context.trajectory(moft_name, oid), polygon):
            matched.add(oid)
    return matched


def time_near_node(
    context: EvaluationContext,
    attribute: str,
    member: Hashable,
    radius: float,
    moft_name: str = "FM",
) -> Dict[Hashable, float]:
    """Per-object time spent within ``radius`` of a node member (query 6)."""
    node = _member_node(context, attribute, member)
    moft = context.moft(moft_name)
    result: Dict[Hashable, float] = {}
    for oid in moft.objects():
        if moft.sample_count(oid) < 2:
            result[oid] = 0.0
            continue
        result[oid] = time_within_distance(
            context.trajectory(moft_name, oid), node, radius
        )
    return result


def aggregate_trajectory_measure(
    measures: Dict[Hashable, float],
    function: AggregateFunction | str = AggregateFunction.SUM,
) -> float:
    """Fold per-object trajectory measures (Type 8: trajectory aggregation)."""
    if isinstance(function, str):
        function = AggregateFunction.parse(function)
    values = list(measures.values())
    if function is AggregateFunction.COUNT:
        return float(len(values))
    return function.apply(values)
