"""Aggregation over spatio-temporal regions — the semantics of Section 3.1.

"The semantics of a summable moving objects query ``Q(C)``, where ``C`` is
a relation of the form ``C = {(Oid, t, x, y)}`` is
``Q = γ_{AGG A(X)}(C)``" — i.e. evaluate the region, then apply the
γ-operator of Definition 7.  This module adds the two recurring refinements
of the paper's examples:

* **distinct-object counting** (query 1 counts cars, not samples);
* **per-span normalization** (Remark 1: the count is divided by the time
  span of "the morning" — three hours — giving 4/3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.olap.aggregation import AggregateFunction, aggregate, distinct_count
from repro.query.region import EvaluationContext, SpatioTemporalRegion


@dataclass(frozen=True)
class AggregateSpec:
    """How to fold the region relation into the query answer.

    Parameters
    ----------
    function:
        One of Definition 7's AGG functions (or ``"COUNT DISTINCT"`` via
        :attr:`distinct`).
    measure:
        The region column to aggregate (None for COUNT).
    group_by:
        Region columns forming the group key ``X``.
    distinct:
        Count distinct values of ``measure`` instead of applying
        ``function`` (used when counting objects rather than samples).
    per_span_level / per_span_member:
        When set, divide every aggregated value by the number of instants
        rolling up to ``per_span_member`` at ``per_span_level`` — the
        "per hour in the morning" normalization of the running query.
    """

    function: AggregateFunction | str = AggregateFunction.COUNT
    measure: Optional[str] = None
    group_by: Tuple[str, ...] = ()
    distinct: bool = False
    per_span_level: Optional[str] = None
    per_span_member: Optional[Hashable] = None

    def __post_init__(self) -> None:
        if isinstance(self.function, str):
            object.__setattr__(
                self, "function", AggregateFunction.parse(self.function)
            )
        if self.distinct and self.measure is None:
            raise QueryError("distinct counting needs a measure column")
        if (self.per_span_level is None) != (self.per_span_member is None):
            raise QueryError(
                "per-span normalization needs both level and member"
            )


class MovingObjectAggregateQuery:
    """A summable moving-object query: a region plus an aggregate spec."""

    def __init__(
        self, region: SpatioTemporalRegion, spec: AggregateSpec
    ) -> None:
        self.region = region
        self.spec = spec
        for column in spec.group_by:
            if column not in region.output_variables:
                raise QueryError(
                    f"group-by column {column!r} not among region outputs "
                    f"{region.output_variables}"
                )
        if spec.measure is not None and spec.measure not in region.output_variables:
            raise QueryError(
                f"measure column {spec.measure!r} not among region outputs "
                f"{region.output_variables}"
            )

    def run(self, context: EvaluationContext) -> Dict[Tuple[Any, ...], float]:
        """Evaluate the region and aggregate; returns ``{group key: value}``.

        For an ungrouped query the single key is the empty tuple; see
        :meth:`run_scalar`.
        """
        rows = self.region.evaluate(context)
        spec = self.spec
        if spec.distinct:
            result = self._distinct_by_group(rows)
        else:
            if not rows:
                result = {}
            else:
                result = aggregate(
                    rows, spec.function, spec.measure, list(spec.group_by)
                )
        if spec.per_span_level is not None:
            span = context.time.span(spec.per_span_level, spec.per_span_member)
            result = {key: value / span for key, value in result.items()}
        return result

    def run_scalar(self, context: EvaluationContext) -> float:
        """Run an ungrouped query to a single number.

        An empty region yields 0 for COUNT-style queries and raises for
        the value aggregates (which are undefined on empty input).
        """
        if self.spec.group_by:
            raise QueryError("run_scalar on a grouped query; use run()")
        result = self.run(context)
        if not result:
            if self.spec.function is AggregateFunction.COUNT or self.spec.distinct:
                return 0.0
            raise QueryError(
                f"{self.spec.function.value} over an empty region is undefined"
            )
        return result[()]

    def _distinct_by_group(self, rows) -> Dict[Tuple[Any, ...], float]:
        groups: Dict[Tuple[Any, ...], set] = {}
        for row in rows:
            key = tuple(row[c] for c in self.spec.group_by)
            groups.setdefault(key, set()).add(row[self.spec.measure])
        return {key: float(len(values)) for key, values in groups.items()}


def total_dwell_time(
    context: EvaluationContext,
    target: Tuple[str, str],
    constraints: Sequence[Tuple[str, Tuple[str, str]]],
    moft_name: str = "FM",
    window: Optional[Tuple[float, float]] = None,
    stats=None,
    use_preagg: bool = True,
) -> float:
    """Total interpolated time all objects spend inside the answer polygons.

    The dwell-time analogue of
    :func:`~repro.query.evaluator.count_objects_through`: answer the
    geometric subquery, then sum — over every object and every answer
    polygon — the time the linearly-interpolated trajectory spends
    inside, optionally restricted to a ``[start, end]`` window
    (validated like the count).  Overlapping polygons count dwell once
    per polygon, which keeps the measure summable per geometry id
    (Definition 4).

    With ``use_preagg`` the planner routes through a registered fresh
    :class:`~repro.preagg.PreAggStore`: cells and spanning records
    answer the covered granule run, and boundary slivers are clipped
    directly — no trajectory scan at all.  Exact up to float summation
    order; the differential suite pins the tolerance.
    """
    from repro.mo.operations import time_inside
    from repro.mo.trajectory import LinearInterpolationTrajectory
    from repro.query.evaluator import geometric_subquery, validated_window
    from repro.query.optimizer import route_through_window

    moft = context.moft(moft_name)
    window = validated_window(moft, window)
    ids = geometric_subquery(context, target, constraints, obs=stats)
    if not ids:
        return 0.0
    layer, kind = target
    if use_preagg:
        route = route_through_window(
            context, target, ids, moft, window, stats=stats
        )
        if route is not None:
            if window is None:
                return route.store.dwell_time(sorted(ids, key=repr),
                                              *route.run)
            return route.store.window_dwell(sorted(ids, key=repr), *window)
    elements = context.gis.layer(layer).elements(kind)
    if window is not None:
        t, _, _ = moft.as_arrays()
        moft = moft.mask_rows((t >= window[0]) & (t <= window[1]))
    total = 0.0
    for oid in moft.objects():
        if moft.sample_count(oid) < 2:
            continue
        trajectory = LinearInterpolationTrajectory(moft.trajectory_sample(oid))
        for gid in ids:
            total += time_inside(trajectory, elements[gid])
    return total


def count_per_group(
    region: SpatioTemporalRegion,
    context: EvaluationContext,
    group_by: Sequence[str],
) -> Dict[Tuple[Any, ...], float]:
    """Convenience: COUNT(*) grouped by the given region columns."""
    query = MovingObjectAggregateQuery(
        region, AggregateSpec(group_by=tuple(group_by))
    )
    return query.run(context)


def count_distinct_objects(
    region: SpatioTemporalRegion,
    context: EvaluationContext,
    object_column: str = "oid",
) -> float:
    """Convenience: number of distinct objects in the region."""
    query = MovingObjectAggregateQuery(
        region,
        AggregateSpec(measure=object_column, distinct=True),
    )
    return query.run_scalar(context)
