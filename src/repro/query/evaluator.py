"""Query evaluation strategies — Section 5 of the paper.

The paper sketches the Piet pipeline: (1) answer the geometric subquery
against the *precomputed overlay*, yielding geometry ids; (2) intersect
trajectory segments with those geometries — "for each object, and for each
consecutive pair of points in the moving objects fact table, [check] if the
intersection between the segment defined by these two points and a city in
the answer ... is not empty.  If so, it counts for the aggregation.  In
the worst case, the whole trajectory must be checked."

:class:`TrajectoryIntersectionCounter` implements step (2) with four
refinements that the benchmarks ablate:

* early exit per object once a hit is found (the paper's "if so, it
  counts");
* bounding-box prefiltering per segment (counted as ``bbox_rejections``
  on both the naive and the indexed path);
* a spatial-index candidate filter over the answer geometries — either
  built in place or borrowed prebuilt from
  :meth:`~repro.query.region.EvaluationContext.geometry_index`;
* an optional columnar prefilter (:func:`repro.query.vectorized
  .samples_in_polygons`): when every answer geometry is a polygon, a
  sampled point inside a polygon already proves the trajectory
  intersects, so those objects skip the segment scan entirely.

Instrumentation is the :mod:`repro.obs` vocabulary —
:class:`~repro.obs.EvaluationStats` is re-exported here for
compatibility.
"""

from __future__ import annotations

from typing import (
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import EvaluationError
from repro.geometry.index import UniformGridIndex, index_for_geometries
from repro.geometry.overlay import geometries_intersect, geometry_bbox
from repro.mo.moft import MOFT
from repro.obs import EvaluationStats, PipelineStats
from repro.query.region import EvaluationContext

class ShardedTrajectoryExecutor(Protocol):
    """What :func:`count_objects_through` needs from a parallel executor."""

    def matching_objects(
        self,
        counter: "TrajectoryIntersectionCounter",
        moft: MOFT,
        stats: Optional["EvaluationStats"] = None,
    ) -> Set[Hashable]:
        """Return the matched object ids, merged exactly across shards."""
        ...


class TrajectoryIntersectionCounter:
    """Counts objects whose trajectory meets any of a set of geometries.

    Parameters
    ----------
    geometries:
        Mapping ``geometry id -> geometry`` — the answer of the geometric
        subquery (e.g. the cities crossed by a river containing a store).
    use_index:
        Build a grid index over the geometries and only test segments
        against candidates whose boxes meet the segment's box.
    early_exit:
        Stop scanning an object's trajectory at the first hit.
    index:
        A prebuilt :class:`UniformGridIndex` over exactly these
        geometries (e.g. from ``EvaluationContext.geometry_index``);
        ignored when ``use_index`` is False.
    vectorized_prefilter:
        When every geometry is a polygon, accept objects with a sampled
        point inside some polygon via the columnar batch test before
        falling back to the per-segment scan.  Sound because a segment
        endpoint inside a closed polygon intersects it; the result set is
        identical, only the operation counts differ.
    """

    def __init__(
        self,
        geometries: Dict[Hashable, object],
        use_index: bool = True,
        early_exit: bool = True,
        index: Optional[UniformGridIndex] = None,
        vectorized_prefilter: bool = False,
    ) -> None:
        if not geometries:
            raise EvaluationError("no geometries to intersect against")
        self.geometries = dict(geometries)
        self.use_index = use_index
        self.early_exit = early_exit
        self.vectorized_prefilter = vectorized_prefilter
        if not use_index:
            self._index = None
        elif index is not None:
            self._index = index
        else:
            self._index = index_for_geometries(self.geometries)

    def matching_objects(
        self, moft: MOFT, stats: Optional[EvaluationStats] = None
    ) -> Set[Hashable]:
        """Return the ids of objects whose interpolated trajectory hits.

        Objects with a single sample are tested by that sampled point.
        """
        stats = stats if stats is not None else EvaluationStats()
        matched: Set[Hashable] = set()
        stats.incr("scan_rows", len(moft))
        with stats.stage(EvaluationStats.SCAN_STAGE):
            accepted = self._vectorized_accepts(moft, stats)
            for oid in moft.objects():
                stats.objects_scanned += 1
                if oid in accepted or self._object_matches(moft, oid, stats):
                    matched.add(oid)
                    stats.objects_matched += 1
        return matched

    def count(self, moft: MOFT, stats: Optional[EvaluationStats] = None) -> int:
        """Number of matching objects (the aggregation of Section 5)."""
        return len(self.matching_objects(moft, stats))

    def _vectorized_accepts(
        self, moft: MOFT, stats: EvaluationStats
    ) -> Set[Hashable]:
        """Objects proven to match by the columnar point-in-polygon pass."""
        from repro.geometry.polygon import Polygon

        if not self.vectorized_prefilter or len(moft) == 0:
            return set()
        polygons = list(self.geometries.values())
        if not all(isinstance(g, Polygon) for g in polygons):
            return set()
        from repro.query.vectorized import samples_in_polygons

        accepted = {oid for oid, _ in samples_in_polygons(moft, polygons)}
        stats.incr("vectorized_accepts", len(accepted))
        return accepted

    def _object_matches(
        self, moft: MOFT, oid: Hashable, stats: EvaluationStats
    ) -> bool:
        from repro.geometry.point import Point
        from repro.geometry.segment import Segment

        history = moft.history(oid)
        probes: List[object] = []
        if len(history) == 1:
            t, x, y = history[0]
            probes.append(Point(x, y))
        else:
            for (t0, x0, y0), (t1, x1, y1) in zip(history, history[1:]):
                probes.append(Segment(Point(x0, y0), Point(x1, y1)))
        found = False
        for probe in probes:
            box = geometry_bbox(probe)
            if self._index is not None:
                candidates: Iterable[Hashable] = self._index.query_box(box)
                # Candidate pruning is the indexed path's bbox rejection:
                # everything the grid filtered out never reaches a check.
                stats.bbox_rejections += len(self.geometries) - len(candidates)
            else:
                candidates = self.geometries.keys()
            for gid in candidates:
                geometry = self.geometries[gid]
                if self._index is None and not geometry_bbox(geometry).intersects(
                    box
                ):
                    stats.bbox_rejections += 1
                    continue
                stats.segment_checks += 1
                if geometries_intersect(geometry, probe):
                    found = True
                    break
            if found and self.early_exit:
                return True
        return found


def geometric_subquery(
    context: EvaluationContext,
    target: Tuple[str, str],
    constraints: Sequence[Tuple[str, Tuple[str, str]]],
    obs: Optional[PipelineStats] = None,
) -> Set[Hashable]:
    """Answer a conjunctive geometric query over layer pairs.

    ``target`` is the ``(layer, kind)`` whose element ids are returned;
    each constraint is ``(predicate, (layer, kind))`` and keeps the target
    elements related to *some* element of the other (layer, kind) — e.g.::

        geometric_subquery(
            ctx, ("Lc", "polygon"),
            [("intersects", ("Lr", "polyline")),   # crossed by a river
             ("contains", ("Ls", "node"))],        # containing a store
        )

    This is the id-set pipeline Piet-QL compiles to; whether the pair
    relations come from the precomputed overlay or from fresh geometry
    scans follows the context's ``use_overlay`` flag.  Wall time lands in
    the ``geometric_subquery`` stage of ``obs`` (default: the context's
    observer).
    """
    obs = obs if obs is not None else context.obs
    with obs.stage("geometric_subquery"):
        layer, kind = target
        result: Optional[Set[Hashable]] = None
        for predicate, (other_layer, other_kind) in constraints:
            pairs = context.geometry_pairs(
                layer, kind, predicate, other_layer, other_kind
            )
            ids = {a for a, _ in pairs}
            result = ids if result is None else result & ids
            if not result:
                return set()
        if result is None:
            # No constraints: all elements qualify.
            return set(context.gis.layer(layer).elements(kind))
        return result


def validated_window(
    moft: MOFT, window: Optional[Tuple[float, float]]
) -> Optional[Tuple[float, float]]:
    """Validate a ``[start, end]`` time window against a MOFT.

    Raises :class:`EvaluationError` for a reversed window (``start >
    end``) and for a window with no overlap with the MOFT's instant span
    — both are almost always caller bugs (swapped bounds, wrong time
    unit) that would otherwise silently answer 0.  Returns the window as
    a float pair (None passes through: it means "the whole table").
    """
    if window is None:
        return None
    start, end = float(window[0]), float(window[1])
    if start > end:
        raise EvaluationError(
            f"reversed time window: start {start} is after end {end}"
        )
    if len(moft) == 0:
        raise EvaluationError(
            f"time window [{start}, {end}] cannot overlap MOFT "
            f"{moft.name!r}: the table is empty"
        )
    tmin, tmax = moft.time_range()
    if end < tmin or start > tmax:
        raise EvaluationError(
            f"time window [{start}, {end}] lies outside the MOFT's "
            f"instant span [{tmin}, {tmax}]"
        )
    return (start, end)


def counter_for(
    context: EvaluationContext,
    target: Tuple[str, str],
    ids: Set[Hashable],
    use_index: bool = True,
    early_exit: bool = True,
    vectorized: bool = True,
    stats: Optional[EvaluationStats] = None,
) -> TrajectoryIntersectionCounter:
    """Build the scan counter over one geometric answer (shared setup).

    Public because the cost-based planner (:mod:`repro.query.planner`)
    builds the same counter when it executes a chosen strategy.
    """
    layer, kind = target
    elements = context.gis.layer(layer).elements(kind)
    index = (
        context.geometry_index(layer, kind, ids, obs=stats)
        if use_index
        else None
    )
    return TrajectoryIntersectionCounter(
        {gid: elements[gid] for gid in ids},
        use_index=use_index,
        early_exit=early_exit,
        index=index,
        vectorized_prefilter=vectorized,
    )


def objects_through(
    context: EvaluationContext,
    target: Tuple[str, str],
    constraints: Sequence[Tuple[str, Tuple[str, str]]],
    moft_name: str = "FM",
    use_index: bool = True,
    early_exit: bool = True,
    stats: Optional[EvaluationStats] = None,
    vectorized: bool = True,
    executor: Optional["ShardedTrajectoryExecutor"] = None,
    window: Optional[Tuple[float, float]] = None,
    use_preagg: bool = True,
) -> Set[Hashable]:
    """The matched-object set behind :func:`count_objects_through`.

    ``window`` restricts the trajectory scan to samples with ``start <=
    t <= end`` (validated by :func:`validated_window`).  With
    ``use_preagg`` (the default), the planner first tries
    :func:`repro.query.optimizer.route_through_window`: a registered
    fresh :class:`~repro.preagg.PreAggStore` answers the covered granule
    run from its cells and spanning records, and only the misaligned
    *sliver* residue — if any — is scanned (serially or through
    ``executor``).  The hybrid is exact; the fallback is the plain
    (possibly sharded, possibly windowed) scan.
    """
    from repro.query.optimizer import route_through_window

    moft = context.moft(moft_name)
    window = validated_window(moft, window)
    ids = geometric_subquery(context, target, constraints, obs=stats)
    if not ids:
        return set()
    if use_preagg:
        route = route_through_window(
            context, target, ids, moft, window, stats=stats
        )
        if route is not None:
            matched = route.store.objects_through(ids, *route.run)
            if route.sliver is not None:
                counter = counter_for(
                    context, target, ids, use_index, early_exit,
                    vectorized, stats,
                )
                if executor is not None:
                    matched |= executor.matching_objects(
                        counter, route.sliver, stats
                    )
                else:
                    matched |= counter.matching_objects(route.sliver, stats)
            return matched
    counter = counter_for(
        context, target, ids, use_index, early_exit, vectorized, stats
    )
    if window is not None:
        moft = window_restricted(moft, window)
    if executor is not None:
        return executor.matching_objects(counter, moft, stats)
    return counter.matching_objects(moft, stats)


def window_restricted(moft: MOFT, window: Tuple[float, float]) -> MOFT:
    """The MOFT restricted to samples with ``start <= t <= end``."""
    t, _, _ = moft.as_arrays()
    return moft.mask_rows((t >= window[0]) & (t <= window[1]))


def count_objects_through(
    context: EvaluationContext,
    target: Tuple[str, str],
    constraints: Sequence[Tuple[str, Tuple[str, str]]],
    moft_name: str = "FM",
    use_index: bool = True,
    early_exit: bool = True,
    stats: Optional[EvaluationStats] = None,
    vectorized: bool = True,
    executor: Optional["ShardedTrajectoryExecutor"] = None,
    window: Optional[Tuple[float, float]] = None,
    use_preagg: bool = True,
) -> int:
    """The full Section 5 pipeline: geometric subquery then trajectory scan.

    Implements the paper's running example "Total number of cars passing
    through cities crossed by a river, containing at least one store".
    The grid index over the answer geometries is fetched from the
    context's per-id-set cache, so repeated queries over the same answer
    reuse it instead of rebuilding.

    ``executor`` optionally shards the trajectory scan: anything with a
    ``matching_objects(counter, moft, stats)`` method — in practice a
    :class:`repro.parallel.ShardedExecutor` — replaces the in-process
    scan, fanning shards out over its backend.  The differential oracle
    suite (``tests/parallel``) asserts the sharded answers equal this
    serial path.

    ``window`` restricts the count to a time window; ``use_preagg``
    allows routing through a registered pre-aggregation store (see
    :func:`objects_through` for both).
    """
    return len(
        objects_through(
            context,
            target,
            constraints,
            moft_name=moft_name,
            use_index=use_index,
            early_exit=early_exit,
            stats=stats,
            vectorized=vectorized,
            executor=executor,
            window=window,
            use_preagg=use_preagg,
        )
    )


__all__ = [
    "EvaluationStats",
    "ShardedTrajectoryExecutor",
    "TrajectoryIntersectionCounter",
    "counter_for",
    "geometric_subquery",
    "validated_window",
    "window_restricted",
    "objects_through",
    "count_objects_through",
]
