"""Columnar (NumPy) fast path for the common Type-4 query shape.

The logical solver evaluates row by row — correct for arbitrary formulas,
but the paper's most frequent query shape is fixed: *MOFT samples, at
instants matching a temporal constraint, whose position lies in one of a
set of polygons*.  That shape vectorizes: the time filter is a mask over
the ``t`` column and point-in-polygon is a batched crossing-number test
over the ``x, y`` columns.

:func:`samples_in_polygons` returns the same ``(oid, t)`` region the
solver produces for such queries (the equivalence is property-tested);
``benchmarks/bench_vectorized.py`` measures the gap.

Boundary semantics: the batched crossing-number test classifies points
*strictly* inside in bulk, then re-checks the few undecided points near
the boundary with the exact scalar predicate, preserving the closed-region
semantics (boundary points belong to the region).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.geometry.kernels import (
    _min_dist2_to_edges,
    _ring_parity,
    polygon_edge_arrays,
)
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.mo.moft import MOFT


def polygon_contains_batch(
    polygon: Polygon, xs: np.ndarray, ys: np.ndarray
) -> np.ndarray:
    """Vectorized closed containment for many points.

    Crossing-number over all rings (even-odd, so holes work), with an
    exact scalar re-check for points within a small band of the boundary.
    The edge vectors come from the polygon's cached
    :func:`~repro.geometry.kernels.polygon_edge_arrays`, so repeated
    batches against the same polygon skip the ring flattening.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    edges = polygon_edge_arrays(polygon)
    offsets = edges.ring_offsets
    inside = np.zeros(xs.shape, dtype=bool)
    for ring_index in range(len(offsets) - 1):
        r0, r1 = int(offsets[ring_index]), int(offsets[ring_index + 1])
        inside ^= _ring_parity(
            xs, ys,
            edges.ax[r0:r1], edges.ay[r0:r1],
            edges.bx[r0:r1], edges.by[r0:r1],
        )
    # Boundary band: re-check points close to any edge exactly (the bulk
    # test treats the boundary inconsistently).
    near_boundary = (
        _min_dist2_to_edges(xs, ys, edges)
        <= edges.tolerance * edges.tolerance
    )
    for index in np.flatnonzero(near_boundary):
        inside[index] = polygon.contains_point(
            Point(float(xs[index]), float(ys[index]))
        )
    return inside


def samples_in_polygons(
    moft: MOFT,
    polygons: Sequence[Polygon],
    instants: Iterable[float] | None = None,
) -> Set[Tuple[Hashable, float]]:
    """The Type-4 region ``{(oid, t)}`` evaluated columnarly.

    Parameters
    ----------
    moft:
        The moving-object fact table.
    polygons:
        The qualifying regions (e.g. low-income neighborhoods); a sample
        matches when inside *any* of them.
    instants:
        Allowed instants (None = all instants).
    """
    if len(moft) == 0 or not polygons:
        return set()
    t, x, y = moft.as_arrays()
    if instants is None:
        mask = np.ones(t.shape, dtype=bool)
    else:
        allowed = np.array(sorted({float(i) for i in instants}), dtype=float)
        if allowed.size == 0:
            return set()
        mask = np.isin(t, allowed)
    if not mask.any():
        return set()
    rows = np.flatnonzero(mask)
    xs, ys, ts = x[rows], y[rows], t[rows]
    hit = np.zeros(xs.shape, dtype=bool)
    for polygon in polygons:
        pending = ~hit
        if not pending.any():
            break
        # Cheap bbox prefilter per polygon.
        box = polygon.bbox
        candidates = pending & (
            (xs >= box.min_x)
            & (xs <= box.max_x)
            & (ys >= box.min_y)
            & (ys <= box.max_y)
        )
        if not candidates.any():
            continue
        idx = np.flatnonzero(candidates)
        hit[idx] |= polygon_contains_batch(polygon, xs[idx], ys[idx])
    # Recover (oid, t) for the hits by indexing the oid column directly —
    # no per-row tuple materialization of the whole table.
    oid_column = moft.oid_column()
    hit_rows = rows[hit]
    return {
        (oid_column[row], float(t[row])) for row in hit_rows
    }
