"""Logical optimization of region formulas.

The solver evaluates conjunctions in a ready-first order, but the MOFT
atom still enumerates every sample before temporal atoms filter them.
Queries like the paper's running example constrain the instant through
Time rollups with *constant* members (``R^{timeOfDay}(t) = "Morning"``),
and the Time dimension can invert those rollups to an instant set up
front.  :func:`push_down_time` rewrites the formula so the MOFT atom only
emits samples at allowed instants — the classical selection push-down,
here across the Time dimension.

The rewrite is semantics-preserving: the original rollup atoms are kept
(they also handle variables bound elsewhere), only the enumeration is
narrowed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Iterator, Optional, Set, Tuple

from repro.query import ast
from repro.query.region import EvaluationContext, SpatioTemporalRegion


@dataclass(frozen=True)
class FilteredMoft(ast.Atom):
    """A MOFT atom restricted to an instant set (optimizer-produced)."""

    inner: ast.Moft
    instants: FrozenSet[float]

    def _terms(self) -> Tuple:
        return self.inner._terms()

    def can_enumerate(self, env) -> bool:
        return True

    def check(self, context, env) -> bool:
        t = ast.term_value(self.inner.t, env)
        if float(t) not in self.instants:
            return False
        return self.inner.check(context, env)

    def enumerate_bindings(self, context, env) -> Iterator[Dict]:
        moft = context.moft(self.inner.moft_name)
        restricted = moft.restrict_instants(set(self.instants))
        # Delegate to a Moft atom over the restricted table by swapping the
        # context's table temporarily — cheaper: inline the row loop.
        slots = self.inner._terms()
        for row in restricted.tuples():
            new_env = dict(env)
            ok = True
            for slot, value in zip(slots, row):
                if ast.is_bound(slot, new_env):
                    if ast.term_value(slot, new_env) != value:
                        ok = False
                        break
                else:
                    new_env[slot.name] = value
            if ok:
                yield new_env


def push_down_time(
    region: SpatioTemporalRegion, context: EvaluationContext
) -> SpatioTemporalRegion:
    """Return an equivalent region with temporal selections pushed down.

    Only applies when the top-level formula is a conjunction containing a
    single MOFT atom with a variable ``t`` term and at least one
    ``TimeRollup(t, level, Const)`` conjunct; otherwise the region is
    returned unchanged.
    """
    formula = region.formula
    if not isinstance(formula, ast.And):
        return region
    moft_atoms = [
        c for c in formula.children if isinstance(c, ast.Moft)
    ]
    if len(moft_atoms) != 1:
        return region
    moft_atom = moft_atoms[0]
    if not isinstance(moft_atom.t, ast.Var):
        return region
    t_name = moft_atom.t.name
    allowed: Optional[Set[float]] = None
    for child in formula.children:
        if (
            isinstance(child, ast.TimeRollup)
            and isinstance(child.t, ast.Var)
            and child.t.name == t_name
            and isinstance(child.member, ast.Const)
        ):
            instants = {
                float(t)
                for t in context.time.instants_where(
                    child.level, child.member.value
                )
            }
            allowed = instants if allowed is None else allowed & instants
        elif (
            isinstance(child, ast.TimeRollupCompare)
            and isinstance(child.t, ast.Var)
            and child.t.name == t_name
        ):
            op = ast.parse_operator(child.op)
            instants = {
                float(t)
                for t in context.time.instants
                if (
                    context.time.try_rollup(t, child.level) is not None
                    and op(context.time.try_rollup(t, child.level), child.value)
                )
            }
            allowed = instants if allowed is None else allowed & instants
    if allowed is None:
        return region
    new_children = tuple(
        FilteredMoft(child, frozenset(allowed))
        if child is moft_atom
        else child
        for child in formula.children
    )
    return SpatioTemporalRegion(
        region.output_variables, ast.And(*new_children)
    )
