"""Logical optimization of region formulas and aggregate pipelines.

Two rewrite families live here:

* :func:`push_down_time` — the solver evaluates conjunctions in a
  ready-first order, but the MOFT atom still enumerates every sample
  before temporal atoms filter them.  Queries like the paper's running
  example constrain the instant through Time rollups with *constant*
  members (``R^{timeOfDay}(t) = "Morning"``), and the Time dimension can
  invert those rollups to an instant set up front.  The rewrite narrows
  the MOFT atom's enumeration to allowed instants — classical selection
  push-down, here across the Time dimension.  Semantics-preserving: the
  original rollup atoms are kept (they also handle variables bound
  elsewhere), only the enumeration is narrowed.

* :func:`route_through_window` — the physical rewrite behind the
  materialized pre-aggregation layer (:mod:`repro.preagg`).  When a
  through-style aggregate targets geometry ids that are all materialized
  in a registered, fresh :class:`~repro.preagg.PreAggStore` and its time
  window contains at least one whole granule, the scan is replaced by a
  store lookup plus (for misaligned windows) a residual *sliver* scan
  over only the objects sampled outside the covered granule run.  The
  route is exact by construction — the differential oracle in
  ``tests/parallel`` asserts it against the serial scan.  Outcomes are
  observable as ``preagg_hits`` / ``preagg_misses`` /
  ``sliver_scan_rows`` counters and the ``preagg_lookup`` stage timer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    Optional,
    Set,
    Tuple,
)

from repro.mo.moft import MOFT, is_member_instant, sorted_instants
from repro.obs import PipelineStats
from repro.query import ast
from repro.query.region import EvaluationContext, SpatioTemporalRegion

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.preagg.store import PreAggStore


@dataclass(frozen=True)
class FilteredMoft(ast.Atom):
    """A MOFT atom restricted to an instant set (optimizer-produced).

    Membership uses the same canonical sorted-array, ulp-tolerant
    predicate as :meth:`~repro.mo.moft.MOFT.restrict_instants`
    (:func:`repro.mo.moft.is_member_instant`) — never exact float set
    membership, which silently drops instants that drifted 1 ulp
    through interpolation or granule arithmetic.
    """

    inner: ast.Moft
    instants: FrozenSet[float]

    def _terms(self) -> Tuple:
        return self.inner._terms()

    def can_enumerate(self, env) -> bool:
        return True

    @property
    def _sorted_instants(self):
        """The canonical sorted-array form of ``instants`` (cached)."""
        cached = self.__dict__.get("_sorted_instants_cache")
        if cached is None:
            cached = sorted_instants(self.instants)
            object.__setattr__(self, "_sorted_instants_cache", cached)
        return cached

    def _describe_line(self) -> str:
        # The instant set can hold thousands of floats; summarize it.
        return (
            f"FilteredMoft({self.inner._describe_line()}, "
            f"instants={len(self.instants)})"
        )

    def check(self, context, env) -> bool:
        t = ast.term_value(self.inner.t, env)
        if not is_member_instant(float(t), self._sorted_instants):
            return False
        return self.inner.check(context, env)

    def enumerate_bindings(self, context, env) -> Iterator[Dict]:
        moft = context.moft(self.inner.moft_name)
        restricted = moft.restrict_instants(set(self.instants))
        # Delegate to a Moft atom over the restricted table by swapping the
        # context's table temporarily — cheaper: inline the row loop.
        slots = self.inner._terms()
        for row in restricted.tuples():
            new_env = dict(env)
            ok = True
            for slot, value in zip(slots, row):
                if ast.is_bound(slot, new_env):
                    if ast.term_value(slot, new_env) != value:
                        ok = False
                        break
                else:
                    new_env[slot.name] = value
            if ok:
                yield new_env


def push_down_time(
    region: SpatioTemporalRegion, context: EvaluationContext
) -> SpatioTemporalRegion:
    """Return an equivalent region with temporal selections pushed down.

    Only applies when the top-level formula is a conjunction containing a
    single MOFT atom with a variable ``t`` term and at least one
    ``TimeRollup(t, level, Const)`` conjunct; otherwise the region is
    returned unchanged.
    """
    formula = region.formula
    if not isinstance(formula, ast.And):
        return region
    moft_atoms = [
        c for c in formula.children if isinstance(c, ast.Moft)
    ]
    if len(moft_atoms) != 1:
        return region
    moft_atom = moft_atoms[0]
    if not isinstance(moft_atom.t, ast.Var):
        return region
    t_name = moft_atom.t.name
    allowed: Optional[Set[float]] = None
    for child in formula.children:
        if (
            isinstance(child, ast.TimeRollup)
            and isinstance(child.t, ast.Var)
            and child.t.name == t_name
            and isinstance(child.member, ast.Const)
        ):
            instants = {
                float(t)
                for t in context.time.instants_where(
                    child.level, child.member.value
                )
            }
            allowed = instants if allowed is None else allowed & instants
        elif (
            isinstance(child, ast.TimeRollupCompare)
            and isinstance(child.t, ast.Var)
            and child.t.name == t_name
        ):
            op = ast.parse_operator(child.op)
            instants = {
                float(t)
                for t in context.time.instants
                if (
                    context.time.try_rollup(t, child.level) is not None
                    and op(context.time.try_rollup(t, child.level), child.value)
                )
            }
            allowed = instants if allowed is None else allowed & instants
    if allowed is None:
        return region
    new_children = tuple(
        FilteredMoft(child, frozenset(allowed))
        if child is moft_atom
        else child
        for child in formula.children
    )
    return SpatioTemporalRegion(
        region.output_variables, ast.And(*new_children)
    )


# ---------------------------------------------------------------------------
# Pre-aggregation routing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PreAggRoute:
    """A successful store route for one through-style aggregate.

    ``run`` is the covered granule run ``(first, last)`` the store
    answers directly; ``sliver`` (possibly None) is the residual MOFT a
    scan must still cover for misaligned windows — the full
    window-restricted histories of the objects sampled outside the run.
    ``aligned`` records whether the window landed exactly on granule
    boundaries (then ``sliver`` is always None).
    """

    store: "PreAggStore"
    run: Tuple[int, int]
    sliver: Optional[MOFT]
    sliver_rows: int
    aligned: bool


def route_through_window(
    context: EvaluationContext,
    target: Tuple[str, str],
    ids: Iterable[Hashable],
    moft: MOFT,
    window: Optional[Tuple[float, float]],
    stats: Optional[PipelineStats] = None,
) -> Optional[PreAggRoute]:
    """Try to answer a through-aggregate from a registered store.

    Returns a :class:`PreAggRoute` when a registered, *fresh* store
    materializes every queried geometry id of ``target`` over exactly
    this MOFT and the window contains at least one whole granule;
    returns None otherwise (the caller falls back to the scan).  A stale
    store is a miss — the planner never refreshes behind the caller's
    back; call :meth:`~repro.preagg.PreAggStore.update` explicitly.

    ``window=None`` means the whole table, which a fresh store covers by
    construction (every sample instant is registered and every
    registered instant lies in some granule).

    Counter policy: ``preagg_misses`` only fires when the context has at
    least one registered store, so contexts that never opted into
    pre-aggregation don't accumulate noise.
    """
    observers = [context.obs] + ([stats] if stats is not None else [])
    layer, kind = target
    ids = list(ids)

    def miss() -> None:
        if context.has_preagg:
            for observer in observers:
                observer.incr("preagg_misses")
        return None

    store = context.preagg_for(moft, layer, kind, ids)
    if store is None or store.is_stale():
        return miss()
    with context.obs.stage("preagg_lookup"):
        if window is None:
            if len(store.partition) == 0:
                return miss()
            run: Optional[Tuple[int, int]] = (0, len(store.partition) - 1)
            sliver, rows, aligned = None, 0, True
        else:
            start, end = window
            run = store.covered_run(start, end)
            if run is None:
                # The window holds no whole granule; a pure sliver scan
                # would just be the serial scan with extra steps.
                return miss()
            aligned = store.is_aligned(start, end)
            sliver, rows = store.sliver_subtable(start, end, run)
    for observer in observers:
        observer.incr("preagg_hits")
        if rows:
            observer.incr("sliver_scan_rows", rows)
    return PreAggRoute(
        store=store, run=run, sliver=sliver, sliver_rows=rows, aligned=aligned
    )
