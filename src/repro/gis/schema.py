"""GIS dimension schemas — Definition 1 of the paper.

A GIS dimension schema is a tuple ``(H, A, D)``:

* ``H`` — one granularity graph ``H(L)`` per layer, over geometry kinds,
  with edges from finer to coarser kinds, a unique source ``point`` and the
  sink ``All``;
* ``A`` — partial functions ``Att: A → G × L`` placing application
  attributes (neighborhood, river, school, …) on a geometry kind of a
  layer;
* ``D`` — classical OLAP dimension schemas for the application part.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

import networkx as nx

from repro.errors import SchemaError
from repro.gis import geometries as gk
from repro.olap.dimension import DimensionSchema


class LayerHierarchy:
    """The granularity graph ``H(L)`` of one layer (Definition 1).

    Conditions checked at construction:

    (a/b) nodes are geometry kinds; an edge ``(Gi, Gj)`` states that Gj is
    composed of Gi geometries;
    (c) ``All`` is present and has no outgoing edges;
    (d) exactly one node, ``point``, has no incoming edges.
    """

    def __init__(
        self,
        layer_name: str,
        edges: Iterable[Tuple[str, str]] | None = None,
    ) -> None:
        if not layer_name:
            raise SchemaError("layer name must be non-empty")
        self.layer_name = layer_name
        graph = nx.DiGraph()
        chosen = tuple(edges) if edges is not None else gk.DEFAULT_COMPOSITION
        for finer, coarser in chosen:
            gk.validate_kind(finer)
            gk.validate_kind(coarser)
            if finer == coarser:
                raise SchemaError(f"self edge on kind {finer!r}")
            graph.add_edge(finer, coarser)
        if gk.POINT not in graph:
            raise SchemaError(
                f"hierarchy of layer {layer_name!r} must include 'point'"
            )
        if gk.ALL not in graph:
            raise SchemaError(
                f"hierarchy of layer {layer_name!r} must include 'All'"
            )
        if not nx.is_directed_acyclic_graph(graph):
            raise SchemaError(f"hierarchy of layer {layer_name!r} has a cycle")
        if graph.out_degree(gk.ALL) != 0:
            raise SchemaError("'All' must have no outgoing edges")
        sources = [n for n in graph.nodes if graph.in_degree(n) == 0]
        if sources != [gk.POINT] and set(sources) != {gk.POINT}:
            raise SchemaError(
                f"hierarchy of layer {layer_name!r} must have 'point' as its "
                f"only source, found {sorted(sources)}"
            )
        self._graph = graph

    @property
    def kinds(self) -> Set[str]:
        """All geometry kinds appearing in the hierarchy."""
        return set(self._graph.nodes)

    def edges(self) -> List[Tuple[str, str]]:
        """All direct (finer, coarser) pairs."""
        return list(self._graph.edges)

    def coarser(self, kind: str) -> Set[str]:
        """Direct coarser kinds of ``kind``."""
        self._check(kind)
        return set(self._graph.successors(kind))

    def finer(self, kind: str) -> Set[str]:
        """Direct finer kinds of ``kind``."""
        self._check(kind)
        return set(self._graph.predecessors(kind))

    def is_coarsening(self, finer: str, coarser: str) -> bool:
        """True when ``finer`` ⪯ ``coarser`` transitively."""
        self._check(finer)
        self._check(coarser)
        return finer == coarser or nx.has_path(self._graph, finer, coarser)

    def _check(self, kind: str) -> None:
        if kind not in self._graph:
            raise SchemaError(
                f"kind {kind!r} not in hierarchy of layer {self.layer_name!r}"
            )

    def __repr__(self) -> str:
        return f"LayerHierarchy({self.layer_name!r}, kinds={sorted(self.kinds)})"


@dataclass(frozen=True)
class AttributePlacement:
    """One entry of the ``Att`` function: attribute → (kind, layer)."""

    attribute: str
    kind: str
    layer: str

    def __post_init__(self) -> None:
        if not self.attribute:
            raise SchemaError("attribute name must be non-empty")
        gk.validate_kind(self.kind)
        if self.kind in (gk.POINT, gk.ALL):
            raise SchemaError(
                f"attribute {self.attribute!r} cannot be placed on the "
                f"algebraic kind {self.kind!r}"
            )


class GISDimensionSchema:
    """The full GIS dimension schema ``(H, A, D)``.

    Parameters
    ----------
    hierarchies:
        One :class:`LayerHierarchy` per layer.
    placements:
        The ``Att`` function entries.  Each placement's layer must have a
        hierarchy and its kind must appear in that hierarchy.
    application_dimensions:
        OLAP dimension schemas of the application part.  For every
        placement there should be a dimension whose bottom level equals the
        attribute name (the paper's convention: the geometric member is
        associated to the *finest* application category, e.g. polygon ↔
        neighborhood and neighborhood → city in the Neighbourhoods
        dimension).  This linkage is checked lazily by the instance.
    """

    def __init__(
        self,
        hierarchies: Iterable[LayerHierarchy],
        placements: Iterable[AttributePlacement] = (),
        application_dimensions: Iterable[DimensionSchema] = (),
    ) -> None:
        self._hierarchies: Dict[str, LayerHierarchy] = {}
        for hierarchy in hierarchies:
            if hierarchy.layer_name in self._hierarchies:
                raise SchemaError(
                    f"duplicate hierarchy for layer {hierarchy.layer_name!r}"
                )
            self._hierarchies[hierarchy.layer_name] = hierarchy
        if not self._hierarchies:
            raise SchemaError("a GIS dimension schema needs at least one layer")
        self._placements: Dict[str, AttributePlacement] = {}
        for placement in placements:
            if placement.attribute in self._placements:
                raise SchemaError(
                    f"attribute {placement.attribute!r} placed twice"
                )
            if placement.layer not in self._hierarchies:
                raise SchemaError(
                    f"attribute {placement.attribute!r} placed on unknown "
                    f"layer {placement.layer!r}"
                )
            if placement.kind not in self._hierarchies[placement.layer].kinds:
                raise SchemaError(
                    f"attribute {placement.attribute!r} placed on kind "
                    f"{placement.kind!r} absent from layer "
                    f"{placement.layer!r}"
                )
            self._placements[placement.attribute] = placement
        self._dimensions: Dict[str, DimensionSchema] = {}
        for dim in application_dimensions:
            if dim.name in self._dimensions:
                raise SchemaError(f"duplicate application dimension {dim.name!r}")
            self._dimensions[dim.name] = dim

    # -- access ---------------------------------------------------------------

    @property
    def layer_names(self) -> List[str]:
        """All layer names."""
        return sorted(self._hierarchies)

    def hierarchy(self, layer_name: str) -> LayerHierarchy:
        """Return the hierarchy of a layer."""
        try:
            return self._hierarchies[layer_name]
        except KeyError:
            raise SchemaError(f"unknown layer {layer_name!r}") from None

    @property
    def attributes(self) -> List[str]:
        """All placed attribute names."""
        return sorted(self._placements)

    def placement(self, attribute: str) -> AttributePlacement:
        """Return the ``Att`` entry of an attribute."""
        try:
            return self._placements[attribute]
        except KeyError:
            raise SchemaError(f"attribute {attribute!r} not placed") from None

    @property
    def application_dimensions(self) -> Dict[str, DimensionSchema]:
        """The OLAP dimension schemas of the application part."""
        return dict(self._dimensions)

    def application_dimension(self, name: str) -> DimensionSchema:
        """Return one application dimension schema."""
        try:
            return self._dimensions[name]
        except KeyError:
            raise SchemaError(f"unknown application dimension {name!r}") from None

    def dimension_for_attribute(self, attribute: str) -> Optional[DimensionSchema]:
        """Return the application dimension whose bottom level is the attribute."""
        self.placement(attribute)
        for dim in self._dimensions.values():
            if dim.bottom_level == attribute:
                return dim
        return None
