"""The GISOLAP model: GIS dimensions, fact tables and geometric aggregation.

Implements Definitions 1–4 of the paper: layer hierarchies over geometry
kinds, rollup relations and α functions, GIS fact tables, and the
geometric-aggregation integral with its summable rewriting.
"""

from repro.gis.geometries import (
    ALL,
    ALL_GEOMETRY,
    BUILTIN_KINDS,
    DEFAULT_COMPOSITION,
    LINE,
    NODE,
    POI,
    POINT,
    POLYGON,
    POLYLINE,
    expected_class,
    kind_of,
    validate_kind,
)
from repro.gis.layer import Layer
from repro.gis.schema import (
    AttributePlacement,
    GISDimensionSchema,
    LayerHierarchy,
)
from repro.gis.instance import GISDimensionInstance
from repro.gis.facts import (
    BaseGISFactTable,
    GISFactTable,
    TemporalGISFactTable,
)
from repro.gis.aggregation import (
    geometric_aggregation,
    integrate_along_polyline,
    integrate_along_segment,
    integrate_over_polygon,
    sum_at_points,
    summable_aggregate,
)

__all__ = [
    "ALL",
    "ALL_GEOMETRY",
    "BUILTIN_KINDS",
    "DEFAULT_COMPOSITION",
    "LINE",
    "NODE",
    "POI",
    "POINT",
    "POLYGON",
    "POLYLINE",
    "expected_class",
    "kind_of",
    "validate_kind",
    "Layer",
    "AttributePlacement",
    "GISDimensionSchema",
    "LayerHierarchy",
    "GISDimensionInstance",
    "BaseGISFactTable",
    "GISFactTable",
    "TemporalGISFactTable",
    "geometric_aggregation",
    "integrate_along_polyline",
    "integrate_along_segment",
    "integrate_over_polygon",
    "sum_at_points",
    "summable_aggregate",
]
