"""Thematic layers: the geometric part of a GIS dimension.

A layer stores finitely many identified geometric elements per geometry
kind (nodes, lines, polylines, polygons).  The algebraic ``point`` level is
*not* stored — it is the infinite set of points of the plane, and the
rollup relation from points to stored elements is answered on demand by
:meth:`Layer.locate_point` (exactly as the paper describes the edge
``(point, polygon)`` "associates infinite point sets with polygons").
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Set, Tuple

from repro.errors import GeometryError, InstanceError, SchemaError
from repro.geometry.index import UniformGridIndex, index_for_geometries
from repro.geometry.overlay import geometries_intersect, geometry_bbox
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.polyline import Polyline
from repro.geometry.segment import Segment
from repro.gis import geometries as gk


class Layer:
    """A named thematic layer holding identified geometries by kind."""

    def __init__(self, name: str) -> None:
        if not name:
            raise SchemaError("layer name must be non-empty")
        self.name = name
        self._elements: Dict[str, Dict[Hashable, object]] = {}
        self._indexes: Dict[str, UniformGridIndex] = {}

    def __repr__(self) -> str:
        sizes = {kind: len(elems) for kind, elems in self._elements.items()}
        return f"Layer({self.name!r}, {sizes})"

    # -- population ----------------------------------------------------------

    def add(self, kind: str, element_id: Hashable, geometry: object) -> None:
        """Add one identified geometry of the given kind.

        The geometry's Python type must match the kind; ids must be unique
        within (layer, kind).
        """
        cls = gk.expected_class(kind)
        if not isinstance(geometry, cls):
            raise InstanceError(
                f"kind {kind!r} expects {cls.__name__}, got "
                f"{type(geometry).__name__}"
            )
        bucket = self._elements.setdefault(kind, {})
        if element_id in bucket:
            raise InstanceError(
                f"duplicate id {element_id!r} for kind {kind!r} in layer "
                f"{self.name!r}"
            )
        bucket[element_id] = geometry
        self._indexes.pop(kind, None)  # invalidate

    def add_node(self, element_id: Hashable, point: Point) -> None:
        """Add a point feature."""
        self.add(gk.NODE, element_id, point)

    def add_line(self, element_id: Hashable, segment: Segment) -> None:
        """Add a line (segment) feature."""
        self.add(gk.LINE, element_id, segment)

    def add_polyline(self, element_id: Hashable, polyline: Polyline) -> None:
        """Add a polyline feature."""
        self.add(gk.POLYLINE, element_id, polyline)

    def add_polygon(self, element_id: Hashable, polygon: Polygon) -> None:
        """Add a polygon feature."""
        self.add(gk.POLYGON, element_id, polygon)

    # -- access -----------------------------------------------------------------

    def kinds(self) -> Set[str]:
        """Geometry kinds with at least one element."""
        return {kind for kind, elems in self._elements.items() if elems}

    def elements(self, kind: str) -> Dict[Hashable, object]:
        """Return ``{id -> geometry}`` for a kind (empty dict if none)."""
        gk.validate_kind(kind)
        return dict(self._elements.get(kind, {}))

    def element(self, kind: str, element_id: Hashable) -> object:
        """Return one geometry; unknown ids raise."""
        try:
            return self._elements[kind][element_id]
        except KeyError:
            raise InstanceError(
                f"no element {element_id!r} of kind {kind!r} in layer "
                f"{self.name!r}"
            ) from None

    def __contains__(self, key: Tuple[str, Hashable]) -> bool:
        kind, element_id = key
        return element_id in self._elements.get(kind, {})

    def size(self, kind: Optional[str] = None) -> int:
        """Number of elements of one kind, or of all kinds."""
        if kind is not None:
            return len(self._elements.get(kind, {}))
        return sum(len(elems) for elems in self._elements.values())

    # -- spatial queries ----------------------------------------------------------

    def _index(self, kind: str) -> Optional[UniformGridIndex]:
        if kind not in self._indexes:
            elems = self._elements.get(kind, {})
            if not elems:
                return None
            self._indexes[kind] = index_for_geometries(elems)
        return self._indexes[kind]

    def locate_point(self, kind: str, point: Point) -> Set[Hashable]:
        """Ids of elements of ``kind`` containing ``point``.

        This is the paper's rollup relation ``r^{point,kind}_L`` evaluated
        at one point.  Points on shared boundaries belong to every adjacent
        element.
        """
        gk.validate_kind(kind)
        index = self._index(kind)
        if index is None:
            return set()
        elems = self._elements[kind]
        return {
            candidate
            for candidate in index.query_point(point)
            if geometries_intersect(elems[candidate], point)
        }

    def elements_intersecting(self, kind: str, geometry: object) -> Set[Hashable]:
        """Ids of elements of ``kind`` intersecting an arbitrary geometry."""
        gk.validate_kind(kind)
        index = self._index(kind)
        if index is None:
            return set()
        elems = self._elements[kind]
        try:
            box = geometry_bbox(geometry)
        except GeometryError:
            raise InstanceError(
                f"cannot intersect layer with {type(geometry).__name__}"
            ) from None
        return {
            candidate
            for candidate in index.query_box(box)
            if geometries_intersect(elems[candidate], geometry)
        }
