"""GIS fact tables — Definition 3 of the paper.

Two flavours:

* :class:`GISFactTable` — measures attached to geometry identifiers at some
  kind of some layer, e.g. ``(polyId, Ln, Year, Population)``;
* :class:`BaseGISFactTable` — measures attached to *points* of ``R² × L``,
  e.g. temperature fields.  A base table can hold sampled points and/or a
  density function ``h(x, y)`` used by geometric aggregation.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import InstanceError, SchemaError
from repro.geometry.point import Point
from repro.gis import geometries as gk


class GISFactTable:
    """Measures keyed by geometry id: ``ft: dom(G) × L → dom(M1) × ...``."""

    def __init__(
        self, kind: str, layer_name: str, measures: Sequence[str]
    ) -> None:
        gk.validate_kind(kind)
        if kind in (gk.POINT, gk.ALL):
            raise SchemaError(
                "GIS fact tables attach to identifiable kinds; use "
                "BaseGISFactTable for point-level facts"
            )
        if not measures:
            raise SchemaError("a fact table needs at least one measure")
        if len(set(measures)) != len(measures):
            raise SchemaError("duplicate measure names")
        self.kind = kind
        self.layer_name = layer_name
        self.measures = tuple(measures)
        self._facts: Dict[Hashable, Tuple[float, ...]] = {}

    def __len__(self) -> int:
        return len(self._facts)

    def __contains__(self, element_id: Hashable) -> bool:
        return element_id in self._facts

    def set(self, element_id: Hashable, *values: float) -> None:
        """Record the measures of one geometry id."""
        if len(values) != len(self.measures):
            raise InstanceError(
                f"expected {len(self.measures)} measure values "
                f"({self.measures}), got {len(values)}"
            )
        self._facts[element_id] = tuple(values)

    def get(self, element_id: Hashable, measure: Optional[str] = None):
        """Return one measure value (or the full tuple when unspecified)."""
        try:
            values = self._facts[element_id]
        except KeyError:
            raise InstanceError(
                f"no facts for element {element_id!r} in fact table over "
                f"{self.layer_name}:{self.kind}"
            ) from None
        if measure is None:
            return values
        return values[self._measure_index(measure)]

    def ids(self) -> Set[Hashable]:
        """All geometry ids with facts."""
        return set(self._facts)

    def rows(self) -> Iterable[Dict[str, Hashable]]:
        """Iterate as dict rows with an ``id`` column plus measures."""
        for element_id, values in self._facts.items():
            row: Dict[str, Hashable] = {"id": element_id}
            row.update(zip(self.measures, values))
            yield row

    def _measure_index(self, measure: str) -> int:
        try:
            return self.measures.index(measure)
        except ValueError:
            raise SchemaError(
                f"unknown measure {measure!r}; table has {self.measures}"
            ) from None


class TemporalGISFactTable:
    """Geometry-id facts varying over a temporal level — Example 3.

    "A fact table containing neighborhood populations across time ...
    would be ``(polyId, L_neighb, Year, Population)``": measures are keyed
    by ``(geometry id, temporal member)``, where the temporal member is a
    member of some level of the Time dimension (a year, a month, a day).
    """

    def __init__(
        self,
        kind: str,
        layer_name: str,
        time_level: str,
        measures: Sequence[str],
    ) -> None:
        gk.validate_kind(kind)
        if kind in (gk.POINT, gk.ALL):
            raise SchemaError(
                "temporal GIS fact tables attach to identifiable kinds"
            )
        if not time_level:
            raise SchemaError("a temporal level name is required")
        if not measures:
            raise SchemaError("a fact table needs at least one measure")
        if len(set(measures)) != len(measures):
            raise SchemaError("duplicate measure names")
        self.kind = kind
        self.layer_name = layer_name
        self.time_level = time_level
        self.measures = tuple(measures)
        self._facts: Dict[Tuple[Hashable, Hashable], Tuple[float, ...]] = {}

    def __len__(self) -> int:
        return len(self._facts)

    def set(
        self, element_id: Hashable, time_member: Hashable, *values: float
    ) -> None:
        """Record the measures of one geometry id at one temporal member."""
        if len(values) != len(self.measures):
            raise InstanceError(
                f"expected {len(self.measures)} measure values "
                f"({self.measures}), got {len(values)}"
            )
        self._facts[(element_id, time_member)] = tuple(values)

    def get(
        self,
        element_id: Hashable,
        time_member: Hashable,
        measure: Optional[str] = None,
    ):
        """Return one cell (or one measure of it)."""
        try:
            values = self._facts[(element_id, time_member)]
        except KeyError:
            raise InstanceError(
                f"no facts for ({element_id!r}, {time_member!r}) in "
                f"temporal fact table over {self.layer_name}:{self.kind}"
            ) from None
        if measure is None:
            return values
        try:
            index = self.measures.index(measure)
        except ValueError:
            raise SchemaError(
                f"unknown measure {measure!r}; table has {self.measures}"
            ) from None
        return values[index]

    def series(
        self, element_id: Hashable, measure: str
    ) -> Dict[Hashable, float]:
        """The measure's values over time for one geometry id."""
        if measure not in self.measures:
            raise SchemaError(
                f"unknown measure {measure!r}; table has {self.measures}"
            )
        index = self.measures.index(measure)
        return {
            time_member: values[index]
            for (gid, time_member), values in self._facts.items()
            if gid == element_id
        }

    def at_time(self, time_member: Hashable) -> "GISFactTable":
        """Project onto one temporal member: an ordinary GIS fact table.

        The projection is what the (atemporal) summable rewriting of
        Section 5 consumes — slice by year, then aggregate geometrically.
        """
        snapshot = GISFactTable(self.kind, self.layer_name, self.measures)
        for (gid, member), values in self._facts.items():
            if member == time_member:
                snapshot.set(gid, *values)
        return snapshot

    def time_members(self) -> Set[Hashable]:
        """All temporal members with at least one fact."""
        return {member for _, member in self._facts}


class BaseGISFactTable:
    """Point-level facts: sampled points and/or a density function.

    Definition 3 maps ``R² × L`` to measure tuples.  Finitely many sampled
    points can be stored with :meth:`add_sample`; a *density* callable
    ``h(x, y) -> float`` per measure can be registered with
    :meth:`set_density` and is what the geometric-aggregation integral of
    Definition 4 consumes.
    """

    def __init__(self, layer_name: str, measures: Sequence[str]) -> None:
        if not measures:
            raise SchemaError("a base fact table needs at least one measure")
        if len(set(measures)) != len(measures):
            raise SchemaError("duplicate measure names")
        self.layer_name = layer_name
        self.measures = tuple(measures)
        self._samples: List[Tuple[Point, Tuple[float, ...]]] = []
        self._densities: Dict[str, Callable[[float, float], float]] = {}

    def add_sample(self, point: Point, *values: float) -> None:
        """Record measures observed at one point."""
        if len(values) != len(self.measures):
            raise InstanceError(
                f"expected {len(self.measures)} measure values, got "
                f"{len(values)}"
            )
        self._samples.append((point, tuple(values)))

    def samples(self) -> List[Tuple[Point, Tuple[float, ...]]]:
        """All recorded point samples."""
        return list(self._samples)

    def set_density(
        self, measure: str, density: Callable[[float, float], float]
    ) -> None:
        """Register a density function for a measure."""
        if measure not in self.measures:
            raise SchemaError(
                f"unknown measure {measure!r}; table has {self.measures}"
            )
        self._densities[measure] = density

    def density(self, measure: str) -> Callable[[float, float], float]:
        """Return the density function of a measure."""
        if measure not in self.measures:
            raise SchemaError(
                f"unknown measure {measure!r}; table has {self.measures}"
            )
        try:
            return self._densities[measure]
        except KeyError:
            raise InstanceError(
                f"no density registered for measure {measure!r}"
            ) from None

    def has_density(self, measure: str) -> bool:
        """True when a density function is registered for the measure."""
        return measure in self._densities
