"""GIS dimension instances — Definition 2 of the paper.

An instance provides, on top of a :class:`~repro.gis.schema.GISDimensionSchema`:

* the stored geometries of every layer (:class:`~repro.gis.layer.Layer`);
* the **rollup relations** ``r^{Gj,Gk}_L ⊆ dom(Gj) × dom(Gk)`` for every
  hierarchy edge between identifiable kinds (e.g. which lines compose which
  polyline), plus the infinite ``(point, G)`` relations answered
  algorithmically through the layer geometry;
* the **α functions** ``α^{A,G}_L: dom(A) → dom(G) × dom(L)`` tying
  application members to geometry ids (``α^{neighb,Pg}_{Ln}(Berchem) = pg``);
* application **dimension instances** with their RUP rollup functions; and
* attribute values on application members (``n.income < 1500``).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Optional, Set, Tuple

from repro.errors import InstanceError, RollupError, SchemaError
from repro.geometry.overlay import LayerOverlay
from repro.geometry.point import Point
from repro.gis import geometries as gk
from repro.gis.layer import Layer
from repro.gis.schema import GISDimensionSchema
from repro.olap.dimension import DimensionInstance


class GISDimensionInstance:
    """A populated GIS dimension."""

    def __init__(self, schema: GISDimensionSchema) -> None:
        self.schema = schema
        self._layers: Dict[str, Layer] = {
            name: Layer(name) for name in schema.layer_names
        }
        # (layer, finer kind, coarser kind) -> set of (finer id, coarser id)
        self._rollup_relations: Dict[
            Tuple[str, str, str], Set[Tuple[Hashable, Hashable]]
        ] = {}
        # attribute -> {application member -> geometry id}
        self._alpha: Dict[str, Dict[Hashable, Hashable]] = {}
        # application dimension name -> instance
        self._app_instances: Dict[str, DimensionInstance] = {
            name: DimensionInstance(dim)
            for name, dim in schema.application_dimensions.items()
        }
        # (attribute, member) -> {value name -> value}
        self._member_values: Dict[Tuple[str, Hashable], Dict[str, Hashable]] = {}
        self._overlay: Optional[LayerOverlay] = None

    # -- layers -------------------------------------------------------------------

    def layer(self, name: str) -> Layer:
        """Return a layer by name."""
        try:
            return self._layers[name]
        except KeyError:
            raise InstanceError(f"unknown layer {name!r}") from None

    def add_geometry(
        self, layer_name: str, kind: str, element_id: Hashable, geometry: object
    ) -> None:
        """Add an identified geometry to a layer.

        The kind must appear in the layer's hierarchy.
        """
        hierarchy = self.schema.hierarchy(layer_name)
        if kind not in hierarchy.kinds:
            raise InstanceError(
                f"kind {kind!r} is not in the hierarchy of layer "
                f"{layer_name!r}"
            )
        self.layer(layer_name).add(kind, element_id, geometry)
        self._overlay = None  # geometry changed; rebuild lazily

    # -- rollup relations (r) -----------------------------------------------------

    def relate(
        self,
        layer_name: str,
        finer_kind: str,
        finer_id: Hashable,
        coarser_kind: str,
        coarser_id: Hashable,
    ) -> None:
        """Record ``(finer_id, coarser_id) ∈ r^{finer,coarser}_layer``.

        Both elements must exist in the layer (``All``'s single member is
        implicit), and the kinds must form a hierarchy edge.
        """
        hierarchy = self.schema.hierarchy(layer_name)
        if (finer_kind, coarser_kind) not in hierarchy.edges():
            raise RollupError(
                f"({finer_kind!r}, {coarser_kind!r}) is not an edge of the "
                f"hierarchy of layer {layer_name!r}"
            )
        if finer_kind == gk.POINT:
            raise RollupError(
                "the (point, G) relation is infinite and answered "
                "algorithmically; do not materialize it"
            )
        layer = self.layer(layer_name)
        if (finer_kind, finer_id) not in layer:
            raise InstanceError(
                f"no element {finer_id!r} of kind {finer_kind!r} in layer "
                f"{layer_name!r}"
            )
        if coarser_kind != gk.ALL and (coarser_kind, coarser_id) not in layer:
            raise InstanceError(
                f"no element {coarser_id!r} of kind {coarser_kind!r} in "
                f"layer {layer_name!r}"
            )
        key = (layer_name, finer_kind, coarser_kind)
        self._rollup_relations.setdefault(key, set()).add((finer_id, coarser_id))

    def rollup_relation(
        self, layer_name: str, finer_kind: str, coarser_kind: str
    ) -> Set[Tuple[Hashable, Hashable]]:
        """Return the materialized relation ``r^{finer,coarser}_layer``.

        For ``coarser_kind == All`` the relation is synthesized: every
        stored element of ``finer_kind`` relates to ``all``.
        """
        hierarchy = self.schema.hierarchy(layer_name)
        if (finer_kind, coarser_kind) not in hierarchy.edges():
            raise RollupError(
                f"({finer_kind!r}, {coarser_kind!r}) is not an edge of the "
                f"hierarchy of layer {layer_name!r}"
            )
        if coarser_kind == gk.ALL:
            layer = self.layer(layer_name)
            return {
                (element_id, gk.ALL_GEOMETRY)
                for element_id in layer.elements(finer_kind)
            }
        return set(
            self._rollup_relations.get((layer_name, finer_kind, coarser_kind), set())
        )

    def point_rollup(
        self, layer_name: str, kind: str, point: Point
    ) -> Set[Hashable]:
        """Evaluate the infinite relation ``r^{point,kind}_layer`` at a point.

        This is the paper's ``r^{Pt,Pg}_{Ln}(x, y, pg)`` atom: the ids of
        the elements of ``kind`` containing ``(x, y)``.
        """
        hierarchy = self.schema.hierarchy(layer_name)
        if kind not in hierarchy.kinds or not hierarchy.is_coarsening(
            gk.POINT, kind
        ):
            raise RollupError(
                f"kind {kind!r} is not above 'point' in layer {layer_name!r}"
            )
        return self.layer(layer_name).locate_point(kind, point)

    # -- alpha functions ------------------------------------------------------------

    def set_alpha(
        self, attribute: str, member: Hashable, element_id: Hashable
    ) -> None:
        """Record ``α^{attribute}(member) = element_id``.

        The attribute's placement fixes the kind and layer; the element
        must exist there.  Registers the member in the application
        dimension whose bottom level is the attribute, when one exists.
        """
        placement = self.schema.placement(attribute)
        layer = self.layer(placement.layer)
        if (placement.kind, element_id) not in layer:
            raise InstanceError(
                f"α target {element_id!r} of kind {placement.kind!r} missing "
                f"from layer {placement.layer!r}"
            )
        mapping = self._alpha.setdefault(attribute, {})
        existing = mapping.get(member)
        if existing is not None and existing != element_id:
            raise InstanceError(
                f"α^{attribute}({member!r}) already set to {existing!r}"
            )
        mapping[member] = element_id
        dim = self.schema.dimension_for_attribute(attribute)
        if dim is not None:
            self._app_instances[dim.name].add_member(attribute, member)

    def alpha(self, attribute: str, member: Hashable) -> Hashable:
        """Return ``α^{attribute}(member)`` — the geometry id of a member."""
        self.schema.placement(attribute)
        try:
            return self._alpha[attribute][member]
        except KeyError:
            raise InstanceError(
                f"α^{attribute}({member!r}) is undefined"
            ) from None

    def alpha_members(self, attribute: str) -> Set[Hashable]:
        """All members with a defined α for the attribute."""
        self.schema.placement(attribute)
        return set(self._alpha.get(attribute, {}))

    def alpha_inverse(self, attribute: str, element_id: Hashable) -> Set[Hashable]:
        """Members mapped onto a given geometry id (usually at most one)."""
        self.schema.placement(attribute)
        return {
            member
            for member, gid in self._alpha.get(attribute, {}).items()
            if gid == element_id
        }

    # -- application part ------------------------------------------------------------

    def application_instance(self, dimension_name: str) -> DimensionInstance:
        """Return the instance of one application dimension."""
        try:
            return self._app_instances[dimension_name]
        except KeyError:
            raise InstanceError(
                f"unknown application dimension {dimension_name!r}"
            ) from None

    def set_member_value(
        self, attribute: str, member: Hashable, name: str, value: Hashable
    ) -> None:
        """Attach a named value to an application member (``n.income``)."""
        self.schema.placement(attribute)
        self._member_values.setdefault((attribute, member), {})[name] = value

    def member_value(
        self, attribute: str, member: Hashable, name: str
    ) -> Hashable:
        """Read a named value of an application member."""
        try:
            return self._member_values[(attribute, member)][name]
        except KeyError:
            raise InstanceError(
                f"{attribute} member {member!r} has no value {name!r}"
            ) from None

    def try_member_value(
        self, attribute: str, member: Hashable, name: str
    ) -> Optional[Hashable]:
        """Like :meth:`member_value` but None when absent."""
        return self._member_values.get((attribute, member), {}).get(name)

    def members_where(self, attribute: str, predicate) -> Set[Hashable]:
        """All α-registered members whose values satisfy ``predicate``.

        ``predicate`` receives a read function ``value(name)`` so queries
        like "income < 1500" are written
        ``members_where("neighborhood", lambda v: v("income") < 1500)``.
        """
        result: Set[Hashable] = set()
        for member in self.alpha_members(attribute):
            values = self._member_values.get((attribute, member), {})

            def read(name: str, _values=values, _member=member):
                if name not in _values:
                    raise InstanceError(
                        f"{attribute} member {_member!r} has no value {name!r}"
                    )
                return _values[name]

            if predicate(read):
                result.add(member)
        return result

    # -- overlay ----------------------------------------------------------------------

    def overlay(self) -> LayerOverlay:
        """Return (building lazily) the cross-layer overlay.

        The overlay exposes every stored geometry under the name
        ``"<layer>:<kind>"`` so that cross-layer, cross-kind relations can
        be precomputed Piet-style.
        """
        if self._overlay is None:
            named: Dict[str, Dict[Hashable, object]] = {}
            for layer_name, layer in self._layers.items():
                for kind in layer.kinds():
                    named[f"{layer_name}:{kind}"] = layer.elements(kind)
            if not named:
                raise InstanceError("no geometries loaded; cannot build overlay")
            self._overlay = LayerOverlay(named)
        return self._overlay
