"""Geometric aggregation — Definition 4 of the paper.

A geometric aggregation is ``∬_C δ_C(x,y) h(x,y) dx dy`` where ``C`` is a
region defined by an FO formula and ``δ_C`` is 1 on the two-dimensional
parts of ``C``, a Dirac delta on the zero-dimensional parts and a
Dirac-times-Heaviside combination on the one-dimensional parts.  In plain
terms: integrate the density over polygons (area integral), along
polylines (line integral) and sum it at isolated points.

A query is **summable** when ``C`` is a *finite set of elements of some
geometry* and the integral rewrites to ``Σ_{g∈C} h'(g)`` — a sum of
per-element values from a GIS fact table.  Summability is what makes
spatio-temporal queries evaluable over precomputed overlays (Section 5).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import AggregationError, GeometryError
from repro.geometry.algorithms import triangle_area, triangulate
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.polyline import Polyline
from repro.geometry.segment import Segment
from repro.gis.facts import GISFactTable
from repro.olap.aggregation import AggregateFunction

Density = Callable[[float, float], float]


def integrate_over_polygon(
    density: Density, polygon: Polygon, subdivisions: int = 4
) -> float:
    """Area integral ``∬_P h dx dy`` (the 2-dimensional part of δ_C).

    The polygon is triangulated (holes are integrated with negative sign)
    and each triangle evaluated by uniform barycentric subdivision with
    ``subdivisions²`` sub-triangles sampled at their centroids — a midpoint
    rule that is exact for constant densities and second-order accurate in
    general.
    """
    if subdivisions < 1:
        raise AggregationError("subdivisions must be >= 1")
    total = _integrate_ring(density, Polygon(polygon.shell), subdivisions)
    for hole in polygon.holes:
        total -= _integrate_ring(density, Polygon(hole), subdivisions)
    return total


def _integrate_ring(density: Density, polygon: Polygon, subdivisions: int) -> float:
    total = 0.0
    for a, b, c in triangulate(polygon):
        total += _integrate_triangle(density, a, b, c, subdivisions)
    return total


def _integrate_triangle(
    density: Density, a: Point, b: Point, c: Point, n: int
) -> float:
    """Midpoint rule over a regular barycentric subdivision into n² cells."""
    area = triangle_area(a, b, c)
    if area == 0:
        return 0.0
    cell_area = area / (n * n)
    total = 0.0
    for i in range(n):
        for j in range(n - i):
            # "Upward" sub-triangle (i, j).
            u0, v0 = i / n, j / n
            centroid_u = u0 + 1 / (3 * n)
            centroid_v = v0 + 1 / (3 * n)
            total += _sample_barycentric(density, a, b, c, centroid_u, centroid_v)
            # "Downward" companion, present when inside the triangle.
            if j < n - i - 1:
                centroid_u = u0 + 2 / (3 * n)
                centroid_v = v0 + 2 / (3 * n)
                total += _sample_barycentric(
                    density, a, b, c, centroid_u, centroid_v
                )
    return total * cell_area


def _sample_barycentric(
    density: Density, a: Point, b: Point, c: Point, u: float, v: float
) -> float:
    w = 1.0 - u - v
    x = w * float(a.x) + u * float(b.x) + v * float(c.x)
    y = w * float(a.y) + u * float(b.y) + v * float(c.y)
    return density(x, y)


def integrate_along_polyline(
    density: Density, polyline: Polyline, samples_per_segment: int = 16
) -> float:
    """Line integral ``∫_L h ds`` (the 1-dimensional part of δ_C)."""
    if samples_per_segment < 1:
        raise AggregationError("samples_per_segment must be >= 1")
    total = 0.0
    for segment in polyline.segments():
        total += integrate_along_segment(density, segment, samples_per_segment)
    return total


def integrate_along_segment(
    density: Density, segment: Segment, samples: int = 16
) -> float:
    """Line integral of the density along one segment (midpoint rule)."""
    length = segment.length
    if length == 0:
        return 0.0
    step = 1.0 / samples
    total = 0.0
    for i in range(samples):
        p = segment.point_at((i + 0.5) * step)
        total += density(float(p.x), float(p.y))
    return total * length * step


def sum_at_points(density: Density, points: Iterable[Point]) -> float:
    """Dirac part: ``Σ_p h(p)`` over the zero-dimensional elements."""
    return sum(density(float(p.x), float(p.y)) for p in points)


def geometric_aggregation(
    density: Density,
    polygons: Sequence[Polygon] = (),
    polylines: Sequence[Polyline] = (),
    points: Sequence[Point] = (),
    subdivisions: int = 4,
    samples_per_segment: int = 16,
) -> float:
    """Evaluate Definition 4 over a region given by its dimensional parts.

    ``C`` decomposes into two-dimensional parts (polygons), one-dimensional
    parts (polylines) and zero-dimensional parts (points); δ_C weighs each
    appropriately and the total is the sum of the three contributions.
    """
    total = sum(
        integrate_over_polygon(density, polygon, subdivisions)
        for polygon in polygons
    )
    total += sum(
        integrate_along_polyline(density, polyline, samples_per_segment)
        for polyline in polylines
    )
    total += sum_at_points(density, points)
    return total


def summable_aggregate(
    element_ids: Iterable[Hashable],
    fact_table: GISFactTable,
    measure: str,
    function: AggregateFunction | str = AggregateFunction.SUM,
) -> float:
    """The summable rewriting ``Σ_{g∈C} h'(g)`` (Section 5).

    ``element_ids`` is the finite condition set ``C`` (geometry ids
    produced by the geometric subquery); ``h'`` reads the measure from the
    GIS fact table.  Besides SUM, any function of Definition 7 may fold the
    per-element values.
    """
    if isinstance(function, str):
        function = AggregateFunction.parse(function)
    ids = list(element_ids)
    if function is AggregateFunction.COUNT:
        return len(ids)
    values = [fact_table.get(element_id, measure) for element_id in ids]
    return function.apply(values)
