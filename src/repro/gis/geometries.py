"""Geometry kinds — the set ``G`` of the paper's data model.

Section 3: "We assume that G contains at least the following elements
(geometries): point, node, line, polyline, polygon and the distinguished
element All.  More can be added."  ``point`` is the algebraic bottom (its
domain is all of ``R² × L``), ``All`` is the top with the single member
``all``; every other kind has a domain of geometry identifiers.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.errors import SchemaError
from repro.geometry.point import Point
from repro.geometry.poi import Poi
from repro.geometry.polygon import Polygon
from repro.geometry.polyline import Polyline
from repro.geometry.segment import Segment

#: The algebraic bottom kind: infinite point sets, never materialized.
POINT = "point"
#: A named point feature (school, store, bus stop): finite, identified.
NODE = "node"
#: A straight line segment (one piece of a polyline).
LINE = "line"
#: A chain of lines (street, river, highway).
POLYLINE = "polyline"
#: A region, possibly with holes (neighborhood, city, province).
POLYGON = "polygon"
#: A place of interest: a point feature with an influence radius (disc).
POI = "poi"
#: The distinguished top element.
ALL = "All"

#: All built-in geometry kinds.
BUILTIN_KINDS = (POINT, NODE, LINE, POLYLINE, POLYGON, POI, ALL)

#: The single member of the All kind.
ALL_GEOMETRY = "all"

#: Which Python geometry class realizes each identifiable kind.
KIND_CLASSES: Dict[str, Type] = {
    NODE: Point,
    LINE: Segment,
    POLYLINE: Polyline,
    POLYGON: Polygon,
    POI: Poi,
}

#: The default composition edges among built-in kinds: ``(finer, coarser)``.
#: Mirrors Figure 2: point -> node, point -> line -> polyline -> All,
#: point -> polygon -> All, node -> All.
DEFAULT_COMPOSITION = (
    (POINT, NODE),
    (POINT, LINE),
    (LINE, POLYLINE),
    (POINT, POLYGON),
    (POINT, POI),
    (NODE, ALL),
    (POLYLINE, ALL),
    (POLYGON, ALL),
    (POI, ALL),
)


def validate_kind(kind: str) -> str:
    """Return ``kind`` unchanged when it is a known geometry kind."""
    if kind not in BUILTIN_KINDS:
        raise SchemaError(
            f"unknown geometry kind {kind!r}; expected one of {BUILTIN_KINDS}"
        )
    return kind


def expected_class(kind: str) -> Type:
    """Return the geometry class that elements of ``kind`` must be.

    ``point`` and ``All`` raise: the former is algebraic (never stored),
    the latter has no geometric extension.
    """
    validate_kind(kind)
    try:
        return KIND_CLASSES[kind]
    except KeyError:
        raise SchemaError(
            f"geometry kind {kind!r} has no stored representation"
        ) from None


def kind_of(geometry: object) -> str:
    """Classify a geometry object into its kind."""
    for kind, cls in KIND_CLASSES.items():
        if isinstance(geometry, cls):
            return kind
    raise SchemaError(
        f"object of type {type(geometry).__name__} is not a supported geometry"
    )
