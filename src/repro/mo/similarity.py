"""Trajectory similarity measures.

Meratnia & de By (Section 2 of the paper) "identify similar trajectories
and merge them in a single one"; :mod:`repro.mo.flow` does the merging,
this module does the identifying.  Two classical measures over sampled
trajectories:

* **discrete Fréchet distance** — the minimal leash length for two walkers
  traversing the two point sequences monotonically (order-aware);
* **Hausdorff distance** — the largest distance from a point of one
  sequence to the nearest point of the other (order-blind).

Both operate on the *spatial* sequences; to compare trajectories with
different sampling rates, normalize first with
:func:`repro.mo.cleaning.resample_uniform`.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.errors import TrajectoryError
from repro.geometry.point import Point
from repro.mo.moft import MOFT
from repro.mo.trajectory import TrajectorySample


def discrete_frechet(
    a: Sequence[Point], b: Sequence[Point]
) -> float:
    """Discrete Fréchet distance between two point sequences.

    Dynamic program over the coupling lattice; O(len(a)·len(b)).
    """
    if not a or not b:
        raise TrajectoryError("Fréchet distance needs non-empty sequences")
    n, m = len(a), len(b)
    previous: List[float] = [0.0] * m
    for i in range(n):
        current = [0.0] * m
        for j in range(m):
            d = a[i].distance_to(b[j])
            if i == 0 and j == 0:
                reach = d
            elif i == 0:
                reach = max(current[j - 1], d)
            elif j == 0:
                reach = max(previous[j], d)
            else:
                reach = max(
                    min(previous[j], previous[j - 1], current[j - 1]), d
                )
            current[j] = reach
        previous = current
    return previous[m - 1]


def hausdorff(a: Sequence[Point], b: Sequence[Point]) -> float:
    """Symmetric Hausdorff distance between two point sets."""
    if not a or not b:
        raise TrajectoryError("Hausdorff distance needs non-empty sequences")

    def directed(src: Sequence[Point], dst: Sequence[Point]) -> float:
        return max(min(p.distance_to(q) for q in dst) for p in src)

    return max(directed(a, b), directed(b, a))


def sample_frechet(a: TrajectorySample, b: TrajectorySample) -> float:
    """Discrete Fréchet distance between two trajectory samples."""
    return discrete_frechet(a.positions, b.positions)


def sample_hausdorff(a: TrajectorySample, b: TrajectorySample) -> float:
    """Hausdorff distance between two trajectory samples."""
    return hausdorff(a.positions, b.positions)


def similarity_matrix(
    moft: MOFT, measure: str = "frechet"
) -> Dict[Tuple[Hashable, Hashable], float]:
    """Pairwise distances between every two objects of a MOFT.

    Returns ``{(oid_a, oid_b): distance}`` for ``oid_a < oid_b`` (by repr
    order).  ``measure`` is ``"frechet"`` or ``"hausdorff"``.
    """
    if measure == "frechet":
        fn = discrete_frechet
    elif measure == "hausdorff":
        fn = hausdorff
    else:
        raise TrajectoryError(
            f"unknown measure {measure!r}; expected 'frechet' or 'hausdorff'"
        )
    oids = sorted(moft.objects(), key=repr)
    positions = {
        oid: [Point(x, y) for _, x, y in moft.history(oid)] for oid in oids
    }
    result: Dict[Tuple[Hashable, Hashable], float] = {}
    for i, oid_a in enumerate(oids):
        for oid_b in oids[i + 1 :]:
            result[(oid_a, oid_b)] = fn(positions[oid_a], positions[oid_b])
    return result


def most_similar_pair(
    moft: MOFT, measure: str = "frechet"
) -> Tuple[Hashable, Hashable, float]:
    """The closest pair of objects under the chosen measure."""
    matrix = similarity_matrix(moft, measure)
    if not matrix:
        raise TrajectoryError("need at least two objects")
    (oid_a, oid_b), distance = min(matrix.items(), key=lambda kv: kv[1])
    return (oid_a, oid_b, distance)
