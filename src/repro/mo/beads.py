"""Hornsby–Egenhofer lifeline beads (Section 2, related work).

Between two consecutive observations ``(t1, p1)`` and ``(t2, p2)``, an
object bounded by maximum speed ``v`` can only have been at points
reachable from both: ``|p - p1| <= v (t - t1)`` and ``|p - p2| <= v (t2 - t)``.
In space–time this set is the intersection of two cones — a *bead*; its
projection onto the xy-plane is an ellipse with foci p1, p2 and major axis
``v (t2 - t1)``.  A chain of beads over a whole sample is a *lifeline*.

The paper cites this model as the principled treatment of location
uncertainty between samples; we provide it as the uncertainty-aware
companion to the linear-interpolation semantics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import TrajectoryError
from repro.geometry.point import Point
from repro.mo.trajectory import TrajectorySample


@dataclass(frozen=True)
class Ellipse:
    """An ellipse by center, semi-axes and rotation angle (radians)."""

    center: Point
    semi_major: float
    semi_minor: float
    angle: float

    def contains_point(self, point: Point) -> bool:
        """Closed containment test."""
        ca, sa = math.cos(self.angle), math.sin(self.angle)
        dx = float(point.x) - float(self.center.x)
        dy = float(point.y) - float(self.center.y)
        u = ca * dx + sa * dy
        v = -sa * dx + ca * dy
        if self.semi_major == 0:
            return u == 0 and v == 0
        if self.semi_minor == 0:
            return abs(u) <= self.semi_major and abs(v) <= 1e-12
        return (u / self.semi_major) ** 2 + (v / self.semi_minor) ** 2 <= 1 + 1e-12

    @property
    def area(self) -> float:
        """Area ``π a b``."""
        return math.pi * self.semi_major * self.semi_minor

    def boundary_points(self, count: int = 32) -> List[Point]:
        """Return ``count`` points evenly spaced (in angle) on the boundary."""
        ca, sa = math.cos(self.angle), math.sin(self.angle)
        points = []
        for i in range(count):
            theta = 2 * math.pi * i / count
            u = self.semi_major * math.cos(theta)
            v = self.semi_minor * math.sin(theta)
            points.append(
                Point(
                    float(self.center.x) + ca * u - sa * v,
                    float(self.center.y) + sa * u + ca * v,
                )
            )
        return points

    def intersects_polygon(self, polygon, samples: int = 64) -> bool:
        """Approximate ellipse–polygon intersection test.

        True when the polygon contains the center or a sampled boundary
        point of the ellipse, or the ellipse contains a polygon vertex, or
        a polygon edge crosses the sampled ellipse boundary.  Exact up to
        the angular sampling resolution.
        """
        from repro.geometry.polyline import Polyline

        if polygon.contains_point(self.center):
            return True
        if any(self.contains_point(p) for p in polygon.shell):
            return True
        boundary = self.boundary_points(samples)
        if any(polygon.contains_point(p) for p in boundary):
            return True
        ring = Polyline(boundary + [boundary[0]])
        return any(
            ring.intersects_segment(edge)
            for edge in polygon.boundary_segments()
        )


class Bead:
    """One lifeline bead between two consecutive observations."""

    def __init__(
        self,
        t1: float,
        p1: Point,
        t2: float,
        p2: Point,
        max_speed: float,
    ) -> None:
        if not t1 < t2:
            raise TrajectoryError("bead needs t1 < t2")
        if max_speed <= 0:
            raise TrajectoryError("maximum speed must be positive")
        required = p1.distance_to(p2) / (t2 - t1)
        if required > max_speed * (1 + 1e-9):
            raise TrajectoryError(
                f"observations incompatible with max speed: need "
                f"{required:.6g}, allowed {max_speed:.6g}"
            )
        self.t1, self.p1 = float(t1), p1
        self.t2, self.p2 = float(t2), p2
        self.max_speed = float(max_speed)

    @property
    def duration(self) -> float:
        """``t2 - t1``."""
        return self.t2 - self.t1

    def contains(self, t: float, point: Point) -> bool:
        """True when ``(t, point)`` is a possible space–time position."""
        if not self.t1 <= t <= self.t2:
            return False
        reach_from_start = self.max_speed * (t - self.t1)
        reach_to_end = self.max_speed * (self.t2 - t)
        return (
            self.p1.distance_to(point) <= reach_from_start + 1e-12
            and self.p2.distance_to(point) <= reach_to_end + 1e-12
        )

    def projection(self) -> Ellipse:
        """The bead's footprint on the xy-plane.

        An ellipse with foci ``p1, p2``, major axis ``v (t2 - t1)``.
        """
        f = self.p1.distance_to(self.p2) / 2  # focal half-distance
        a = self.max_speed * self.duration / 2  # semi-major
        b_sq = max(a * a - f * f, 0.0)
        angle = math.atan2(
            float(self.p2.y) - float(self.p1.y),
            float(self.p2.x) - float(self.p1.x),
        )
        return Ellipse(self.p1.midpoint(self.p2), a, math.sqrt(b_sq), angle)

    def possible_at(self, t: float) -> Tuple[Point, float, Point, float]:
        """The two disks whose intersection bounds the position at ``t``.

        Returns ``(center1, radius1, center2, radius2)``: reachability from
        the first observation and backward-reachability from the second.
        """
        if not self.t1 <= t <= self.t2:
            raise TrajectoryError(f"instant {t} outside bead [{self.t1}, {self.t2}]")
        return (
            self.p1,
            self.max_speed * (t - self.t1),
            self.p2,
            self.max_speed * (self.t2 - t),
        )


class Lifeline:
    """A chain of beads over a whole trajectory sample.

    Parameters
    ----------
    sample:
        The observations (at least two).
    max_speed:
        The assumed speed bound.
    clamp_to_feasible:
        When True, segments whose observed average speed exceeds
        ``max_speed`` use that observed speed instead (their bead
        degenerates toward the straight segment) rather than raising.
        Query evaluation uses this mode so an optimistic speed bound never
        aborts a scan; strict construction (the default) flags the
        inconsistent observations.
    """

    def __init__(
        self,
        sample: TrajectorySample,
        max_speed: float,
        clamp_to_feasible: bool = False,
    ) -> None:
        if len(sample) < 2:
            raise TrajectoryError("a lifeline needs at least two observations")
        points = list(sample)
        self.beads: List[Bead] = []
        for (t1, x1, y1), (t2, x2, y2) in zip(points, points[1:]):
            speed = max_speed
            if clamp_to_feasible:
                p1, p2 = Point(x1, y1), Point(x2, y2)
                required = p1.distance_to(p2) / (t2 - t1)
                speed = max(max_speed, required * (1 + 1e-9))
            self.beads.append(
                Bead(t1, Point(x1, y1), t2, Point(x2, y2), speed)
            )
        self.sample = sample
        self.max_speed = float(max_speed)

    def __len__(self) -> int:
        return len(self.beads)

    def bead_at(self, t: float) -> Bead:
        """Return the bead whose time span contains ``t``."""
        for bead in self.beads:
            if bead.t1 <= t <= bead.t2:
                return bead
        raise TrajectoryError(
            f"instant {t} outside lifeline "
            f"[{self.sample.start_time}, {self.sample.end_time}]"
        )

    def contains(self, t: float, point: Point) -> bool:
        """True when the object could have been at ``point`` at time ``t``."""
        try:
            bead = self.bead_at(t)
        except TrajectoryError:
            return False
        return bead.contains(t, point)

    def could_have_visited(self, point: Point) -> bool:
        """True when some bead's footprint covers ``point``.

        The uncertainty-aware version of "passed through": a region the
        lifeline footprint avoids was *certainly* never visited.
        """
        return any(
            bead.projection().contains_point(point) for bead in self.beads
        )

    def could_have_entered(self, polygon) -> bool:
        """True when some bead's footprint intersects ``polygon``.

        The polygon analogue of :meth:`could_have_visited`: if no bead
        footprint meets the region, the speed bound proves the object
        never entered it between observations.
        """
        return any(
            bead.projection().intersects_polygon(polygon)
            for bead in self.beads
        )

    def footprint_area(self) -> float:
        """Sum of the bead-footprint areas (an upper bound; beads overlap)."""
        return sum(bead.projection().area for bead in self.beads)
