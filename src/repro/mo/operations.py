"""Trajectory–region operations.

These implement the spatial semantics behind the paper's query types:

* *sample semantics* (Type 4): an object is where it was sampled —
  :func:`sample_instants_inside`;
* *trajectory semantics* (Type 7): linear interpolation may reveal that an
  object passed through a region between samples (the paper's object O6) —
  :func:`passes_through`, :func:`intervals_inside`, :func:`time_inside`;
* *proximity* (queries 6 and 7): time spent within a radius of a point,
  solved exactly per interpolation piece via the quadratic
  ``|p(t) - c|² = r²`` — :func:`intervals_within_distance`.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import TrajectoryError
from repro.geometry import kernels
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.mo.trajectory import LinearInterpolationTrajectory, TrajectorySample

TimeInterval = Tuple[float, float]


def _piece_arrays(trajectory: LinearInterpolationTrajectory):
    """The trajectory's pieces as flat endpoint/time arrays (piece order)."""
    t0s: List[float] = []
    t1s: List[float] = []
    x0s: List[float] = []
    y0s: List[float] = []
    x1s: List[float] = []
    y1s: List[float] = []
    for t0, t1, segment in trajectory.pieces():
        t0s.append(t0)
        t1s.append(t1)
        x0s.append(float(segment.start.x))
        y0s.append(float(segment.start.y))
        x1s.append(float(segment.end.x))
        y1s.append(float(segment.end.y))
    return (
        t0s,
        t1s,
        np.asarray(x0s, dtype=float),
        np.asarray(y0s, dtype=float),
        np.asarray(x1s, dtype=float),
        np.asarray(y1s, dtype=float),
    )


def _merge_intervals(intervals: List[TimeInterval]) -> List[TimeInterval]:
    """Merge overlapping/adjacent time intervals."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for lo, hi in intervals[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi + 1e-12:
            merged[-1] = (last_lo, max(last_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


def sample_instants_inside(
    sample: TrajectorySample, polygon: Polygon
) -> List[float]:
    """Instants whose *sampled* position lies in the (closed) polygon.

    This is the Type-4 semantics: "we are assuming that cars are only in
    the regions where they were sampled."
    """
    return [
        t for t, x, y in sample if polygon.contains_point(Point(x, y))
    ]


def intervals_inside(
    trajectory: LinearInterpolationTrajectory, polygon: Polygon
) -> List[TimeInterval]:
    """Maximal time intervals the interpolated object spends in the polygon.

    Each interpolation piece is clipped against the polygon; clip
    parameters convert affinely to times and adjacent intervals are merged
    across pieces.
    """
    t0s, t1s, x0, y0, x1, y1 = _piece_arrays(trajectory)
    clips = kernels.clip_segments_batch(polygon, x0, y0, x1, y1)
    intervals: List[TimeInterval] = []
    for t0, t1, piece_clips in zip(t0s, t1s, clips):
        for s0, s1 in piece_clips:
            intervals.append((t0 + s0 * (t1 - t0), t0 + s1 * (t1 - t0)))
    return _merge_intervals(intervals)


def time_inside(
    trajectory: LinearInterpolationTrajectory, polygon: Polygon
) -> float:
    """Total time the interpolated object spends inside the polygon."""
    return sum(hi - lo for lo, hi in intervals_inside(trajectory, polygon))


def passes_through(
    trajectory: LinearInterpolationTrajectory, polygon: Polygon
) -> bool:
    """True when the interpolated trajectory touches the polygon at all.

    Captures the paper's O6: "passes through a low-income region, but was
    not sampled inside it."
    """
    _, _, x0, y0, x1, y1 = _piece_arrays(trajectory)
    return bool(kernels.segments_intersect(polygon, x0, y0, x1, y1).any())


def entry_exit_times(
    trajectory: LinearInterpolationTrajectory, polygon: Polygon
) -> List[Tuple[float, float]]:
    """Alias of :func:`intervals_inside`, named for queries about crossings."""
    return intervals_inside(trajectory, polygon)


def first_entry_time(
    trajectory: LinearInterpolationTrajectory, polygon: Polygon
) -> float:
    """First instant the interpolated object is inside the polygon.

    Raises :class:`TrajectoryError` when it never is.
    """
    intervals = intervals_inside(trajectory, polygon)
    if not intervals:
        raise TrajectoryError("trajectory never enters the polygon")
    return intervals[0][0]


def stays_within(
    trajectory: LinearInterpolationTrajectory, polygon: Polygon
) -> bool:
    """True when the whole interpolated trajectory lies inside the polygon.

    Query 3's "passing completely through" condition: no part of the
    trajectory outside the region.
    """
    lo, hi = trajectory.time_domain
    intervals = intervals_inside(trajectory, polygon)
    if len(intervals) != 1:
        return False
    (a, b) = intervals[0]
    return math.isclose(a, lo, abs_tol=1e-12) and math.isclose(b, hi, abs_tol=1e-12)


def intervals_within_distance(
    trajectory: LinearInterpolationTrajectory,
    center: Point,
    radius: float,
) -> List[TimeInterval]:
    """Time intervals with ``|position(t) - center| <= radius``.

    Solved exactly on each piece: with ``p(t)`` affine in ``t``,
    ``|p(t) - c|²`` is a quadratic in ``t`` and the sub-level set is an
    interval (possibly empty) intersected with the piece.
    """
    if radius < 0:
        raise TrajectoryError("radius must be non-negative")
    cx, cy = float(center.x), float(center.y)
    intervals: List[TimeInterval] = []
    for t0, t1, segment in trajectory.pieces():
        dt = t1 - t0
        ax = float(segment.start.x) - cx
        ay = float(segment.start.y) - cy
        vx = (float(segment.end.x) - float(segment.start.x)) / dt
        vy = (float(segment.end.y) - float(segment.start.y)) / dt
        # |a + v (t - t0)|^2 <= r^2  with tau = t - t0 in [0, dt].
        qa = vx * vx + vy * vy
        qb = 2 * (ax * vx + ay * vy)
        qc = ax * ax + ay * ay - radius * radius
        if qa == 0:
            # Stationary piece: inside iff start point is within the disk.
            if qc <= 0:
                intervals.append((t0, t1))
            continue
        disc = qb * qb - 4 * qa * qc
        if disc < 0:
            continue
        sqrt_disc = math.sqrt(disc)
        tau_lo = (-qb - sqrt_disc) / (2 * qa)
        tau_hi = (-qb + sqrt_disc) / (2 * qa)
        lo = max(0.0, tau_lo)
        hi = min(dt, tau_hi)
        if lo <= hi:
            intervals.append((t0 + lo, t0 + hi))
    return _merge_intervals(intervals)


def time_within_distance(
    trajectory: LinearInterpolationTrajectory,
    center: Point,
    radius: float,
) -> float:
    """Total time spent within ``radius`` of ``center``."""
    return sum(
        hi - lo
        for lo, hi in intervals_within_distance(trajectory, center, radius)
    )


def ever_within_distance(
    trajectory: LinearInterpolationTrajectory,
    center: Point,
    radius: float,
) -> bool:
    """True when the trajectory ever comes within ``radius`` of ``center``."""
    return bool(intervals_within_distance(trajectory, center, radius))


def distance_at(
    a: LinearInterpolationTrajectory,
    b: LinearInterpolationTrajectory,
    t: float,
) -> float:
    """Distance between two interpolated objects at a common instant."""
    return a.position(t).distance_to(b.position(t))


def minimum_distance(
    a: LinearInterpolationTrajectory,
    b: LinearInterpolationTrajectory,
) -> Tuple[float, float]:
    """Return ``(min distance, instant)`` over the common time domain.

    The relative motion is piecewise affine, so per common sub-piece the
    squared distance is quadratic and minimized in closed form.
    """
    lo = max(a.time_domain[0], b.time_domain[0])
    hi = min(a.time_domain[1], b.time_domain[1])
    if lo > hi:
        raise TrajectoryError("trajectories share no time instants")
    cuts = sorted(
        {lo, hi}
        | {t for t in a.sample.times if lo <= t <= hi}
        | {t for t in b.sample.times if lo <= t <= hi}
    )
    best = (math.inf, lo)
    for c0, c1 in zip(cuts, cuts[1:]):
        pa0, pa1 = a.position(c0), a.position(c1)
        pb0, pb1 = b.position(c0), b.position(c1)
        dx0 = float(pa0.x) - float(pb0.x)
        dy0 = float(pa0.y) - float(pb0.y)
        dx1 = float(pa1.x) - float(pb1.x)
        dy1 = float(pa1.y) - float(pb1.y)
        dt = c1 - c0
        vx = (dx1 - dx0) / dt
        vy = (dy1 - dy0) / dt
        qa = vx * vx + vy * vy
        qb = 2 * (dx0 * vx + dy0 * vy)
        candidates = [0.0, dt]
        if qa > 0:
            tau = -qb / (2 * qa)
            if 0 < tau < dt:
                candidates.append(tau)
        for tau in candidates:
            gx = dx0 + vx * tau
            gy = dy0 + vy * tau
            dist = math.hypot(gx, gy)
            if dist < best[0]:
                best = (dist, c0 + tau)
    if cuts[0] == cuts[-1]:
        # Single shared instant.
        dist = distance_at(a, b, lo)
        if dist < best[0]:
            best = (dist, lo)
    return best
