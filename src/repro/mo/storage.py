"""On-disk columnar MOFT storage: a versioned, magic-tagged, mmap-able format.

The MOFT is a flat columnar fact table, but until this module its only
interchange format was CSV — every world load re-parsed 250k ``float()``
calls.  The columnar format persists the ``(oid, t, x, y)`` columns plus
the per-object time-sorted row index as raw little-endian array blobs
(``.npy``-style: fixed dtypes, no pickling), so :func:`load_moft` is an
``mmap`` + a handful of ``np.frombuffer`` views instead of a parse:

* **Preamble** (16 bytes): magic ``MOFTCOL\\x00``, ``u16`` format
  version, ``u16`` flags (reserved, must be 0), ``u32`` header length.
* **Header**: UTF-8 JSON — table name, row/object counts, oid encoding,
  and a section directory mapping section name to
  ``{offset, nbytes, dtype, count}``.
* **Sections**, each aligned to :data:`ALIGNMENT` bytes:

  ========================  ========  =====================================
  section                   dtype     contents
  ========================  ========  =====================================
  ``t`` / ``x`` / ``y``     ``<f8``   the sample columns, insertion order
  ``oid_codes``             ``<u4``   per-row object code (first-appearance
                                      interning order)
  ``oid_values``            varies    code -> object id; ``<i8`` array when
                                      every oid is an ``int``, else a UTF-8
                                      JSON list of ``str``/``int`` values
  ``index_rows``            ``<i8``   row indices grouped by object, each
                                      group sorted by time (CSR values)
  ``index_times``           ``<f8``   ``t`` gathered in ``index_rows`` order
  ``index_offsets``         ``<i8``   CSR group boundaries, ``objects + 1``
                                      entries
  ========================  ========  =====================================

Loading installs zero-copy views: the ``(t, x, y)`` columns become
``np.frombuffer`` views over the mapped file and the CSR index pre-fills
the table's per-object sorted-order cache (:attr:`MOFT._order`), so
``history``/``position``/``trajectory_sample`` skip their argsort
entirely.  The same image layout doubles as the wire format of the
zero-copy process shards (:mod:`repro.parallel.shm`): a shared-memory
block holds one index-less image and shard descriptors address row
ranges ``[start, stop)`` inside it.

Every malformed input raises :class:`~repro.errors.MoftStorageError`
before any unchecked array read — never a numpy traceback.
"""

from __future__ import annotations

import json
import mmap as _mmap
import struct
from pathlib import Path
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import MoftStorageError
from repro.mo.moft import MOFT

#: Leading magic bytes of every columnar MOFT file.
MAGIC = b"MOFTCOL\x00"

#: Current (and only) format version.
FORMAT_VERSION = 1

#: Section alignment in bytes — mmap'd float columns land on cache-line
#: (and SIMD-load) friendly boundaries.
ALIGNMENT = 64

#: Preamble layout: magic, version (u16), flags (u16), header length (u32).
PREAMBLE = struct.Struct("<8sHHI")

#: Pinned little-endian section dtypes — the format is byte-identical
#: across platforms; loaders never honor native byte order.
DTYPE_F8 = "<f8"
DTYPE_U4 = "<u4"
DTYPE_I8 = "<i8"

_FIXED_SECTION_DTYPES = {
    "t": DTYPE_F8,
    "x": DTYPE_F8,
    "y": DTYPE_F8,
    "oid_codes": DTYPE_U4,
    "index_rows": DTYPE_I8,
    "index_times": DTYPE_F8,
    "index_offsets": DTYPE_I8,
}


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _intern_oids(
    oid_col: np.ndarray,
) -> Tuple[np.ndarray, List[Hashable]]:
    """First-appearance interning: per-row codes plus the value list."""
    codes = np.empty(oid_col.shape[0], dtype=np.uint32)
    values: List[Hashable] = []
    table: Dict[Hashable, int] = {}
    for i, oid in enumerate(oid_col.tolist()):
        code = table.get(oid)
        if code is None:
            code = len(values)
            table[oid] = code
            values.append(oid)
        codes[i] = code
    return codes, values


def _encode_oid_values(values: Sequence[Hashable]) -> Tuple[str, bytes, str]:
    """Encode the code -> oid table; returns (oid_kind, payload, dtype).

    ``int64`` when every oid is a plain ``int`` (bools excluded — they
    would decode as ints); otherwise a JSON list, which restricts oids to
    ``str``/``int`` so the decode round-trips types faithfully.
    """
    if all(type(v) is int for v in values):
        arr = np.asarray(values, dtype=np.int64)
        if values and (arr.tolist() != list(values)):  # pragma: no cover
            raise MoftStorageError(
                "object ids overflow int64; the columnar format cannot "
                "encode them"
            )
        return "int64", arr.astype(DTYPE_I8).tobytes(), DTYPE_I8
    for v in values:
        if type(v) is not str and type(v) is not int:
            raise MoftStorageError(
                f"object id {v!r} has type {type(v).__name__}; the "
                f"columnar format encodes str and int ids only"
            )
    payload = json.dumps(list(values), ensure_ascii=False).encode("utf-8")
    return "json", payload, "bytes"


def serialize_columns(
    name: str,
    oid_col: np.ndarray,
    t: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    include_index: bool = True,
) -> bytes:
    """Build one columnar image from raw columns.

    The shared serializer behind :func:`save_moft` (file images, with
    the CSR index) and the shared-memory shard blocks of
    :mod:`repro.parallel.shm` (index-less images).  Raises
    :class:`MoftStorageError` on unencodable object ids.
    """
    n = int(t.shape[0])
    codes, values = _intern_oids(oid_col)
    oid_kind, oid_payload, oid_dtype = _encode_oid_values(values)

    sections: List[Tuple[str, bytes, str, int]] = [
        ("t", np.ascontiguousarray(t, dtype=DTYPE_F8).tobytes(), DTYPE_F8, n),
        ("x", np.ascontiguousarray(x, dtype=DTYPE_F8).tobytes(), DTYPE_F8, n),
        ("y", np.ascontiguousarray(y, dtype=DTYPE_F8).tobytes(), DTYPE_F8, n),
        ("oid_codes", codes.astype(DTYPE_U4).tobytes(), DTYPE_U4, n),
        ("oid_values", oid_payload, oid_dtype, len(values)),
    ]
    if include_index:
        if n:
            # Primary key: object code; secondary: time; tertiary: row
            # index.  (oid, t) uniqueness makes per-object times distinct,
            # so each CSR group is exactly the stable time argsort the
            # MOFT's _object_order cache would compute.
            t64 = np.ascontiguousarray(t, dtype=np.float64)
            order = np.lexsort((np.arange(n), t64, codes))
            counts = np.bincount(codes, minlength=len(values))
        else:
            order = np.empty(0, dtype=np.int64)
            counts = np.zeros(len(values), dtype=np.int64)
        offsets = np.zeros(len(values) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        index_times = (
            np.ascontiguousarray(t, dtype=np.float64)[order]
            if n
            else np.empty(0, dtype=np.float64)
        )
        sections.extend(
            [
                (
                    "index_rows",
                    order.astype(DTYPE_I8).tobytes(),
                    DTYPE_I8,
                    n,
                ),
                (
                    "index_times",
                    index_times.astype(DTYPE_F8).tobytes(),
                    DTYPE_F8,
                    n,
                ),
                (
                    "index_offsets",
                    offsets.astype(DTYPE_I8).tobytes(),
                    DTYPE_I8,
                    len(values) + 1,
                ),
            ]
        )

    # Two-pass header sizing: section offsets depend on the header
    # length, which depends on the offsets' JSON width.  Iterate until
    # the layout is a fixed point (second pass always converges — digit
    # widths can only grow the header, and padding absorbs small growth).
    def _layout(header_len: int) -> Tuple[Dict[str, Dict[str, object]], int]:
        directory: Dict[str, Dict[str, object]] = {}
        cursor = _align(PREAMBLE.size + header_len)
        for sec_name, payload, dtype, count in sections:
            directory[sec_name] = {
                "offset": cursor,
                "nbytes": len(payload),
                "dtype": dtype,
                "count": count,
            }
            cursor = _align(cursor + len(payload))
        return directory, cursor

    def _header_bytes(directory: Dict[str, Dict[str, object]]) -> bytes:
        return json.dumps(
            {
                "name": name,
                "rows": n,
                "objects": len(values),
                "oid_kind": oid_kind,
                "index": include_index,
                "sections": directory,
            },
            ensure_ascii=False,
            sort_keys=True,
        ).encode("utf-8")

    header = _header_bytes(_layout(0)[0])
    for _ in range(4):
        directory, total = _layout(len(header))
        rendered = _header_bytes(directory)
        if len(rendered) == len(header):
            header = rendered
            break
        header = rendered
    else:  # pragma: no cover - layout always converges in two passes
        raise MoftStorageError("columnar header layout failed to converge")

    image = bytearray(total)
    PREAMBLE.pack_into(image, 0, MAGIC, FORMAT_VERSION, 0, len(header))
    image[PREAMBLE.size:PREAMBLE.size + len(header)] = header
    for sec_name, payload, _, _ in sections:
        offset = int(directory[sec_name]["offset"])
        image[offset:offset + len(payload)] = payload
    return bytes(image)


def serialize_moft(moft: MOFT, include_index: bool = True) -> bytes:
    """Serialize a whole MOFT into one columnar image."""
    t, x, y = moft.as_arrays()
    return serialize_columns(
        moft.name, moft.oid_column(), t, x, y, include_index=include_index
    )


class MoftImage:
    """A parsed, validated columnar image: header fields plus column views.

    The arrays are zero-copy ``np.frombuffer`` views over the backing
    buffer (bytes, shared memory, or an ``mmap``); the image keeps the
    buffer referenced so views stay valid for its lifetime.
    """

    __slots__ = (
        "name",
        "rows",
        "objects",
        "oid_kind",
        "has_index",
        "t",
        "x",
        "y",
        "oid_codes",
        "oid_values",
        "index_rows",
        "index_times",
        "index_offsets",
        "buffer",
    )

    def __init__(self, **fields: object) -> None:
        for key, value in fields.items():
            setattr(self, key, value)

    def oid_value_array(self) -> np.ndarray:
        """The code -> oid table as an object array (for fancy decode)."""
        out = np.empty(len(self.oid_values), dtype=object)
        out[:] = self.oid_values
        return out


def _read_section(
    buffer, header: dict, name: str, total: int, source: str
) -> Tuple[np.ndarray, dict]:
    sections = header["sections"]
    if name not in sections:
        raise MoftStorageError(
            f"{source}: columnar header lacks section {name!r}"
        )
    sec = sections[name]
    try:
        offset = int(sec["offset"])
        nbytes = int(sec["nbytes"])
        dtype = str(sec["dtype"])
        count = int(sec["count"])
    except (KeyError, TypeError, ValueError) as exc:
        raise MoftStorageError(
            f"{source}: malformed section record for {name!r}: {sec!r}"
        ) from exc
    if offset < 0 or nbytes < 0 or count < 0 or offset + nbytes > total:
        raise MoftStorageError(
            f"{source}: section {name!r} spans bytes "
            f"[{offset}, {offset + nbytes}) of a {total}-byte image — "
            f"truncated or corrupt file"
        )
    if name == "oid_values":
        return np.empty(0, dtype=object), sec  # decoded separately
    expected = _FIXED_SECTION_DTYPES[name]
    if dtype != expected:
        raise MoftStorageError(
            f"{source}: section {name!r} has dtype {dtype!r}, expected "
            f"{expected!r} (the format pins little-endian dtypes)"
        )
    itemsize = np.dtype(dtype).itemsize
    if nbytes != count * itemsize:
        raise MoftStorageError(
            f"{source}: section {name!r} holds {nbytes} bytes for "
            f"{count} x {itemsize}-byte items"
        )
    array = np.frombuffer(buffer, dtype=dtype, count=count, offset=offset)
    return array, sec


def open_image(buffer, source: str = "<memory>") -> MoftImage:
    """Parse and validate one columnar image over any buffer.

    ``buffer`` is anything ``np.frombuffer`` accepts — ``bytes``, an
    ``mmap``, or a shared-memory view.  Every structural defect raises
    :class:`MoftStorageError`; no section is read before its bounds are
    checked against the buffer length.
    """
    try:
        total = len(buffer)
    except TypeError:  # pragma: no cover - exotic buffer types
        total = memoryview(buffer).nbytes
    if total < PREAMBLE.size:
        raise MoftStorageError(
            f"{source}: {total} bytes is shorter than the {PREAMBLE.size}-"
            f"byte preamble — not a columnar MOFT file"
        )
    magic, version, flags, header_len = PREAMBLE.unpack_from(buffer, 0)
    if magic != MAGIC:
        raise MoftStorageError(
            f"{source}: bad magic {bytes(magic)!r} (expected {MAGIC!r}) — "
            f"not a columnar MOFT file"
        )
    if version != FORMAT_VERSION:
        raise MoftStorageError(
            f"{source}: columnar format version {version} is not "
            f"supported (this reader understands version "
            f"{FORMAT_VERSION})"
        )
    if flags != 0:
        raise MoftStorageError(
            f"{source}: reserved flag bits set ({flags:#06x}); refusing "
            f"to guess their meaning"
        )
    if PREAMBLE.size + header_len > total:
        raise MoftStorageError(
            f"{source}: header claims {header_len} bytes but only "
            f"{total - PREAMBLE.size} follow the preamble — truncated file"
        )
    try:
        header = json.loads(
            bytes(memoryview(buffer)[PREAMBLE.size:PREAMBLE.size + header_len])
            .decode("utf-8")
        )
    except (ValueError, UnicodeDecodeError) as exc:
        raise MoftStorageError(
            f"{source}: columnar header is not valid JSON: {exc}"
        ) from exc
    if not isinstance(header, dict) or not isinstance(
        header.get("sections"), dict
    ):
        raise MoftStorageError(
            f"{source}: columnar header lacks a section directory"
        )
    try:
        rows = int(header["rows"])
        objects = int(header["objects"])
        name = str(header["name"])
        oid_kind = str(header["oid_kind"])
        has_index = bool(header["index"])
    except (KeyError, TypeError, ValueError) as exc:
        raise MoftStorageError(
            f"{source}: columnar header is missing required fields: {exc}"
        ) from exc
    if rows < 0 or objects < 0 or (rows and not objects):
        raise MoftStorageError(
            f"{source}: inconsistent counts (rows={rows}, objects={objects})"
        )

    t, _ = _read_section(buffer, header, "t", total, source)
    x, _ = _read_section(buffer, header, "x", total, source)
    y, _ = _read_section(buffer, header, "y", total, source)
    codes, _ = _read_section(buffer, header, "oid_codes", total, source)
    for col_name, col in (("t", t), ("x", x), ("y", y), ("oid_codes", codes)):
        if col.shape[0] != rows:
            raise MoftStorageError(
                f"{source}: section {col_name!r} holds {col.shape[0]} "
                f"values for {rows} rows"
            )

    _, values_sec = _read_section(buffer, header, "oid_values", total, source)
    v_off, v_nbytes = int(values_sec["offset"]), int(values_sec["nbytes"])
    raw_values = bytes(memoryview(buffer)[v_off:v_off + v_nbytes])
    if oid_kind == "int64":
        if v_nbytes != objects * 8 or str(values_sec["dtype"]) != DTYPE_I8:
            raise MoftStorageError(
                f"{source}: int64 oid table holds {v_nbytes} bytes for "
                f"{objects} objects"
            )
        oid_values: List[Hashable] = (
            np.frombuffer(raw_values, dtype=DTYPE_I8).tolist()
        )
    elif oid_kind == "json":
        try:
            oid_values = json.loads(raw_values.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise MoftStorageError(
                f"{source}: JSON oid table is corrupt: {exc}"
            ) from exc
        if not isinstance(oid_values, list) or len(oid_values) != objects:
            raise MoftStorageError(
                f"{source}: oid table decodes to "
                f"{len(oid_values) if isinstance(oid_values, list) else 'non-list'} "
                f"entries for {objects} objects"
            )
    else:
        raise MoftStorageError(
            f"{source}: unknown oid encoding {oid_kind!r}"
        )
    if rows and codes.size and int(codes.max()) >= objects:
        raise MoftStorageError(
            f"{source}: oid code {int(codes.max())} out of range for "
            f"{objects} objects — corrupt oid_codes section"
        )

    index_rows = index_times = index_offsets = None
    if has_index:
        index_rows, _ = _read_section(
            buffer, header, "index_rows", total, source
        )
        index_times, _ = _read_section(
            buffer, header, "index_times", total, source
        )
        index_offsets, _ = _read_section(
            buffer, header, "index_offsets", total, source
        )
        if (
            index_rows.shape[0] != rows
            or index_times.shape[0] != rows
            or index_offsets.shape[0] != objects + 1
        ):
            raise MoftStorageError(
                f"{source}: per-object index sections disagree with the "
                f"row/object counts"
            )
        if rows:
            if (
                int(index_offsets[0]) != 0
                or int(index_offsets[-1]) != rows
                or bool(np.any(np.diff(index_offsets) < 0))
            ):
                raise MoftStorageError(
                    f"{source}: index_offsets is not a monotone cover of "
                    f"{rows} rows — corrupt index"
                )
            if (
                int(index_rows.min()) < 0
                or int(index_rows.max()) >= rows
            ):
                raise MoftStorageError(
                    f"{source}: index_rows points outside the table — "
                    f"corrupt index"
                )
    return MoftImage(
        name=name,
        rows=rows,
        objects=objects,
        oid_kind=oid_kind,
        has_index=has_index,
        t=t,
        x=x,
        y=y,
        oid_codes=codes,
        oid_values=oid_values,
        index_rows=index_rows,
        index_times=index_times,
        index_offsets=index_offsets,
        buffer=buffer,
    )


def table_from_image(
    image: MoftImage,
    start: Optional[int] = None,
    stop: Optional[int] = None,
) -> MOFT:
    """Materialize a MOFT over an image's columns (zero row copies).

    ``start``/``stop`` select a row range — the shard-descriptor path of
    :mod:`repro.parallel.shm`.  A full-range load of an indexed image
    also pre-fills the table's per-object sorted-order cache with views
    over the CSR index, so per-object access needs no argsort.
    """
    lo = 0 if start is None else int(start)
    hi = image.rows if stop is None else int(stop)
    if not (0 <= lo <= hi <= image.rows):
        raise MoftStorageError(
            f"row range [{lo}, {hi}) out of bounds for {image.rows} rows"
        )
    values = image.oid_value_array()
    oid_col = (
        values[image.oid_codes[lo:hi]]
        if hi > lo
        else np.empty(0, dtype=object)
    )
    moft = MOFT.from_columns(
        oid_col,
        image.t[lo:hi],
        image.x[lo:hi],
        image.y[lo:hi],
        name=image.name,
        validate=False,
    )
    full = lo == 0 and hi == image.rows
    if full and image.has_index and image.rows:
        offsets = image.index_offsets
        for code, oid in enumerate(image.oid_values):
            o0, o1 = int(offsets[code]), int(offsets[code + 1])
            if o1 > o0:
                moft._order[oid] = (
                    image.index_times[o0:o1],
                    image.index_rows[o0:o1],
                )
    return moft


def save_moft(
    moft: MOFT,
    path: Union[str, Path],
    include_index: bool = True,
) -> int:
    """Write a MOFT as one columnar file; returns the bytes written."""
    image = serialize_moft(moft, include_index=include_index)
    with open(path, "wb") as handle:
        handle.write(image)
    return len(image)


def load_moft(
    path: Union[str, Path],
    mmap: bool = True,
) -> MOFT:
    """Load a columnar MOFT file, by ``mmap`` (default) or a full read.

    The mmap'd columns are read-only views over the page cache; the
    returned table keeps the mapping referenced for as long as any of
    its arrays live.  Appending to a loaded table works — the column
    arrays are replaced by concatenation, never written in place.
    """
    source = str(path)
    with open(path, "rb") as handle:
        if mmap:
            try:
                buffer: object = _mmap.mmap(
                    handle.fileno(), 0, access=_mmap.ACCESS_READ
                )
            except (ValueError, OSError) as exc:
                raise MoftStorageError(
                    f"{source}: cannot mmap: {exc}"
                ) from exc
        else:
            buffer = handle.read()
    image = open_image(buffer, source=source)
    return table_from_image(image)


def is_columnar_file(path: Union[str, Path]) -> bool:
    """True when ``path`` starts with the columnar magic bytes."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


__all__ = [
    "ALIGNMENT",
    "FORMAT_VERSION",
    "MAGIC",
    "MoftImage",
    "is_columnar_file",
    "load_moft",
    "open_image",
    "save_moft",
    "serialize_columns",
    "serialize_moft",
    "table_from_image",
]
