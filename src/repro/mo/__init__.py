"""Moving objects: the MOFT, trajectories and trajectory operations."""

from repro.mo.moft import (
    MOFT,
    instants_member_mask,
    is_member_instant,
    sorted_instants,
)
from repro.mo.trajectory import (
    FunctionalTrajectory,
    LinearInterpolationTrajectory,
    Trajectory,
    TrajectorySample,
)
from repro.mo.operations import (
    distance_at,
    entry_exit_times,
    ever_within_distance,
    first_entry_time,
    intervals_inside,
    intervals_within_distance,
    minimum_distance,
    passes_through,
    sample_instants_inside,
    stays_within,
    time_inside,
    time_within_distance,
)
from repro.mo.beads import Bead, Ellipse, Lifeline
from repro.mo.movingregion import MovingRegion
from repro.mo.io import from_csv_text, read_csv, to_csv_text, write_csv
from repro.mo.flow import FlowGrid, flow_grid_for_moft
from repro.mo.cleaning import (
    clean_moft,
    drop_stationary_noise,
    remove_speed_outliers,
    resample_uniform,
)
from repro.mo.similarity import (
    discrete_frechet,
    hausdorff,
    most_similar_pair,
    sample_frechet,
    sample_hausdorff,
    similarity_matrix,
)

__all__ = [
    "MovingRegion",
    "FlowGrid",
    "flow_grid_for_moft",
    "clean_moft",
    "drop_stationary_noise",
    "remove_speed_outliers",
    "resample_uniform",
    "discrete_frechet",
    "hausdorff",
    "most_similar_pair",
    "sample_frechet",
    "sample_hausdorff",
    "similarity_matrix",
    "from_csv_text",
    "read_csv",
    "to_csv_text",
    "write_csv",
    "MOFT",
    "instants_member_mask",
    "is_member_instant",
    "sorted_instants",
    "FunctionalTrajectory",
    "LinearInterpolationTrajectory",
    "Trajectory",
    "TrajectorySample",
    "distance_at",
    "entry_exit_times",
    "ever_within_distance",
    "first_entry_time",
    "intervals_inside",
    "intervals_within_distance",
    "minimum_distance",
    "passes_through",
    "sample_instants_inside",
    "stays_within",
    "time_inside",
    "time_within_distance",
    "Bead",
    "Ellipse",
    "Lifeline",
]
