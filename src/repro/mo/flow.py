"""Trajectory aggregation by homogeneous spatial units (Meratnia & de By).

Section 2 of the paper: "Meratnia and de By have tackled the topic of
aggregation of trajectories.  They identify similar trajectories and merge
them in a single one, by dividing the area of study into homogeneous
spatial units; each unit is associated to an integer, representing the
number of times any object passes through it.  Based on this, they obtain
the aggregated trajectories.  They claim that their method is insensitive
to differences in sequence length and sampling intervals."

:class:`FlowGrid` implements that construction: a uniform grid over the
study area counts, per cell, how many *objects* (not samples — that is
what makes it insensitive to sampling rate) pass through the cell under
linear interpolation.  :meth:`FlowGrid.aggregated_trajectory` then chains
the locally dominant flow directions into a representative polyline.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.errors import GeometryError, TrajectoryError
from repro.geometry.point import BoundingBox, Point
from repro.geometry.segment import Segment
from repro.mo.moft import MOFT

Cell = Tuple[int, int]


class FlowGrid:
    """Per-cell pass counts for a MOFT over a uniform grid.

    Parameters
    ----------
    extent:
        The study area.  Trajectory parts outside it are ignored.
    cols, rows:
        Grid resolution.
    """

    def __init__(self, extent: BoundingBox, cols: int = 16, rows: int = 16) -> None:
        if cols < 1 or rows < 1:
            raise GeometryError("flow grid needs at least one cell")
        if extent.width <= 0 or extent.height <= 0:
            raise GeometryError("flow grid needs a non-degenerate extent")
        self.extent = extent
        self.cols = cols
        self.rows = rows
        self._counts: Dict[Cell, int] = {}
        self._transitions: Dict[Tuple[Cell, Cell], int] = {}
        self._objects_seen = 0

    # -- cell addressing ---------------------------------------------------------

    def cell_of(self, point: Point) -> Optional[Cell]:
        """Return the cell containing ``point``, or None outside the extent."""
        if not self.extent.contains_point(point):
            return None
        col = int(
            (float(point.x) - self.extent.min_x)
            / self.extent.width
            * self.cols
        )
        row = int(
            (float(point.y) - self.extent.min_y)
            / self.extent.height
            * self.rows
        )
        return (min(col, self.cols - 1), min(row, self.rows - 1))

    def cell_center(self, cell: Cell) -> Point:
        """Center point of a cell."""
        col, row = cell
        return Point(
            self.extent.min_x + (col + 0.5) * self.extent.width / self.cols,
            self.extent.min_y + (row + 0.5) * self.extent.height / self.rows,
        )

    # -- accumulation ----------------------------------------------------------------

    def _cells_along(self, segment: Segment) -> List[Cell]:
        """Cells visited by a segment, by dense parametric sampling."""
        steps = 2 * (self.cols + self.rows)
        cells: List[Cell] = []
        for i in range(steps + 1):
            cell = self.cell_of(segment.point_at(i / steps))
            if cell is not None and (not cells or cells[-1] != cell):
                if cell in cells:
                    continue
                cells.append(cell)
        return cells

    def add_object(self, history: List[Tuple[float, float, float]]) -> None:
        """Accumulate one object's interpolated path.

        Each visited cell counts once per object, which is what makes the
        method "insensitive to differences in sequence length and sampling
        intervals".
        """
        if not history:
            raise TrajectoryError("empty history")
        visited: List[Cell] = []
        seen: Set[Cell] = set()
        if len(history) == 1:
            cell = self.cell_of(Point(history[0][1], history[0][2]))
            if cell is not None:
                visited.append(cell)
                seen.add(cell)
        else:
            for (t0, x0, y0), (t1, x1, y1) in zip(history, history[1:]):
                segment = Segment(Point(x0, y0), Point(x1, y1))
                for cell in self._cells_along(segment):
                    if cell not in seen:
                        seen.add(cell)
                        visited.append(cell)
        for cell in visited:
            self._counts[cell] = self._counts.get(cell, 0) + 1
        for a, b in zip(visited, visited[1:]):
            self._transitions[(a, b)] = self._transitions.get((a, b), 0) + 1
        self._objects_seen += 1

    def add_moft(self, moft: MOFT) -> None:
        """Accumulate every object of a MOFT."""
        for oid in moft.objects():
            self.add_object(moft.history(oid))

    # -- readout ---------------------------------------------------------------------

    @property
    def objects_seen(self) -> int:
        """Number of objects accumulated."""
        return self._objects_seen

    def count(self, cell: Cell) -> int:
        """Pass count of one cell (0 when never visited)."""
        return self._counts.get(cell, 0)

    def counts(self) -> Dict[Cell, int]:
        """All nonzero cell counts."""
        return dict(self._counts)

    def hottest_cells(self, limit: int = 5) -> List[Tuple[Cell, int]]:
        """The ``limit`` cells with the highest pass counts."""
        ranked = sorted(
            self._counts.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:limit]

    def aggregated_trajectory(self, max_length: int = 64) -> List[Point]:
        """A representative path: follow dominant cell-to-cell transitions.

        Starts at the hottest cell and repeatedly follows the most frequent
        outgoing transition to an unvisited cell; returns the chain of cell
        centers.  Empty grid returns an empty list.
        """
        if not self._counts:
            return []
        current = self.hottest_cells(1)[0][0]
        path = [current]
        visited = {current}
        while len(path) < max_length:
            candidates = [
                (count, b)
                for (a, b), count in self._transitions.items()
                if a == current and b not in visited
            ]
            if not candidates:
                break
            count, best = max(candidates, key=lambda item: (item[0], item[1]))
            path.append(best)
            visited.add(best)
            current = best
        return [self.cell_center(cell) for cell in path]


def flow_grid_for_moft(
    moft: MOFT, cols: int = 16, rows: int = 16
) -> FlowGrid:
    """Build a flow grid over a MOFT's bounding box and accumulate it."""
    box = moft.bbox()
    if box.width == 0 or box.height == 0:
        box = box.expanded(1.0)
    grid = FlowGrid(box, cols, rows)
    grid.add_moft(moft)
    return grid
