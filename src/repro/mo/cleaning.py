"""Trajectory-sample cleaning.

Real MOFT feeds are noisy: GPS jitter, duplicated fixes, and impossible
jumps (multipath errors).  The paper assumes clean samples; these utilities
produce them.  All functions take and return
:class:`~repro.mo.trajectory.TrajectorySample` (or MOFTs), never mutating
their inputs.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import TrajectoryError
from repro.geometry.point import Point
from repro.mo.moft import MOFT
from repro.mo.trajectory import TrajectorySample


def drop_stationary_noise(
    sample: TrajectorySample, min_distance: float
) -> TrajectorySample:
    """Collapse consecutive fixes closer than ``min_distance``.

    Keeps the first fix of every cluster (and always the final fix, so the
    time domain is preserved).  Useful for parked vehicles emitting
    jittering positions.
    """
    if min_distance < 0:
        raise TrajectoryError("min_distance must be non-negative")
    points = list(sample)
    kept: List[Tuple[float, float, float]] = [points[0]]
    for t, x, y in points[1:-1]:
        _, kx, ky = kept[-1]
        if Point(kx, ky).distance_to(Point(x, y)) >= min_distance:
            kept.append((t, x, y))
    if len(points) > 1:
        kept.append(points[-1])
    return TrajectorySample(kept)


def remove_speed_outliers(
    sample: TrajectorySample, max_speed: float
) -> TrajectorySample:
    """Drop fixes implying a speed above ``max_speed`` from the last kept fix.

    A greedy forward pass: each fix must be reachable from the previously
    kept fix under the speed bound, otherwise it is discarded (GPS jump).
    The first fix is always kept.
    """
    if max_speed <= 0:
        raise TrajectoryError("max_speed must be positive")
    points = list(sample)
    kept = [points[0]]
    for t, x, y in points[1:]:
        kt, kx, ky = kept[-1]
        distance = Point(kx, ky).distance_to(Point(x, y))
        if distance <= max_speed * (t - kt) * (1 + 1e-9):
            kept.append((t, x, y))
    return TrajectorySample(kept)


def resample_uniform(
    sample: TrajectorySample, num_points: int
) -> TrajectorySample:
    """Re-sample the linear interpolation at uniform instants.

    Produces exactly ``num_points`` fixes covering the same time domain —
    the normalization step before comparing trajectories of different
    sampling rates.
    """
    if num_points < 2:
        raise TrajectoryError("need at least two points")
    if len(sample) < 2:
        raise TrajectoryError("cannot resample a single fix")
    from repro.mo.trajectory import LinearInterpolationTrajectory

    lit = LinearInterpolationTrajectory(sample)
    lo, hi = lit.time_domain
    points = []
    for i in range(num_points):
        t = lo + (hi - lo) * i / (num_points - 1)
        p = lit.position(t)
        points.append((t, float(p.x), float(p.y)))
    return TrajectorySample(points)


def clean_moft(
    moft: MOFT,
    max_speed: float,
    min_distance: float = 0.0,
) -> MOFT:
    """Apply outlier removal (and optional jitter collapsing) per object.

    Objects reduced to a single fix keep that fix; the result is a new
    MOFT with the same name.
    """
    result = MOFT(moft.name)
    for oid in moft.objects():
        history = moft.history(oid)
        if len(history) == 1:
            t, x, y = history[0]
            result.add(oid, t, x, y)
            continue
        sample = TrajectorySample(history)
        sample = remove_speed_outliers(sample, max_speed)
        if min_distance > 0 and len(sample) > 1:
            sample = drop_stationary_noise(sample, min_distance)
        for t, x, y in sample:
            result.add(oid, t, x, y)
    return result
