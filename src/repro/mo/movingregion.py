"""Moving regions — the sliced representation the paper defers to [16].

Section 1.2: "We do not address here the problem of moving regions, i.e.,
we consider regions as fixed over time", pointing to Tøssebro & Güting
(SSTD 2001), where moving regions are built "starting from snapshots of an
amorphous region taken at different points in time.  Interpolation of the
snapshots of the geometries yields so-called slices."

:class:`MovingRegion` implements exactly that: a strictly time-ordered
sequence of polygon snapshots; between consecutive snapshots the region is
the linear interpolation of corresponding shell vertices (a *slice*).
Snapshots with differing vertex counts are reconciled by resampling both
rings to a common count along their boundary, the standard practical
construction.  This extends the paper's model: a Type-4/7 query against a
moving region asks for containment at the *sample's own instant*.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Tuple

from repro.errors import TrajectoryError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.polyline import Polyline
from repro.mo.moft import MOFT


def _ring_resampled(polygon: Polygon, count: int) -> List[Point]:
    """Resample a polygon shell to ``count`` vertices along its boundary.

    Rings are normalized to counter-clockwise orientation first so that
    corresponding vertices of two snapshots travel the boundary the same
    way; vertex correspondence follows arc length from each ring's first
    vertex, so snapshots should be authored with consistent start vertices.
    """
    shell = list(polygon.shell)
    if polygon.signed_area < 0:
        shell = [shell[0]] + list(reversed(shell[1:]))
    ring = shell + [shell[0]]
    boundary = Polyline(ring)
    total = boundary.length
    return [
        boundary.point_at_distance(total * i / count) for i in range(count)
    ]


class MovingRegion:
    """A region changing over time, as interpolated polygon snapshots.

    Parameters
    ----------
    snapshots:
        ``(t, polygon)`` pairs with strictly increasing instants; at least
        one required.  Holes are not supported (the sliced representation
        interpolates simple shells).
    """

    def __init__(self, snapshots: Sequence[Tuple[float, Polygon]]) -> None:
        items = sorted(snapshots, key=lambda item: item[0])
        if not items:
            raise TrajectoryError("a moving region needs at least one snapshot")
        for (t0, _), (t1, _) in zip(items, items[1:]):
            if not t0 < t1:
                raise TrajectoryError(
                    f"snapshot instants must be strictly increasing; got "
                    f"{t0} then {t1}"
                )
        for t, polygon in items:
            if polygon.holes:
                raise TrajectoryError(
                    "moving regions interpolate simple shells; holes are "
                    "not supported"
                )
        self._times = [float(t) for t, _ in items]
        self._polygons = [polygon for _, polygon in items]

    def __len__(self) -> int:
        return len(self._times)

    @property
    def time_domain(self) -> Tuple[float, float]:
        """``[first snapshot instant, last snapshot instant]``."""
        return (self._times[0], self._times[-1])

    def covers(self, t: float) -> bool:
        """True when ``t`` lies within the snapshot span."""
        return self._times[0] <= t <= self._times[-1]

    def snapshot_times(self) -> List[float]:
        """The snapshot instants."""
        return list(self._times)

    def polygon_at(self, t: float) -> Polygon:
        """Return the interpolated region at an instant of the domain.

        At snapshot instants the stored polygon is returned exactly; inside
        a slice, corresponding resampled shell vertices are interpolated
        linearly (the [16] construction).
        """
        if not self.covers(t):
            raise TrajectoryError(
                f"instant {t} outside time domain {self.time_domain}"
            )
        index = bisect.bisect_right(self._times, t) - 1
        if self._times[index] == t or index == len(self._times) - 1:
            return self._polygons[index]
        t0, t1 = self._times[index], self._times[index + 1]
        a, b = self._polygons[index], self._polygons[index + 1]
        count = max(len(a.shell), len(b.shell), 8)
        ring_a = _ring_resampled(a, count)
        ring_b = _ring_resampled(b, count)
        w = (t - t0) / (t1 - t0)
        blended = [
            Point(
                float(pa.x) + w * (float(pb.x) - float(pa.x)),
                float(pa.y) + w * (float(pb.y) - float(pa.y)),
            )
            for pa, pb in zip(ring_a, ring_b)
        ]
        return Polygon(blended)

    def area_at(self, t: float) -> float:
        """Area of the region at an instant."""
        return self.polygon_at(t).area

    def contains(self, t: float, point: Point) -> bool:
        """Closed containment at an instant of the domain."""
        return self.polygon_at(t).contains_point(point)

    def samples_inside(self, moft: MOFT) -> List[Tuple[object, float]]:
        """``(Oid, t)`` pairs whose sample lies in the region *at its own
        instant* — the moving-region analogue of the paper's region C.

        Samples outside the region's time domain never match.
        """
        matches: List[Tuple[object, float]] = []
        for oid, t, x, y in moft.tuples():
            if self.covers(t) and self.contains(t, Point(x, y)):
                matches.append((oid, t))
        return matches
