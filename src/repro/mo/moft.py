"""The Moving Object Fact Table (MOFT) — Section 3 of the paper.

"A distinguished Moving Object Fact Table (MOFT), that contains tuples of
the form ``(Oid, t, x, y)``, where ``Oid`` is the identifier of the moving
object, ``t`` is a time instant, and ``(x, y)`` are the coordinates of the
object ``Oid`` at instant ``t``."

The table is a small columnar storage engine.  The ``(t, x, y)`` columns
are NumPy float arrays and the ``oid`` column is an object array; bulk
construction and restriction operate on whole columns:

* :meth:`from_columns` constructs a table from columns in one shot;
* :meth:`filter`, :meth:`restrict_instants` and :meth:`restrict_objects`
  produce restricted tables by boolean-mask slicing (:meth:`mask_rows`) —
  no per-row revalidation, no per-row appends;
* per-object access (:meth:`history`, :meth:`position`,
  :meth:`trajectory_sample`) goes through a cached time-sorted row index,
  so a point lookup is a binary search rather than a sort-per-call.

Storage is dual: append-friendly Python row lists and the cached column
arrays, each materialized lazily from the other.  ``add()`` works on the
lists (invalidating the arrays); bulk construction installs the arrays
and defers the lists until row iteration or another append needs them.

The table enforces the physical invariant that an object occupies at most
one position per instant.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.errors import TrajectoryError
from repro.geometry.point import BoundingBox, Point
from repro.mo.trajectory import TrajectorySample

#: Instant-membership tolerance in ulps.  Instants that reach a query
#: through interpolation or granule arithmetic can drift a few ulps from
#: the registered member they mean; registered instants themselves are
#: separated by whole time units, many orders of magnitude wider.
INSTANT_MATCH_ULPS = 4.0


def sorted_instants(instants: Iterable[float]) -> np.ndarray:
    """Canonicalize an instant collection to a sorted float array.

    The canonical representation behind every instant-membership test:
    :meth:`MOFT.restrict_instants` and the optimizer's
    :class:`~repro.query.optimizer.FilteredMoft` both build this array
    and test against it with :func:`instants_member_mask`, so a query
    cannot accept an instant in one place and reject it in the other.
    """
    return np.array(sorted(float(t) for t in set(instants)), dtype=float)


def instants_member_mask(t: np.ndarray, wanted: np.ndarray) -> np.ndarray:
    """Which of ``t`` match some instant of the sorted array ``wanted``.

    Membership is ulp-tolerant: an instant matches when it lies within
    ``INSTANT_MATCH_ULPS`` units in the last place of its nearest
    neighbor in ``wanted``.  Exact float set membership is wrong here —
    instants arriving from interpolation or granule arithmetic can
    differ from the registered member by 1 ulp, and a strict ``==``
    silently drops those rows.  The tolerance is a few ulps, far below
    the spacing of distinct registered instants, so no two members are
    ever conflated.
    """
    t = np.asarray(t, dtype=float)
    if wanted.size == 0:
        return np.zeros(t.shape, dtype=bool)
    slots = np.searchsorted(wanted, t)
    below = np.clip(slots - 1, 0, wanted.size - 1)
    above = np.minimum(slots, wanted.size - 1)
    # np.spacing(x) is one ulp at |x|; the max(|t|, 1) floor keeps the
    # tolerance meaningful for instants at or around zero.
    tolerance = INSTANT_MATCH_ULPS * np.spacing(np.maximum(np.abs(t), 1.0))
    return (np.abs(t - wanted[below]) <= tolerance) | (
        np.abs(t - wanted[above]) <= tolerance
    )


def is_member_instant(t: float, wanted: np.ndarray) -> bool:
    """Scalar form of :func:`instants_member_mask` (same tolerance)."""
    return bool(instants_member_mask(np.array([float(t)]), wanted)[0])


class MOFT:
    """An in-memory columnar moving-object fact table."""

    def __init__(self, name: str = "FM") -> None:
        self.name = name
        self._n = 0
        # Row storage; None after bulk construction until materialized.
        self._oids: Optional[List[Hashable]] = []
        self._ts: Optional[List[float]] = []
        self._xs: Optional[List[float]] = []
        self._ys: Optional[List[float]] = []
        # (oid, t) uniqueness set — rebuilt lazily before the first add()
        # on a bulk-constructed table.
        self._seen: Optional[Set[Tuple[Hashable, float]]] = set()
        # oid -> row indices in insertion order; built lazily.
        self._by_object: Optional[Dict[Hashable, List[int]]] = {}
        # Cached columnar views (authoritative while the lists are None).
        self._arrays: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._oid_col: Optional[np.ndarray] = None
        # oid -> (times sorted ascending, row indices in that order).
        self._order: Dict[Hashable, Tuple[np.ndarray, np.ndarray]] = {}
        # Mutation counter: rows are append-only, so ``(version, n)``
        # snapshots let derived structures (the pre-aggregation store)
        # detect staleness and read ``rows[snapshot_n:]`` as the delta.
        self._version = 0

    @property
    def version(self) -> int:
        """Monotone mutation counter (bumped by every append)."""
        return self._version

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:
        return (
            f"MOFT({self.name!r}, samples={len(self)}, "
            f"objects={len(self._object_rows())})"
        )

    # -- storage duality -------------------------------------------------------

    def _lists(
        self,
    ) -> Tuple[List[Hashable], List[float], List[float], List[float]]:
        """Row lists, materialized from the column arrays when absent."""
        if self._ts is None:
            t, x, y = self._arrays  # type: ignore[misc]
            self._ts = t.tolist()
            self._xs = x.tolist()
            self._ys = y.tolist()
            self._oids = self._oid_col.tolist()  # type: ignore[union-attr]
        return self._oids, self._ts, self._xs, self._ys  # type: ignore[return-value]

    # -- loading ---------------------------------------------------------------

    def add(self, oid: Hashable, t: float, x: float, y: float) -> None:
        """Append one sample; ``(oid, t)`` pairs must be unique."""
        oids, ts, xs, ys = self._lists()
        if self._seen is None:
            self._seen = set(zip(oids, ts))
        key = (oid, float(t))
        if key in self._seen:
            raise TrajectoryError(
                f"object {oid!r} already has a sample at t={t} "
                f"(an object is at one point at a given instant)"
            )
        self._seen.add(key)
        index = self._n
        oids.append(oid)
        ts.append(float(t))
        xs.append(float(x))
        ys.append(float(y))
        self._n += 1
        self._version += 1
        if self._by_object is not None:
            self._by_object.setdefault(oid, []).append(index)
        self._arrays = None
        self._oid_col = None
        self._order.pop(oid, None)

    def add_many(
        self, samples: Iterable[Tuple[Hashable, float, float, float]]
    ) -> None:
        """Append many ``(oid, t, x, y)`` tuples."""
        for oid, t, x, y in samples:
            self.add(oid, t, x, y)

    @classmethod
    def from_columns(
        cls,
        oids: Sequence[Hashable],
        ts: Sequence[float],
        xs: Sequence[float],
        ys: Sequence[float],
        name: str = "FM",
        validate: bool = True,
    ) -> "MOFT":
        """Bulk-construct a table from whole columns.

        Parameters
        ----------
        oids, ts, xs, ys:
            Equal-length columns (sequences or NumPy arrays).
        validate:
            Check the ``(oid, t)`` uniqueness invariant.  Pass ``False``
            only when the columns provably satisfy it already — e.g. when
            mask-slicing an existing valid table.
        """
        t_col = np.asarray(ts, dtype=float)
        x_col = np.asarray(xs, dtype=float)
        y_col = np.asarray(ys, dtype=float)
        if isinstance(oids, np.ndarray) and oids.dtype == object:
            oid_col = oids.copy()
        else:
            oid_col = np.fromiter(oids, dtype=object, count=len(oids))
        n = oid_col.shape[0]
        if not (t_col.shape[0] == x_col.shape[0] == y_col.shape[0] == n):
            raise TrajectoryError(
                f"column lengths differ: oids={n}, ts={t_col.shape[0]}, "
                f"xs={x_col.shape[0]}, ys={y_col.shape[0]}"
            )
        moft = cls(name)
        moft._n = n
        moft._oids = moft._ts = moft._xs = moft._ys = None
        moft._arrays = (t_col, x_col, y_col)
        moft._oid_col = oid_col
        moft._by_object = None
        if validate:
            seen = set(zip(oid_col.tolist(), t_col.tolist()))
            if len(seen) != n:
                counts: Dict[Tuple[Hashable, float], int] = {}
                for key in zip(oid_col.tolist(), t_col.tolist()):
                    counts[key] = counts.get(key, 0) + 1
                oid, t = next(k for k, c in counts.items() if c > 1)
                raise TrajectoryError(
                    f"object {oid!r} already has a sample at t={t} "
                    f"(an object is at one point at a given instant)"
                )
            moft._seen = seen
        else:
            moft._seen = None
        return moft

    def extend_columns(
        self,
        oids: Sequence[Hashable],
        ts: Sequence[float],
        xs: Sequence[float],
        ys: Sequence[float],
        validate: bool = True,
    ) -> int:
        """Bulk-append whole columns; returns the first new row index.

        The columnar sibling of :meth:`add_many`: one array concatenation
        instead of per-row appends, one version bump for the whole batch.
        With ``validate=True`` the appended ``(oid, t)`` pairs are checked
        unique among themselves and against the existing rows.
        """
        t_new = np.asarray(ts, dtype=float)
        x_new = np.asarray(xs, dtype=float)
        y_new = np.asarray(ys, dtype=float)
        if isinstance(oids, np.ndarray) and oids.dtype == object:
            oid_new = oids.copy()
        else:
            oid_new = np.fromiter(oids, dtype=object, count=len(oids))
        n_new = oid_new.shape[0]
        if not (t_new.shape[0] == x_new.shape[0] == y_new.shape[0] == n_new):
            raise TrajectoryError(
                f"column lengths differ: oids={n_new}, ts={t_new.shape[0]}, "
                f"xs={x_new.shape[0]}, ys={y_new.shape[0]}"
            )
        if n_new == 0:
            return self._n
        if validate:
            if self._seen is None:
                oid_col = self.oid_column()
                t_col, _, _ = self.as_arrays()
                self._seen = set(zip(oid_col.tolist(), t_col.tolist()))
            fresh = list(zip(oid_new.tolist(), t_new.tolist()))
            fresh_set = set(fresh)
            if len(fresh_set) != len(fresh) or not self._seen.isdisjoint(
                fresh_set
            ):
                counts: Dict[Tuple[Hashable, float], int] = {}
                for key in fresh:
                    counts[key] = counts.get(key, 0) + 1
                oid, t = next(
                    k
                    for k, c in counts.items()
                    if c > 1 or k in self._seen
                )
                raise TrajectoryError(
                    f"object {oid!r} already has a sample at t={t} "
                    f"(an object is at one point at a given instant)"
                )
            self._seen.update(fresh_set)
        elif self._seen is not None:
            self._seen.update(zip(oid_new.tolist(), t_new.tolist()))
        t_col, x_col, y_col = self.as_arrays()
        oid_col = self.oid_column()
        first_new = self._n
        self._arrays = (
            np.concatenate([t_col, t_new]),
            np.concatenate([x_col, x_new]),
            np.concatenate([y_col, y_new]),
        )
        self._oid_col = np.concatenate([oid_col, oid_new])
        self._oids = self._ts = self._xs = self._ys = None
        self._n += n_new
        self._version += 1
        if self._by_object is not None:
            for offset, oid in enumerate(oid_new.tolist()):
                self._by_object.setdefault(oid, []).append(first_new + offset)
        for oid in set(oid_new.tolist()):
            self._order.pop(oid, None)
        return first_new

    # -- columnar persistence ----------------------------------------------------

    def save(self, path, include_index: bool = True) -> int:
        """Write this table as one columnar file (see :mod:`repro.mo.storage`).

        Persists the ``(oid, t, x, y)`` columns plus (by default) the
        per-object time-sorted index as mmap-able little-endian blobs.
        Returns the number of bytes written.  Raises
        :class:`~repro.errors.MoftStorageError` for object ids the
        format cannot encode (anything but ``str``/``int``).
        """
        from repro.mo import storage

        return storage.save_moft(self, path, include_index=include_index)

    @classmethod
    def load(cls, path, mmap: bool = True) -> "MOFT":
        """Load a columnar file written by :meth:`save`.

        With ``mmap=True`` (default) the columns are zero-copy views
        over the mapped file and the stored per-object index pre-fills
        the sorted-order cache.  Raises
        :class:`~repro.errors.MoftStorageError` on truncated or corrupt
        files — never a raw numpy/struct traceback.
        """
        from repro.mo import storage

        return storage.load_moft(path, mmap=mmap)

    # -- row access ----------------------------------------------------------------

    def rows(self) -> Iterator[Dict[str, Hashable]]:
        """Iterate samples as ``{'oid', 't', 'x', 'y'}`` dictionaries."""
        oids, ts, xs, ys = self._lists()
        for i in range(self._n):
            yield {"oid": oids[i], "t": ts[i], "x": xs[i], "y": ys[i]}

    def tuples(self) -> Iterator[Tuple[Hashable, float, float, float]]:
        """Iterate samples as plain ``(oid, t, x, y)`` tuples."""
        oids, ts, xs, ys = self._lists()
        for i in range(self._n):
            yield (oids[i], ts[i], xs[i], ys[i])

    def objects(self) -> Set[Hashable]:
        """All distinct object identifiers."""
        return set(self._object_rows())

    def instants(self) -> Set[float]:
        """All distinct sampling instants."""
        if self._ts is not None:
            return set(self._ts)
        t, _, _ = self.as_arrays()
        return set(t.tolist())

    def sample_count(self, oid: Hashable) -> int:
        """Number of samples of one object (0 for unknown objects)."""
        return len(self._object_rows().get(oid, ()))

    # -- columnar access --------------------------------------------------------------

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(t, x, y)`` as float arrays in insertion order.

        Built lazily and cached until the next :meth:`add`.  Use
        :meth:`oid_column` for the matching object-id column or
        :meth:`object_mask` to slice by object.
        """
        if self._arrays is None:
            self._arrays = (
                np.asarray(self._ts, dtype=float),
                np.asarray(self._xs, dtype=float),
                np.asarray(self._ys, dtype=float),
            )
        return self._arrays

    def oid_column(self) -> np.ndarray:
        """The object-id column as an object-dtype array (cached)."""
        if self._oid_col is None:
            self._oid_col = np.fromiter(
                self._oids, dtype=object, count=self._n
            )
        return self._oid_col

    def object_mask(self, oid: Hashable) -> np.ndarray:
        """Boolean mask over rows selecting one object's samples."""
        mask = np.zeros(self._n, dtype=bool)
        mask[self._object_rows().get(oid, [])] = True
        return mask

    def _object_rows(self) -> Dict[Hashable, List[int]]:
        """``oid -> row indices`` in insertion order (built lazily)."""
        if self._by_object is None:
            oids = self._oids if self._oids is not None else self.oid_column()
            by_object: Dict[Hashable, List[int]] = {}
            for index, oid in enumerate(oids):
                rows = by_object.get(oid)
                if rows is None:
                    by_object[oid] = [index]
                else:
                    rows.append(index)
            self._by_object = by_object
        return self._by_object

    # -- per-object histories ------------------------------------------------------------

    def _object_order(self, oid: Hashable) -> Tuple[np.ndarray, np.ndarray]:
        """Cached ``(sorted times, row indices sorted by time)`` of one object."""
        cached = self._order.get(oid)
        if cached is not None:
            return cached
        indices = self._object_rows().get(oid)
        if not indices:
            raise TrajectoryError(f"no samples for object {oid!r}")
        rows = np.asarray(indices, dtype=np.intp)
        t, _, _ = self.as_arrays()
        times = t[rows]
        order = np.argsort(times, kind="stable")
        entry = (times[order], rows[order])
        self._order[oid] = entry
        return entry

    def history(self, oid: Hashable) -> List[Tuple[float, float, float]]:
        """Return one object's ``(t, x, y)`` samples sorted by time."""
        times, rows = self._object_order(oid)
        _, x, y = self.as_arrays()
        return list(zip(times.tolist(), x[rows].tolist(), y[rows].tolist()))

    def trajectory_sample(self, oid: Hashable) -> TrajectorySample:
        """Return one object's history as a :class:`TrajectorySample`."""
        return TrajectorySample(self.history(oid))

    def position(self, oid: Hashable, t: float) -> Optional[Point]:
        """Return the *sampled* position of an object at an instant, if any.

        Binary search over the cached time-sorted index — O(log n) per
        lookup instead of a linear scan of a freshly sorted history.
        """
        times, rows = self._object_order(oid)
        slot = int(np.searchsorted(times, float(t)))
        if slot == times.shape[0] or times[slot] != float(t):
            return None
        row = int(rows[slot])
        _, x, y = self.as_arrays()
        return Point(float(x[row]), float(y[row]))

    # -- restriction -----------------------------------------------------------------------

    def mask_rows(self, mask: np.ndarray) -> "MOFT":
        """Return the sub-table of rows selected by a boolean mask.

        Row order is preserved, so the result is row-for-row identical to
        a per-row rebuild.  The ``(oid, t)`` invariant is inherited from
        this table — no revalidation happens.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != self._n:
            raise TrajectoryError(
                f"mask has {mask.shape[0]} entries for {self._n} rows"
            )
        t, x, y = self.as_arrays()
        return MOFT.from_columns(
            self.oid_column()[mask],
            t[mask],
            x[mask],
            y[mask],
            name=self.name,
            validate=False,
        )

    def filter(self, predicate: Callable[[Dict[str, Hashable]], bool]) -> "MOFT":
        """Return a new MOFT with the rows satisfying a row predicate."""
        mask = np.fromiter(
            (bool(predicate(row)) for row in self.rows()),
            dtype=bool,
            count=self._n,
        )
        return self.mask_rows(mask)

    def restrict_instants(self, instants: Set[float]) -> "MOFT":
        """Keep the samples whose instant is in ``instants``.

        This is the paper's ``FM_morning`` construction: the sub-fact-table
        of samples taken at instants rolling up to a temporal member.
        Membership is the shared ulp-tolerant sorted-array test
        (:func:`instants_member_mask`), so instants that drifted a few
        ulps through interpolation or granule arithmetic still match.
        """
        wanted = sorted_instants(instants)
        t, _, _ = self.as_arrays()
        return self.mask_rows(instants_member_mask(t, wanted))

    def restrict_objects(self, oids: Set[Hashable]) -> "MOFT":
        """Keep the samples of the given objects."""
        wanted = set(oids)
        mask = np.zeros(self._n, dtype=bool)
        for oid, rows in self._object_rows().items():
            if oid in wanted:
                mask[rows] = True
        return self.mask_rows(mask)

    # -- partitioning ----------------------------------------------------------------

    def partition_by_objects(self, n: int) -> List["MOFT"]:
        """Split into ``n`` shards, each holding whole objects.

        Every object's samples land in exactly one shard, so trajectory
        semantics (interpolation between consecutive samples) survive the
        split — the property parallel trajectory queries rely on.  Objects
        are assigned greedily by descending sample count to the least
        loaded shard (deterministic: ties break on the object id's repr),
        so shards are balanced by row count, not object count.

        Shards are built by :meth:`mask_rows` — whole-column boolean
        slicing, no per-row copies.  Some shards may be empty when the
        table has fewer objects than ``n``.
        """
        if n < 1:
            raise TrajectoryError(f"shard count must be >= 1, got {n}")
        by_object = self._object_rows()
        ordered = sorted(
            by_object.items(), key=lambda kv: (-len(kv[1]), repr(kv[0]))
        )
        loads = [0] * n
        masks = [np.zeros(self._n, dtype=bool) for _ in range(n)]
        for oid, rows in ordered:
            shard = min(range(n), key=lambda s: (loads[s], s))
            loads[shard] += len(rows)
            masks[shard][rows] = True
        return [self.mask_rows(mask) for mask in masks]

    def partition_by_time(self, n: int) -> List["MOFT"]:
        """Split into ``n`` shards of contiguous, disjoint instant ranges.

        The distinct instants are sorted and cut into ``n`` nearly equal
        runs; shard ``i`` keeps every sample whose instant falls in run
        ``i``.  The shards are disjoint and their union is the whole
        table.  Note that an object's trajectory may span several shards:
        segments between samples on opposite sides of a cut exist in
        neither shard, so interpolation-sensitive queries must partition
        by objects instead (see ``docs/API.md``).
        """
        if n < 1:
            raise TrajectoryError(f"shard count must be >= 1, got {n}")
        t, _, _ = self.as_arrays()
        instants = np.unique(t)
        groups = np.array_split(instants, n)
        shards: List[MOFT] = []
        for group in groups:
            if group.size == 0:
                shards.append(self.mask_rows(np.zeros(self._n, dtype=bool)))
                continue
            mask = (t >= group[0]) & (t <= group[-1])
            shards.append(self.mask_rows(mask))
        return shards

    @classmethod
    def concat(
        cls, shards: Sequence["MOFT"], name: str = "FM", validate: bool = True
    ) -> "MOFT":
        """Concatenate tables column-wise into one MOFT.

        The inverse of the partitioners up to row order: concatenating the
        shards of either partitioner yields a row-*set*-identical table.
        Pass ``validate=False`` only when the inputs are known disjoint in
        ``(oid, t)`` — e.g. shards of one valid table.
        """
        tables = [shard for shard in shards if len(shard)]
        if not tables:
            return cls(name)
        columns = [table.as_arrays() for table in tables]
        return cls.from_columns(
            np.concatenate([table.oid_column() for table in tables]),
            np.concatenate([t for t, _, _ in columns]),
            np.concatenate([x for _, x, _ in columns]),
            np.concatenate([y for _, _, y in columns]),
            name=name,
            validate=validate,
        )

    def time_range(self) -> Tuple[float, float]:
        """Return ``(min t, max t)`` over all samples."""
        if self._n == 0:
            raise TrajectoryError(f"MOFT {self.name!r} is empty")
        t, _, _ = self.as_arrays()
        return (float(t.min()), float(t.max()))

    def bbox(self) -> BoundingBox:
        """Spatial bounding box over all sampled positions."""
        if self._n == 0:
            raise TrajectoryError(f"MOFT {self.name!r} is empty")
        _, x, y = self.as_arrays()
        return BoundingBox(
            float(x.min()), float(y.min()), float(x.max()), float(y.max())
        )
