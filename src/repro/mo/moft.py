"""The Moving Object Fact Table (MOFT) — Section 3 of the paper.

"A distinguished Moving Object Fact Table (MOFT), that contains tuples of
the form ``(Oid, t, x, y)``, where ``Oid`` is the identifier of the moving
object, ``t`` is a time instant, and ``(x, y)`` are the coordinates of the
object ``Oid`` at instant ``t``."

The table enforces the physical invariant that an object occupies at most
one position per instant, offers row access for the logical operators and a
columnar NumPy view for bulk scans, and converts per-object histories into
:class:`~repro.mo.trajectory.TrajectorySample` objects.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.errors import TrajectoryError
from repro.geometry.point import BoundingBox, Point
from repro.mo.trajectory import TrajectorySample


class MOFT:
    """An in-memory moving-object fact table."""

    def __init__(self, name: str = "FM") -> None:
        self.name = name
        self._oids: List[Hashable] = []
        self._ts: List[float] = []
        self._xs: List[float] = []
        self._ys: List[float] = []
        self._seen: Set[Tuple[Hashable, float]] = set()
        self._by_object: Dict[Hashable, List[int]] = {}
        self._arrays: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def __len__(self) -> int:
        return len(self._ts)

    def __repr__(self) -> str:
        return (
            f"MOFT({self.name!r}, samples={len(self)}, "
            f"objects={len(self._by_object)})"
        )

    # -- loading ---------------------------------------------------------------

    def add(self, oid: Hashable, t: float, x: float, y: float) -> None:
        """Append one sample; ``(oid, t)`` pairs must be unique."""
        key = (oid, t)
        if key in self._seen:
            raise TrajectoryError(
                f"object {oid!r} already has a sample at t={t} "
                f"(an object is at one point at a given instant)"
            )
        self._seen.add(key)
        index = len(self._ts)
        self._oids.append(oid)
        self._ts.append(float(t))
        self._xs.append(float(x))
        self._ys.append(float(y))
        self._by_object.setdefault(oid, []).append(index)
        self._arrays = None

    def add_many(
        self, samples: Iterable[Tuple[Hashable, float, float, float]]
    ) -> None:
        """Append many ``(oid, t, x, y)`` tuples."""
        for oid, t, x, y in samples:
            self.add(oid, t, x, y)

    # -- row access ----------------------------------------------------------------

    def rows(self) -> Iterator[Dict[str, Hashable]]:
        """Iterate samples as ``{'oid', 't', 'x', 'y'}`` dictionaries."""
        for i in range(len(self._ts)):
            yield {
                "oid": self._oids[i],
                "t": self._ts[i],
                "x": self._xs[i],
                "y": self._ys[i],
            }

    def tuples(self) -> Iterator[Tuple[Hashable, float, float, float]]:
        """Iterate samples as plain ``(oid, t, x, y)`` tuples."""
        for i in range(len(self._ts)):
            yield (self._oids[i], self._ts[i], self._xs[i], self._ys[i])

    def objects(self) -> Set[Hashable]:
        """All distinct object identifiers."""
        return set(self._by_object)

    def instants(self) -> Set[float]:
        """All distinct sampling instants."""
        return set(self._ts)

    def sample_count(self, oid: Hashable) -> int:
        """Number of samples of one object (0 for unknown objects)."""
        return len(self._by_object.get(oid, ()))

    # -- columnar access --------------------------------------------------------------

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(t, x, y)`` as float arrays in insertion order.

        Built lazily and cached until the next :meth:`add`.  Object ids are
        not included (they may be arbitrary hashables); use
        :meth:`object_mask` to slice by object.
        """
        if self._arrays is None:
            self._arrays = (
                np.asarray(self._ts, dtype=float),
                np.asarray(self._xs, dtype=float),
                np.asarray(self._ys, dtype=float),
            )
        return self._arrays

    def object_mask(self, oid: Hashable) -> np.ndarray:
        """Boolean mask over rows selecting one object's samples."""
        mask = np.zeros(len(self._ts), dtype=bool)
        mask[self._by_object.get(oid, [])] = True
        return mask

    # -- per-object histories ------------------------------------------------------------

    def history(self, oid: Hashable) -> List[Tuple[float, float, float]]:
        """Return one object's ``(t, x, y)`` samples sorted by time."""
        indices = self._by_object.get(oid)
        if not indices:
            raise TrajectoryError(f"no samples for object {oid!r}")
        return sorted(
            (self._ts[i], self._xs[i], self._ys[i]) for i in indices
        )

    def trajectory_sample(self, oid: Hashable) -> TrajectorySample:
        """Return one object's history as a :class:`TrajectorySample`."""
        return TrajectorySample(self.history(oid))

    def position(self, oid: Hashable, t: float) -> Optional[Point]:
        """Return the *sampled* position of an object at an instant, if any."""
        for st, x, y in self.history(oid):
            if st == t:
                return Point(x, y)
        return None

    # -- restriction -----------------------------------------------------------------------

    def filter(self, predicate: Callable[[Dict[str, Hashable]], bool]) -> "MOFT":
        """Return a new MOFT with the rows satisfying a row predicate."""
        result = MOFT(self.name)
        for row in self.rows():
            if predicate(row):
                result.add(row["oid"], row["t"], row["x"], row["y"])
        return result

    def restrict_instants(self, instants: Set[float]) -> "MOFT":
        """Keep the samples whose instant is in ``instants``.

        This is the paper's ``FM_morning`` construction: the sub-fact-table
        of samples taken at instants rolling up to a temporal member.
        """
        wanted = {float(t) for t in instants}
        return self.filter(lambda row: row["t"] in wanted)

    def restrict_objects(self, oids: Set[Hashable]) -> "MOFT":
        """Keep the samples of the given objects."""
        return self.filter(lambda row: row["oid"] in oids)

    def time_range(self) -> Tuple[float, float]:
        """Return ``(min t, max t)`` over all samples."""
        if not self._ts:
            raise TrajectoryError(f"MOFT {self.name!r} is empty")
        return (min(self._ts), max(self._ts))

    def bbox(self) -> BoundingBox:
        """Spatial bounding box over all sampled positions."""
        if not self._ts:
            raise TrajectoryError(f"MOFT {self.name!r} is empty")
        return BoundingBox(
            min(self._xs), min(self._ys), max(self._xs), max(self._ys)
        )
