"""Trajectories and trajectory samples — Definitions 5 and 6 of the paper.

* A **trajectory** (Definition 5) is the graph of a mapping
  ``t ↦ (βx(t), βy(t))`` over a time interval ``I``; for finite
  representability the paper assumes βx, βy continuous semi-algebraic.
* A **trajectory sample** (Definition 6) is a finite, strictly
  time-ordered list ``⟨(t_0, x_0, y_0), …, (t_N, x_N, y_N)⟩``.
* The **linear-interpolation trajectory** ``LIT(S)`` reconstructs a unique
  trajectory from a sample by running at constant lowest speed between
  consecutive samples.
* A trajectory over ``[t_0, t_N]`` whose endpoints coincide is **closed**.
"""

from __future__ import annotations

import abc
import bisect
import math
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import TrajectoryError
from repro.geometry.point import BoundingBox, Point
from repro.geometry.polyline import Polyline
from repro.geometry.segment import Segment


class TrajectorySample:
    """A finite, strictly time-ordered list of time–space points."""

    def __init__(self, points: Iterable[Tuple[float, float, float]]) -> None:
        pts = [(float(t), float(x), float(y)) for t, x, y in points]
        if not pts:
            raise TrajectoryError("a trajectory sample needs at least one point")
        for (t0, _, _), (t1, _, _) in zip(pts, pts[1:]):
            if not t0 < t1:
                raise TrajectoryError(
                    f"sample instants must be strictly increasing; got "
                    f"{t0} then {t1}"
                )
        self._points = pts

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def __getitem__(self, index: int) -> Tuple[float, float, float]:
        return self._points[index]

    @property
    def times(self) -> List[float]:
        """The sampling instants, in order."""
        return [t for t, _, _ in self._points]

    @property
    def positions(self) -> List[Point]:
        """The sampled positions, in time order."""
        return [Point(x, y) for _, x, y in self._points]

    @property
    def start_time(self) -> float:
        """First sampling instant."""
        return self._points[0][0]

    @property
    def end_time(self) -> float:
        """Last sampling instant."""
        return self._points[-1][0]

    @property
    def duration(self) -> float:
        """``t_N - t_0``."""
        return self.end_time - self.start_time

    @property
    def is_closed(self) -> bool:
        """True when the first and last positions coincide."""
        _, x0, y0 = self._points[0]
        _, xn, yn = self._points[-1]
        return x0 == xn and y0 == yn

    def bbox(self) -> BoundingBox:
        """Bounding box of the sampled positions."""
        return BoundingBox.from_points(self.positions)

    def restricted(self, t_min: float, t_max: float) -> "TrajectorySample":
        """Return the sub-sample with instants in ``[t_min, t_max]``."""
        kept = [p for p in self._points if t_min <= p[0] <= t_max]
        if not kept:
            raise TrajectoryError(
                f"no sample instants in [{t_min}, {t_max}]"
            )
        return TrajectorySample(kept)

    def __repr__(self) -> str:
        return (
            f"TrajectorySample({len(self)} points over "
            f"[{self.start_time}, {self.end_time}])"
        )


class Trajectory(abc.ABC):
    """Abstract trajectory: the graph of ``t ↦ (βx(t), βy(t))`` on ``I``."""

    @property
    @abc.abstractmethod
    def time_domain(self) -> Tuple[float, float]:
        """The interval ``I = [t_min, t_max]``."""

    @abc.abstractmethod
    def position(self, t: float) -> Point:
        """The position ``(βx(t), βy(t))`` at an instant of the domain."""

    def covers(self, t: float) -> bool:
        """True when ``t`` lies in the time domain."""
        lo, hi = self.time_domain
        return lo <= t <= hi

    def sampled(self, times: Sequence[float]) -> TrajectorySample:
        """Observe the trajectory at the given instants.

        Instants outside the domain raise; this models the sampling process
        that produces MOFT tuples.
        """
        points = []
        for t in times:
            if not self.covers(t):
                raise TrajectoryError(
                    f"instant {t} outside time domain {self.time_domain}"
                )
            p = self.position(t)
            points.append((t, float(p.x), float(p.y)))
        return TrajectorySample(points)

    def image_polyline(self, num_points: int = 64) -> Polyline:
        """Approximate the image of the trajectory by a polyline."""
        if num_points < 2:
            raise TrajectoryError("image needs at least two points")
        lo, hi = self.time_domain
        if hi == lo:
            raise TrajectoryError("degenerate time domain")
        return Polyline(
            [
                self.position(lo + (hi - lo) * i / (num_points - 1))
                for i in range(num_points)
            ]
        )


class LinearInterpolationTrajectory(Trajectory):
    """``LIT(S)``: constant lowest speed between consecutive samples.

    The central reconstruction model of the paper (and of [3]): between
    ``(t_i, p_i)`` and ``(t_{i+1}, p_{i+1})`` the object moves along the
    straight segment at constant speed.
    """

    def __init__(self, sample: TrajectorySample) -> None:
        if len(sample) < 2:
            raise TrajectoryError(
                "linear interpolation needs at least two sample points"
            )
        self.sample = sample
        self._times = sample.times

    @property
    def time_domain(self) -> Tuple[float, float]:
        return (self.sample.start_time, self.sample.end_time)

    def position(self, t: float) -> Point:
        if not self.covers(t):
            raise TrajectoryError(
                f"instant {t} outside time domain {self.time_domain}"
            )
        # Find the piece [t_i, t_{i+1}] containing t.
        i = bisect.bisect_right(self._times, t) - 1
        if i >= len(self._times) - 1:
            i = len(self._times) - 2
        t0, x0, y0 = self.sample[i]
        t1, x1, y1 = self.sample[i + 1]
        # The paper's formula: x = ((t1-t)x0 + (t-t0)x1) / (t1-t0).
        w = (t - t0) / (t1 - t0)
        return Point(x0 + w * (x1 - x0), y0 + w * (y1 - y0))

    def pieces(self) -> List[Tuple[float, float, Segment]]:
        """Return the interpolation pieces as ``(t_i, t_{i+1}, segment)``.

        The segment parameter ``s ∈ [0, 1]`` corresponds affinely to time:
        ``t = t_i + s (t_{i+1} - t_i)``.  Region entry/exit *times* follow
        directly from polygon clip parameters — the workhorse of the Type-7
        (trajectory) queries.
        """
        result = []
        for (t0, x0, y0), (t1, x1, y1) in zip(self.sample, list(self.sample)[1:]):
            result.append((t0, t1, Segment(Point(x0, y0), Point(x1, y1))))
        return result

    @property
    def length(self) -> float:
        """Total length travelled (sum of piece lengths)."""
        return sum(seg.length for _, _, seg in self.pieces())

    @property
    def is_closed(self) -> bool:
        """True when the trajectory starts and ends at the same point."""
        return self.sample.is_closed

    def speed_on_piece(self, index: int) -> float:
        """Constant speed on the ``index``-th interpolation piece."""
        pieces = self.pieces()
        try:
            t0, t1, seg = pieces[index]
        except IndexError:
            raise TrajectoryError(
                f"piece index {index} out of range (have {len(pieces)})"
            ) from None
        return seg.length / (t1 - t0)

    def speed_at(self, t: float) -> float:
        """Speed at an instant (right-continuous at sample instants)."""
        if not self.covers(t):
            raise TrajectoryError(
                f"instant {t} outside time domain {self.time_domain}"
            )
        i = bisect.bisect_right(self._times, t) - 1
        if i >= len(self._times) - 1:
            i = len(self._times) - 2
        return self.speed_on_piece(i)


class FunctionalTrajectory(Trajectory):
    """A trajectory given by explicit coordinate functions βx, βy.

    Definition 5 allows any continuous (semi-algebraic) mappings; this class
    wraps arbitrary callables.  The paper's example — a quarter circle,
    ``t ↦ ((1-t²)/(1+t²), 2t/(1+t²))`` on ``[0, 1]`` — is provided by
    :meth:`quarter_circle`.
    """

    def __init__(
        self,
        beta_x: Callable[[float], float],
        beta_y: Callable[[float], float],
        domain: Tuple[float, float],
    ) -> None:
        lo, hi = domain
        if not lo < hi:
            raise TrajectoryError(
                f"time domain must be a nondegenerate interval, got {domain}"
            )
        self._beta_x = beta_x
        self._beta_y = beta_y
        self._domain = (float(lo), float(hi))

    @property
    def time_domain(self) -> Tuple[float, float]:
        return self._domain

    def position(self, t: float) -> Point:
        if not self.covers(t):
            raise TrajectoryError(
                f"instant {t} outside time domain {self.time_domain}"
            )
        return Point(self._beta_x(t), self._beta_y(t))

    @classmethod
    def quarter_circle(cls) -> "FunctionalTrajectory":
        """The paper's semi-algebraic example trajectory on ``[0, 1]``."""
        return cls(
            lambda t: (1 - t * t) / (1 + t * t),
            lambda t: 2 * t / (1 + t * t),
            (0.0, 1.0),
        )

    def linearized(self, num_pieces: int = 32) -> LinearInterpolationTrajectory:
        """Approximate by a LIT over a uniform time grid."""
        if num_pieces < 1:
            raise TrajectoryError("need at least one piece")
        lo, hi = self._domain
        times = [lo + (hi - lo) * i / num_pieces for i in range(num_pieces + 1)]
        return LinearInterpolationTrajectory(self.sampled(times))
