"""MOFT interchange: CSV import/export.

Real MOFT data arrives as CSV dumps of ``(Oid, t, x, y)`` observations —
the exact tuple format of Section 3.  These helpers read and write that
format, with a header row, so trajectories can round-trip through files.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import TextIO, Union

from repro.errors import TrajectoryError
from repro.mo.moft import MOFT

#: The canonical header of a MOFT CSV file.
HEADER = ("oid", "t", "x", "y")


def write_csv(moft: MOFT, destination: Union[str, Path, TextIO]) -> int:
    """Write a MOFT as CSV; returns the number of rows written."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as handle:
            return write_csv(moft, handle)
    writer = csv.writer(destination)
    writer.writerow(HEADER)
    count = 0
    for oid, t, x, y in moft.tuples():
        writer.writerow([oid, t, x, y])
        count += 1
    return count


def read_csv(
    source: Union[str, Path, TextIO], name: str = "FM"
) -> MOFT:
    """Read a MOFT from CSV (header required, column order flexible)."""
    if isinstance(source, (str, Path)):
        with open(source, newline="") as handle:
            return read_csv(handle, name)
    reader = csv.reader(source)
    try:
        header = [cell.strip().lower() for cell in next(reader)]
    except StopIteration:
        raise TrajectoryError("empty MOFT CSV") from None
    duplicates = sorted(
        {column for column in HEADER if header.count(column) > 1}
    )
    if duplicates:
        raise TrajectoryError(
            f"MOFT CSV header repeats column(s) {duplicates}: {header} — "
            f"refusing to guess which copy holds the data"
        )
    try:
        indices = [header.index(column) for column in HEADER]
    except ValueError as exc:
        raise TrajectoryError(
            f"MOFT CSV must have columns {HEADER}, got {header}"
        ) from exc
    oids: list = []
    ts: list = []
    xs: list = []
    ys: list = []
    for line_number, row in enumerate(reader, start=2):
        if not row or all(not cell.strip() for cell in row):
            continue
        try:
            oids.append(row[indices[0]])
            ts.append(float(row[indices[1]]))
            xs.append(float(row[indices[2]]))
            ys.append(float(row[indices[3]]))
        except (IndexError, ValueError) as exc:
            raise TrajectoryError(
                f"malformed MOFT CSV row {line_number}: {row!r}"
            ) from exc
    return MOFT.from_columns(oids, ts, xs, ys, name=name)


def to_csv_text(moft: MOFT) -> str:
    """Return the CSV serialization as a string."""
    buffer = io.StringIO()
    write_csv(moft, buffer)
    return buffer.getvalue()


def from_csv_text(text: str, name: str = "FM") -> MOFT:
    """Parse a CSV string into a MOFT."""
    return read_csv(io.StringIO(text), name)
