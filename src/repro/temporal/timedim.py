"""The Time dimension of the paper (Figure 2, right-hand side).

The paper treats Time as "a special kind of dimension" because it is
essential for moving objects: every example query constrains the MOFT
through Time rollups like ``R^{timeOfDay}_{timeId}(t) = "Morning"``.

:class:`TimeDimension` wraps a standard
:class:`~repro.olap.dimension.DimensionInstance` whose schema is::

    timeId -> hour -> timeOfDay -> All
    timeId -> day  -> dayOfWeek -> All
              day  -> typeOfDay -> All
              day  -> month -> year -> All

where ``hour`` is the hour-of-day (0..23), so that the paper's numeric
comparisons over hours (``h >= 8 AND h <= 10``) type-check, and ``day`` is
an ISO date string, so that slices like ``R^{day}_{timeId}(t) =
"2006-01-07"`` read exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timedelta
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.errors import RollupError, SchemaError
from repro.olap.dimension import ALL_LEVEL, DimensionInstance, DimensionSchema
from repro.temporal.calendar import (
    DEFAULT_DAY_PARTS,
    InstantMapping,
    day_of_week_name,
    time_of_day_for_hour,
    type_of_day,
)

#: The schema edges of the Time dimension.
TIME_SCHEMA_EDGES = (
    ("timeId", "hour"),
    ("hour", "timeOfDay"),
    ("timeId", "day"),
    ("day", "dayOfWeek"),
    ("day", "typeOfDay"),
    ("day", "month"),
    ("month", "year"),
)


def time_dimension_schema(name: str = "Time") -> DimensionSchema:
    """Return the paper's Time dimension schema."""
    return DimensionSchema(name, TIME_SCHEMA_EDGES)


@dataclass(frozen=True)
class GranulePartition:
    """The instants partitioned into *contiguous* granules of one level.

    A granule is one member of ``level`` together with the instants
    rolling up to it.  The partition is only constructible when every
    granule's instants form a contiguous run of the globally sorted
    instant list — the property that makes a granule an *interval* of
    time, so that instant-range windows can be decomposed into whole
    granules plus edge slivers (the pre-aggregation store relies on
    this; see :mod:`repro.preagg`).

    Attributes
    ----------
    level:
        The granule level (e.g. ``"hour"`` or ``"day"``).
    members:
        Granule members ordered by their first instant.
    starts / ends:
        Per-granule first/last instant (float arrays, same order).
    instants / codes:
        All registered instants sorted ascending, and the granule code
        (index into ``members``) of each.
    """

    level: str
    members: Tuple[Hashable, ...]
    starts: np.ndarray
    ends: np.ndarray
    instants: np.ndarray
    codes: np.ndarray
    _index: Dict[Hashable, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._index.update(
            {member: i for i, member in enumerate(self.members)}
        )

    def __len__(self) -> int:
        return len(self.members)

    def code_of(self, member: Hashable) -> int:
        """Index of a granule member; raises on unknown members."""
        try:
            return self._index[member]
        except KeyError:
            raise RollupError(
                f"{member!r} is not a granule of level {self.level!r}"
            ) from None

    def codes_for(self, ts: np.ndarray) -> np.ndarray:
        """Vectorized instant → granule-code lookup.

        One ``np.searchsorted`` over the sorted instant column instead of
        a Python dict hop per sample.  Instants not registered in the
        dimension map to ``-1``.
        """
        ts = np.asarray(ts, dtype=float)
        if self.instants.size == 0:
            return np.full(ts.shape, -1, dtype=np.int64)
        slots = np.searchsorted(self.instants, ts)
        slots = np.minimum(slots, self.instants.size - 1)
        out = self.codes[slots].astype(np.int64, copy=True)
        out[self.instants[slots] != ts] = -1
        return out

    def span(self, first: int, last: int) -> Tuple[float, float]:
        """Instant interval ``[start, end]`` covered by granules first..last."""
        if not (0 <= first <= last < len(self.members)):
            raise RollupError(
                f"granule run {first}..{last} out of range 0..{len(self) - 1}"
            )
        return float(self.starts[first]), float(self.ends[last])

    def aligned_run(
        self, start: float, end: float
    ) -> Optional[Tuple[int, int]]:
        """The granule run exactly spanning ``[start, end]``, if any.

        Returns ``(first, last)`` when ``start`` is some granule's first
        instant and ``end`` is some granule's last instant; ``None`` when
        the window is misaligned (callers then fall back to
        :meth:`covered_run` plus sliver handling).
        """
        first = int(np.searchsorted(self.starts, float(start)))
        last = int(np.searchsorted(self.ends, float(end)))
        if (
            first < len(self.members)
            and last < len(self.members)
            and self.starts[first] == float(start)
            and self.ends[last] == float(end)
            and first <= last
        ):
            return first, last
        return None

    def covered_run(
        self, start: float, end: float
    ) -> Optional[Tuple[int, int]]:
        """The maximal granule run fully inside ``[start, end]``.

        Returns ``None`` when no whole granule fits in the window.
        """
        first = int(np.searchsorted(self.starts, float(start)))
        last = int(np.searchsorted(self.ends, float(end), side="right")) - 1
        if first <= last and first < len(self.members) and last >= 0:
            return first, last
        return None

    def rollup_codes(
        self, time: "TimeDimension", parent_level: str
    ) -> Tuple["GranulePartition", np.ndarray]:
        """Map this partition onto a coarser one along the lattice.

        Returns the parent :class:`GranulePartition` and an array giving,
        for each granule here, the parent granule code it rolls up to.
        Raises :class:`RollupError` when some granule's instants straddle
        two parents (the rollup would not be a partition refinement).
        """
        parent = time.granules(parent_level)
        mapping = np.full(len(self.members), -1, dtype=np.int64)
        parent_of_instant = parent.codes
        for code in range(len(self.members)):
            parents = np.unique(parent_of_instant[self.codes == code])
            if parents.size != 1 or parents[0] < 0:
                raise RollupError(
                    f"granule {self.members[code]!r} of level "
                    f"{self.level!r} does not roll up to a single "
                    f"{parent_level!r} granule"
                )
            mapping[code] = parents[0]
        return parent, mapping


class TimeDimension:
    """A populated Time dimension over a set of integer instants.

    Construct with :meth:`from_mapping` for calendar-backed instants or
    :meth:`from_explicit_rollups` for hand-specified toy instances (like
    the paper's Figure 1 example, where "Morning" is simply the instants
    {2, 3, 4}).
    """

    def __init__(self, instance: DimensionInstance) -> None:
        if instance.schema.bottom_level != "timeId":
            raise SchemaError("a Time dimension must bottom out at 'timeId'")
        self.instance = instance
        # Granule partitions per level, keyed by the instance's mutation
        # counter so later set_rollup calls invalidate the snapshot.
        self._granule_cache: Dict[str, Tuple[int, GranulePartition]] = {}

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_mapping(
        cls,
        mapping: InstantMapping,
        instants: Iterable[int],
        day_parts: Dict[str, Tuple[int, int]] | None = None,
        name: str = "Time",
    ) -> "TimeDimension":
        """Populate the dimension from a calendar mapping.

        Every instant's hour, day part, day, weekday, day type, month and
        year are derived from ``mapping.to_datetime``.
        """
        schema = time_dimension_schema(name)
        instance = DimensionInstance(schema)
        parts = day_parts or DEFAULT_DAY_PARTS
        seen_hours: Set[int] = set()
        seen_days: Set[str] = set()
        seen_months: Set[str] = set()
        for t in instants:
            moment = mapping.to_datetime(t)
            hour = moment.hour
            day = moment.date().isoformat()
            month = f"{moment.year:04d}-{moment.month:02d}"
            instance.set_rollup("timeId", t, "hour", hour)
            instance.set_rollup("timeId", t, "day", day)
            if hour not in seen_hours:
                seen_hours.add(hour)
                instance.set_rollup(
                    "hour", hour, "timeOfDay", time_of_day_for_hour(hour, parts)
                )
            if day not in seen_days:
                seen_days.add(day)
                instance.set_rollup("day", day, "dayOfWeek", day_of_week_name(moment))
                instance.set_rollup("day", day, "typeOfDay", type_of_day(moment))
                instance.set_rollup("day", day, "month", month)
            if month not in seen_months:
                seen_months.add(month)
                instance.set_rollup("month", month, "year", moment.year)
        return cls(instance)

    @classmethod
    def from_explicit_rollups(
        cls,
        rollups: Iterable[Tuple[str, Hashable, str, Hashable]],
        name: str = "Time",
    ) -> "TimeDimension":
        """Populate from explicit ``(child_level, child, parent_level, parent)``.

        Used for small hand-built instances where the calendar is abstract,
        e.g. the Figure 1 example where instants 2..4 are "the morning".
        """
        schema = time_dimension_schema(name)
        instance = DimensionInstance(schema)
        for child_level, child, parent_level, parent in rollups:
            instance.set_rollup(child_level, child, parent_level, parent)
        return cls(instance)

    # -- rollup access -------------------------------------------------------------

    @property
    def instants(self) -> Set[int]:
        """All registered timeId members."""
        return self.instance.members("timeId")  # type: ignore[return-value]

    def rollup(self, instant: int, level: str) -> Hashable:
        """The paper's ``R^{level}_{timeId}(instant)``."""
        return self.instance.rollup(instant, "timeId", level)

    def try_rollup(self, instant: int, level: str) -> Optional[Hashable]:
        """Like :meth:`rollup`, None when the instant is unregistered."""
        return self.instance.try_rollup(instant, "timeId", level)

    def hour_of(self, instant: int) -> int:
        """Hour-of-day of an instant."""
        return int(self.rollup(instant, "hour"))  # type: ignore[arg-type]

    def day_of(self, instant: int) -> str:
        """ISO day of an instant."""
        return str(self.rollup(instant, "day"))

    def time_of_day_of(self, instant: int) -> str:
        """Day part ("Morning", ...) of an instant."""
        return str(self.rollup(instant, "timeOfDay"))

    def matches(self, instant: int, level: str, member: Hashable) -> bool:
        """True when the instant rolls up to ``member`` at ``level``.

        Unregistered instants match nothing (rather than raising): the MOFT
        may contain samples outside the populated time window and those
        simply fail every temporal constraint.
        """
        return self.try_rollup(instant, level) == member

    def instants_where(self, level: str, member: Hashable) -> Set[int]:
        """All instants rolling up to ``member`` at ``level``.

        This inverts the rollup function — the evaluator uses it to push
        temporal constraints into MOFT scans.
        """
        return {
            t
            for t in self.instants
            if self.try_rollup(t, level) == member
        }

    def span(self, level: str, member: Hashable) -> int:
        """Number of instants covered by ``member`` at ``level``.

        The running query divides the number of contributing samples by the
        *time span* of "the morning" (Remark 1: three hours); this method
        provides that denominator.
        """
        count = len(self.instants_where(level, member))
        if count == 0:
            raise RollupError(
                f"no instants roll up to {member!r} at level {level!r}"
            )
        return count

    def check_consistency(self) -> None:
        """Validate totality/path-independence of all time rollups."""
        self.instance.check_consistency()

    # -- granule partitions ------------------------------------------------------

    def granules(self, level: str) -> GranulePartition:
        """The instants partitioned into contiguous ``level`` granules.

        Built once per (level, instance version) and cached — repeated
        store constructions and planner probes reuse the sorted boundary
        arrays instead of re-deriving per-instant rollups.

        Raises
        ------
        RollupError
            When some instant has no rollup at ``level`` (the partition
            would drop instants) or some granule's instants are not a
            contiguous run of the sorted instant list (the granule would
            not be a time interval, so window decomposition would be
            unsound).
        """
        cached = self._granule_cache.get(level)
        if cached is not None and cached[0] == self.instance.version:
            return cached[1]
        instants = sorted(self.instants)
        members: List[Hashable] = []
        codes = np.empty(len(instants), dtype=np.int64)
        last_member: Optional[Hashable] = None
        seen: Set[Hashable] = set()
        for i, t in enumerate(instants):
            member = self.try_rollup(t, level)
            if member is None:
                raise RollupError(
                    f"instant {t!r} has no rollup at level {level!r}; "
                    f"granule partition would drop it"
                )
            if member != last_member:
                if member in seen:
                    raise RollupError(
                        f"granule {member!r} of level {level!r} is not "
                        f"contiguous: its instants are interleaved with "
                        f"other granules"
                    )
                seen.add(member)
                members.append(member)
                last_member = member
            codes[i] = len(members) - 1
        instant_col = np.asarray([float(t) for t in instants], dtype=float)
        starts = np.empty(len(members), dtype=float)
        ends = np.empty(len(members), dtype=float)
        for code in range(len(members)):
            rows = np.flatnonzero(codes == code)
            starts[code] = instant_col[rows[0]]
            ends[code] = instant_col[rows[-1]]
        partition = GranulePartition(
            level=level,
            members=tuple(members),
            starts=starts,
            ends=ends,
            instants=instant_col,
            codes=codes,
        )
        self._granule_cache[level] = (self.instance.version, partition)
        return partition

    def granule_codes(self, level: str, ts: np.ndarray) -> np.ndarray:
        """Vectorized ``R^{level}_{timeId}`` over a float instant column.

        Returns granule codes into ``self.granules(level).members``;
        unregistered instants map to ``-1``.  This replaces per-sample
        Python dict hops with one ``np.searchsorted`` pass.
        """
        return self.granules(level).codes_for(ts)
