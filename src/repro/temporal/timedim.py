"""The Time dimension of the paper (Figure 2, right-hand side).

The paper treats Time as "a special kind of dimension" because it is
essential for moving objects: every example query constrains the MOFT
through Time rollups like ``R^{timeOfDay}_{timeId}(t) = "Morning"``.

:class:`TimeDimension` wraps a standard
:class:`~repro.olap.dimension.DimensionInstance` whose schema is::

    timeId -> hour -> timeOfDay -> All
    timeId -> day  -> dayOfWeek -> All
              day  -> typeOfDay -> All
              day  -> month -> year -> All

where ``hour`` is the hour-of-day (0..23), so that the paper's numeric
comparisons over hours (``h >= 8 AND h <= 10``) type-check, and ``day`` is
an ISO date string, so that slices like ``R^{day}_{timeId}(t) =
"2006-01-07"`` read exactly as in the paper.
"""

from __future__ import annotations

from datetime import datetime, timedelta
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.errors import RollupError, SchemaError
from repro.olap.dimension import ALL_LEVEL, DimensionInstance, DimensionSchema
from repro.temporal.calendar import (
    DEFAULT_DAY_PARTS,
    InstantMapping,
    day_of_week_name,
    time_of_day_for_hour,
    type_of_day,
)

#: The schema edges of the Time dimension.
TIME_SCHEMA_EDGES = (
    ("timeId", "hour"),
    ("hour", "timeOfDay"),
    ("timeId", "day"),
    ("day", "dayOfWeek"),
    ("day", "typeOfDay"),
    ("day", "month"),
    ("month", "year"),
)


def time_dimension_schema(name: str = "Time") -> DimensionSchema:
    """Return the paper's Time dimension schema."""
    return DimensionSchema(name, TIME_SCHEMA_EDGES)


class TimeDimension:
    """A populated Time dimension over a set of integer instants.

    Construct with :meth:`from_mapping` for calendar-backed instants or
    :meth:`from_explicit_rollups` for hand-specified toy instances (like
    the paper's Figure 1 example, where "Morning" is simply the instants
    {2, 3, 4}).
    """

    def __init__(self, instance: DimensionInstance) -> None:
        if instance.schema.bottom_level != "timeId":
            raise SchemaError("a Time dimension must bottom out at 'timeId'")
        self.instance = instance

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_mapping(
        cls,
        mapping: InstantMapping,
        instants: Iterable[int],
        day_parts: Dict[str, Tuple[int, int]] | None = None,
        name: str = "Time",
    ) -> "TimeDimension":
        """Populate the dimension from a calendar mapping.

        Every instant's hour, day part, day, weekday, day type, month and
        year are derived from ``mapping.to_datetime``.
        """
        schema = time_dimension_schema(name)
        instance = DimensionInstance(schema)
        parts = day_parts or DEFAULT_DAY_PARTS
        seen_hours: Set[int] = set()
        seen_days: Set[str] = set()
        seen_months: Set[str] = set()
        for t in instants:
            moment = mapping.to_datetime(t)
            hour = moment.hour
            day = moment.date().isoformat()
            month = f"{moment.year:04d}-{moment.month:02d}"
            instance.set_rollup("timeId", t, "hour", hour)
            instance.set_rollup("timeId", t, "day", day)
            if hour not in seen_hours:
                seen_hours.add(hour)
                instance.set_rollup(
                    "hour", hour, "timeOfDay", time_of_day_for_hour(hour, parts)
                )
            if day not in seen_days:
                seen_days.add(day)
                instance.set_rollup("day", day, "dayOfWeek", day_of_week_name(moment))
                instance.set_rollup("day", day, "typeOfDay", type_of_day(moment))
                instance.set_rollup("day", day, "month", month)
            if month not in seen_months:
                seen_months.add(month)
                instance.set_rollup("month", month, "year", moment.year)
        return cls(instance)

    @classmethod
    def from_explicit_rollups(
        cls,
        rollups: Iterable[Tuple[str, Hashable, str, Hashable]],
        name: str = "Time",
    ) -> "TimeDimension":
        """Populate from explicit ``(child_level, child, parent_level, parent)``.

        Used for small hand-built instances where the calendar is abstract,
        e.g. the Figure 1 example where instants 2..4 are "the morning".
        """
        schema = time_dimension_schema(name)
        instance = DimensionInstance(schema)
        for child_level, child, parent_level, parent in rollups:
            instance.set_rollup(child_level, child, parent_level, parent)
        return cls(instance)

    # -- rollup access -------------------------------------------------------------

    @property
    def instants(self) -> Set[int]:
        """All registered timeId members."""
        return self.instance.members("timeId")  # type: ignore[return-value]

    def rollup(self, instant: int, level: str) -> Hashable:
        """The paper's ``R^{level}_{timeId}(instant)``."""
        return self.instance.rollup(instant, "timeId", level)

    def try_rollup(self, instant: int, level: str) -> Optional[Hashable]:
        """Like :meth:`rollup`, None when the instant is unregistered."""
        return self.instance.try_rollup(instant, "timeId", level)

    def hour_of(self, instant: int) -> int:
        """Hour-of-day of an instant."""
        return int(self.rollup(instant, "hour"))  # type: ignore[arg-type]

    def day_of(self, instant: int) -> str:
        """ISO day of an instant."""
        return str(self.rollup(instant, "day"))

    def time_of_day_of(self, instant: int) -> str:
        """Day part ("Morning", ...) of an instant."""
        return str(self.rollup(instant, "timeOfDay"))

    def matches(self, instant: int, level: str, member: Hashable) -> bool:
        """True when the instant rolls up to ``member`` at ``level``.

        Unregistered instants match nothing (rather than raising): the MOFT
        may contain samples outside the populated time window and those
        simply fail every temporal constraint.
        """
        return self.try_rollup(instant, level) == member

    def instants_where(self, level: str, member: Hashable) -> Set[int]:
        """All instants rolling up to ``member`` at ``level``.

        This inverts the rollup function — the evaluator uses it to push
        temporal constraints into MOFT scans.
        """
        return {
            t
            for t in self.instants
            if self.try_rollup(t, level) == member
        }

    def span(self, level: str, member: Hashable) -> int:
        """Number of instants covered by ``member`` at ``level``.

        The running query divides the number of contributing samples by the
        *time span* of "the morning" (Remark 1: three hours); this method
        provides that denominator.
        """
        count = len(self.instants_where(level, member))
        if count == 0:
            raise RollupError(
                f"no instants roll up to {member!r} at level {level!r}"
            )
        return count

    def check_consistency(self) -> None:
        """Validate totality/path-independence of all time rollups."""
        self.instance.check_consistency()
