"""Calendar helpers backing the Time dimension.

The paper keeps time instants abstract (``timeId`` values, rational in
theory, integers from sampling in practice) and reaches calendar concepts
through rollup functions: ``R^{timeOfDay}_{timeId}(t) = "Morning"``,
``R^{dayOfWeek}_{timeId}(t) = "Wednesday"`` and so on.  This module supplies
the concrete calendar arithmetic those rollups need.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta
from typing import Dict, List, Tuple

from repro.errors import SchemaError

#: Weekday names indexed by :meth:`datetime.date.weekday` (Monday = 0).
DAY_NAMES = (
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
    "Sunday",
)

#: The day-part categories used by the paper's example queries.
TIME_OF_DAY_NAMES = ("Night", "Morning", "Afternoon", "Evening")

#: Default hour-of-day boundaries for the day parts, as half-open ranges.
DEFAULT_DAY_PARTS: Dict[str, Tuple[int, int]] = {
    "Night": (0, 6),
    "Morning": (6, 12),
    "Afternoon": (12, 18),
    "Evening": (18, 24),
}


def time_of_day_for_hour(
    hour: int, day_parts: Dict[str, Tuple[int, int]] | None = None
) -> str:
    """Return the day-part name containing the given hour of day."""
    if not 0 <= hour <= 23:
        raise SchemaError(f"hour of day out of range: {hour}")
    parts = day_parts or DEFAULT_DAY_PARTS
    for name, (lo, hi) in parts.items():
        if lo <= hour < hi:
            return name
    raise SchemaError(f"hour {hour} not covered by the day-part table")


def day_of_week_name(moment: datetime) -> str:
    """Return the weekday name of a datetime."""
    return DAY_NAMES[moment.weekday()]


def type_of_day(moment: datetime) -> str:
    """Classify a datetime as Weekday or Weekend."""
    return "Weekend" if moment.weekday() >= 5 else "Weekday"


@dataclass(frozen=True)
class InstantMapping:
    """Affine mapping from integer ``timeId`` instants to wall-clock time.

    Instant ``t`` denotes ``epoch + t * step``.  The mapping is the bridge
    between the MOFT's abstract instants and the Time dimension's calendar
    levels.
    """

    epoch: datetime
    step: timedelta

    def __post_init__(self) -> None:
        if self.step <= timedelta(0):
            raise SchemaError("instant step must be positive")

    def to_datetime(self, instant: int) -> datetime:
        """Return the wall-clock moment of an instant."""
        return self.epoch + instant * self.step

    def from_datetime(self, moment: datetime) -> int:
        """Return the instant whose interval contains ``moment``."""
        delta = moment - self.epoch
        return int(delta / self.step)

    def instants_between(self, start: datetime, end: datetime) -> List[int]:
        """Return all instants whose moments fall in ``[start, end)``."""
        if end <= start:
            return []
        first = self.from_datetime(start)
        while self.to_datetime(first) < start:
            first += 1
        instants = []
        t = first
        while self.to_datetime(t) < end:
            instants.append(t)
            t += 1
        return instants


def hourly(epoch: datetime) -> InstantMapping:
    """Mapping where each instant is one hour (the paper's bus example)."""
    return InstantMapping(epoch, timedelta(hours=1))


def every_minutes(epoch: datetime, minutes: int) -> InstantMapping:
    """Mapping where each instant is ``minutes`` minutes."""
    if minutes <= 0:
        raise SchemaError("minutes must be positive")
    return InstantMapping(epoch, timedelta(minutes=minutes))
