"""The Time dimension: calendar arithmetic plus OLAP rollups over instants."""

from repro.temporal.calendar import (
    DAY_NAMES,
    DEFAULT_DAY_PARTS,
    TIME_OF_DAY_NAMES,
    InstantMapping,
    day_of_week_name,
    every_minutes,
    hourly,
    time_of_day_for_hour,
    type_of_day,
)
from repro.temporal.timedim import (
    TIME_SCHEMA_EDGES,
    TimeDimension,
    time_dimension_schema,
)

__all__ = [
    "DAY_NAMES",
    "DEFAULT_DAY_PARTS",
    "TIME_OF_DAY_NAMES",
    "InstantMapping",
    "day_of_week_name",
    "every_minutes",
    "hourly",
    "time_of_day_for_hour",
    "type_of_day",
    "TIME_SCHEMA_EDGES",
    "TimeDimension",
    "time_dimension_schema",
]
