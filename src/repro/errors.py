"""Shared exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subsystems define
narrower types here (rather than per-module) so that cross-layer code, e.g.
the query evaluator calling into geometry and OLAP, can discriminate error
classes without importing implementation modules.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GeometryError(ReproError):
    """Invalid geometric construction or unsupported geometric operation."""


class SchemaError(ReproError):
    """Invalid dimension / fact-table schema definition."""


class InstanceError(ReproError):
    """A dimension or GIS instance violates its schema."""


class RollupError(InstanceError):
    """A rollup function or relation is missing, ambiguous or inconsistent."""


class AggregationError(ReproError):
    """An aggregate operation was applied to incompatible data."""


class QueryError(ReproError):
    """A constraint formula or aggregate query is malformed."""


class EvaluationError(QueryError):
    """A well-formed query could not be evaluated against the instance."""


class PietQLError(ReproError):
    """Base class for Piet-QL language errors."""


class PietQLSyntaxError(PietQLError):
    """The Piet-QL text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int = 1, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class PietQLExecutionError(PietQLError):
    """A parsed Piet-QL query referenced unknown layers, levels or measures."""


class TrajectoryError(ReproError):
    """Invalid trajectory sample or trajectory operation."""


class MoftStorageError(TrajectoryError):
    """A columnar MOFT file or image is unreadable or unwritable.

    Raised by :mod:`repro.mo.storage` for every defect in the on-disk
    columnar format — truncated body, bad magic, unsupported version,
    header/section bounds violations, corrupt per-object index — and on
    save for tables whose object identifiers the format cannot encode.
    The contract is *typed-or-nothing*: a corrupt file surfaces as this
    class, never as a raw ``numpy``/``struct``/``json`` traceback.
    """


class PreAggError(ReproError):
    """A pre-aggregation store cannot be built, updated or queried."""


class IngestError(ReproError):
    """A streaming-ingest submission or snapshot operation is invalid.

    Raised by :mod:`repro.ingest` for malformed sample batches (ragged
    columns, unregistered instants, duplicate ``(oid, t)`` pairs within
    the accepted stream) and for misuse of the version chain (e.g.
    publishing an empty segment).  Late-beyond-watermark samples are
    *not* errors — they are routed to the side channel and counted.
    """


class ServiceError(ReproError):
    """Base class for query-service failures (:mod:`repro.service`)."""


class AdmissionError(ServiceError):
    """A submission was rejected before it reached the job queue.

    Subclasses say *why*; the service CLI maps every admission rejection
    to exit status 2 with a single ``error: ...`` line, same as any
    other typed failure.
    """


class QueueFullError(AdmissionError):
    """The queue's depth cap is reached; the submission was not enqueued."""


class ClientThrottledError(AdmissionError):
    """The submitting client hit its per-client in-flight job cap."""


class JobNotFoundError(ServiceError):
    """No job with the requested id exists in the queue."""


class JobStateError(ServiceError):
    """The job exists but is in the wrong state for the operation.

    E.g. asking for the result of a still-queued job, or cancelling a
    job that a worker already claimed.
    """


class LeaseLostError(ServiceError):
    """A worker tried to act on a job whose lease it no longer holds.

    Raised when a worker reports completion or failure for a job that
    the lease reaper already re-queued (and possibly another worker
    re-claimed).  The late worker's result is discarded — exactly-one
    recorded outcome per attempt chain is the claim-uniqueness
    guarantee.
    """


class JobFailedError(ServiceError):
    """A terminal ``failed``/``dead`` job's result was requested.

    Attributes
    ----------
    error:
        The recorded failure message of the job's last attempt.
    faults:
        The injected-fault trace recorded on the job (empty outside
        fault-injection tests), as human-readable strings.
    """

    def __init__(
        self, message: str, error: "str | None" = None, faults: tuple = ()
    ) -> None:
        super().__init__(message)
        self.error = error
        self.faults = tuple(faults)


class ShardExecutionError(EvaluationError):
    """A sharded query could not produce a verified-complete result.

    Raised by the resilient execution layer (:mod:`repro.parallel`) when a
    shard task fails past its retry/degradation budget, or when the
    result-completeness check finds a shard unaccounted for before the
    merge.  The engine's contract is *exact-or-error*: a partial fan-out
    is never silently merged into an under-counted answer — it surfaces
    here instead.

    Attributes
    ----------
    failures:
        Tuple of per-attempt failure records (``repro.parallel.backends
        .TaskFailure``): which task, which attempt, what went wrong.
    faults:
        The injected-fault trace — the ``repro.faults.FaultSpec`` entries
        of a :class:`~repro.faults.FaultPlan` that actually fired during
        the run (empty outside fault-injection tests).
    """

    def __init__(
        self,
        message: str,
        failures: tuple = (),
        faults: tuple = (),
    ) -> None:
        super().__init__(message)
        self.failures = tuple(failures)
        self.faults = tuple(faults)
