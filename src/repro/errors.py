"""Shared exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subsystems define
narrower types here (rather than per-module) so that cross-layer code, e.g.
the query evaluator calling into geometry and OLAP, can discriminate error
classes without importing implementation modules.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GeometryError(ReproError):
    """Invalid geometric construction or unsupported geometric operation."""


class SchemaError(ReproError):
    """Invalid dimension / fact-table schema definition."""


class InstanceError(ReproError):
    """A dimension or GIS instance violates its schema."""


class RollupError(InstanceError):
    """A rollup function or relation is missing, ambiguous or inconsistent."""


class AggregationError(ReproError):
    """An aggregate operation was applied to incompatible data."""


class QueryError(ReproError):
    """A constraint formula or aggregate query is malformed."""


class EvaluationError(QueryError):
    """A well-formed query could not be evaluated against the instance."""


class PietQLError(ReproError):
    """Base class for Piet-QL language errors."""


class PietQLSyntaxError(PietQLError):
    """The Piet-QL text could not be tokenized or parsed."""

    def __init__(self, message: str, line: int = 1, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class PietQLExecutionError(PietQLError):
    """A parsed Piet-QL query referenced unknown layers, levels or measures."""


class TrajectoryError(ReproError):
    """Invalid trajectory sample or trajectory operation."""


class PreAggError(ReproError):
    """A pre-aggregation store cannot be built, updated or queried."""


class ShardExecutionError(EvaluationError):
    """A sharded query could not produce a verified-complete result.

    Raised by the resilient execution layer (:mod:`repro.parallel`) when a
    shard task fails past its retry/degradation budget, or when the
    result-completeness check finds a shard unaccounted for before the
    merge.  The engine's contract is *exact-or-error*: a partial fan-out
    is never silently merged into an under-counted answer — it surfaces
    here instead.

    Attributes
    ----------
    failures:
        Tuple of per-attempt failure records (``repro.parallel.backends
        .TaskFailure``): which task, which attempt, what went wrong.
    faults:
        The injected-fault trace — the ``repro.faults.FaultSpec`` entries
        of a :class:`~repro.faults.FaultPlan` that actually fired during
        the run (empty outside fault-injection tests).
    """

    def __init__(
        self,
        message: str,
        failures: tuple = (),
        faults: tuple = (),
    ) -> None:
        super().__init__(message)
        self.failures = tuple(failures)
        self.faults = tuple(faults)
