"""The streaming writer: watermarked batches in, query snapshots out.

:class:`StreamingIngestor` turns out-of-order GPS sample batches into
the same world a one-shot batch load would have produced — that
equivalence is the whole contract, pinned by the differential campaign
in ``tests/ingest``.  The moving parts:

**Watermark.**  ``watermark = max event time seen − allowed_lateness``,
monotone by construction.  A sample is *late* when it arrives at or
below the watermark computed from *previously* submitted batches (one
batch can therefore span any time range without marking itself late).
Late samples are never silently dropped: they go to a side channel
(:meth:`StreamingIngestor.late_samples`) and the ``samples_late``
counter, keeping ``samples_ingested + samples_late + samples_buffered
== samples_submitted`` exhaustive at every instant.

**Sealing.**  After the watermark advances, every buffered sample with
``t <= watermark`` is *sealed*: sorted by ``(t, repr(oid))`` into one
delta segment, published through the :class:`~repro.ingest.versioned
.VersionedMoft` chain, and folded into cloned pre-agg stores.  Sealed
regions never reopen — any sample later arriving inside one is late by
the watermark test above, which is exactly what makes each publish a
strict per-object time extension and keeps :meth:`~repro.preagg
.PreAggStore.update` on the pure delta path (no retraction, no
rebuild; ``tests/ingest/test_watermark_properties.py`` asserts this).

**MVCC maintenance.**  Readers pin :meth:`snapshot` — an immutable
bundle of (table, folded stores, lazily built
:class:`~repro.query.region.EvaluationContext`).  The maintainer never
mutates a published store: it clones copy-on-write
(:meth:`~repro.preagg.PreAggStore.clone`), repoints the clone at the
new snapshot table and folds forward, then swaps the snapshot
reference.  A reader mid-query keeps its pinned version; the planner's
identity matching (``store.moft is moft``) guarantees the stores it
routes through describe exactly the table it scans.

**Compaction.**  Every ``compact_every`` flushes the segment chain is
collapsed into one columnar base (``compaction`` stage,
``compactions`` counter).  Compaction publishes a row-identical
snapshot, so it can never change an answer.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import IngestError
from repro.ingest.versioned import MoftSnapshot, VersionedMoft
from repro.mo.moft import MOFT
from repro.obs import PipelineStats
from repro.preagg import PreAggStore
from repro.query.region import EvaluationContext
from repro.temporal.timedim import TimeDimension


@dataclass(frozen=True)
class IngestConfig:
    """Tuning knobs of one streaming ingestor.

    allowed_lateness:
        How far (in event-time units) the watermark trails the newest
        event seen.  ``0.0`` seals every sample as soon as a newer one
        arrives; larger values buffer more but tolerate more disorder.
    compact_every:
        Collapse the segment chain into one base table whenever a flush
        leaves at least this many segments (``0`` disables background
        compaction; :meth:`StreamingIngestor.close` still compacts).
    """

    allowed_lateness: float = 0.0
    compact_every: int = 8

    def __post_init__(self) -> None:
        if not math.isfinite(self.allowed_lateness) or self.allowed_lateness < 0:
            raise IngestError(
                f"allowed_lateness must be finite and >= 0, "
                f"got {self.allowed_lateness!r}"
            )
        if self.compact_every < 0:
            raise IngestError(
                f"compact_every must be >= 0, got {self.compact_every!r}"
            )


@dataclass(frozen=True)
class StoreSpec:
    """One pre-agg store the ingestor maintains across snapshots.

    ``kind`` picks the store flavor: the default geometry kinds build a
    :class:`~repro.preagg.PreAggStore` over the layer's elements of that
    kind; ``kind="poi"`` builds a :class:`~repro.poi.PoiVisitStore` over
    the layer's place-of-interest discs, maintained through the same
    clone-and-fold path (``min_dwell`` applies only there).
    """

    granule_level: str
    layer: str
    kind: str
    min_dwell: float = 0.0

    def __post_init__(self) -> None:
        if self.min_dwell != 0.0 and self.kind != "poi":
            raise IngestError(
                f"min_dwell only applies to POI stores, not kind "
                f"{self.kind!r}"
            )


@dataclass(frozen=True)
class IngestReport:
    """What one :meth:`StreamingIngestor.submit` call did."""

    submitted: int
    ingested: int
    late: int
    buffered: int
    watermark: float
    ordinal: int
    rows: int


class IngestSnapshot:
    """An immutable queryable version: table + folded stores + context.

    Holding the reference pins the version; :meth:`context` builds (and
    caches) an :class:`~repro.query.region.EvaluationContext` with the
    stores registered, so planned queries route through pre-agg exactly
    as they would against a batch-loaded world.
    """

    __slots__ = (
        "ordinal",
        "watermark",
        "moft",
        "stores",
        "_gis",
        "_time",
        "_context",
        "_lock",
    )

    def __init__(
        self,
        ordinal: int,
        watermark: float,
        moft: MOFT,
        stores: Tuple[PreAggStore, ...],
        gis,
        time: TimeDimension,
    ) -> None:
        self.ordinal = ordinal
        self.watermark = watermark
        self.moft = moft
        self.stores = stores
        self._gis = gis
        self._time = time
        self._context: Optional[EvaluationContext] = None
        self._lock = threading.Lock()

    @property
    def rows(self) -> int:
        return len(self.moft)

    def context(self) -> EvaluationContext:
        """The evaluation context of this version (built once, cached)."""
        with self._lock:
            if self._context is None:
                context = EvaluationContext(self._gis, self._time, self.moft)
                for store in self.stores:
                    context.register_preagg(store)
                self._context = context
            return self._context

    def __repr__(self) -> str:
        return (
            f"IngestSnapshot(ordinal={self.ordinal}, rows={self.rows}, "
            f"watermark={self.watermark:g}, stores={len(self.stores)})"
        )


class StreamingIngestor:
    """Accepts out-of-order sample batches; publishes query snapshots.

    Parameters
    ----------
    gis / time:
        The spatial and temporal dimensions queries evaluate against
        (shared by every snapshot — only the fact table versions).
    moft_name:
        Name of the versioned fact table (what query specs reference).
    base:
        Optional pre-loaded MOFT to seed version 0 with (e.g. a
        historical batch load the stream continues from).
    config:
        Watermark and compaction tuning; see :class:`IngestConfig`.
    store_specs:
        Pre-agg stores to maintain incrementally across versions, one
        per ``(granule_level, layer, kind)``.
    obs:
        Receives the ingest vocabulary (see :mod:`repro.obs`).

    Thread safety: any number of threads may call :meth:`submit` /
    :meth:`compact` / :meth:`close` (serialized by an internal lock)
    while readers call :meth:`snapshot` without blocking.
    """

    def __init__(
        self,
        gis,
        time: TimeDimension,
        moft_name: str = "FM",
        base: Optional[MOFT] = None,
        config: Optional[IngestConfig] = None,
        store_specs: Sequence[StoreSpec] = (),
        obs: Optional[PipelineStats] = None,
    ) -> None:
        self.gis = gis
        self.time = time
        self.config = config if config is not None else IngestConfig()
        self.obs = obs if obs is not None else PipelineStats()
        self.chain = VersionedMoft(moft_name, base=base)
        self._lock = threading.RLock()
        # (t, oid, x, y) above the watermark, awaiting their seal.
        self._buffer: List[Tuple[float, Hashable, float, float]] = []
        self._late: List[Tuple[Hashable, float, float, float]] = []
        self._max_t = -math.inf
        self._watermark = -math.inf
        self._closed = False
        self._published = 0
        head = self.chain.head
        table = head.table()
        stores = tuple(
            self._build_store(table, spec) for spec in store_specs
        )
        self._snapshot = IngestSnapshot(
            head.ordinal, self._watermark, table, stores, gis, time
        )
        self._count_snapshot(head)

    def _build_store(self, table: MOFT, spec: StoreSpec):
        """Build the store flavor a spec asks for over one table version."""
        elements = self.gis.layer(spec.layer).elements(spec.kind)
        if spec.kind == "poi":
            from repro.poi import PoiVisitStore

            return PoiVisitStore(
                table,
                self.time,
                spec.granule_level,
                elements,
                layer=spec.layer,
                min_dwell=spec.min_dwell,
                obs=self.obs,
            )
        return PreAggStore(
            table,
            self.time,
            spec.granule_level,
            elements,
            layer=spec.layer,
            kind=spec.kind,
            obs=self.obs,
        )

    # -- reader API ----------------------------------------------------------

    def snapshot(self) -> IngestSnapshot:
        """Pin the current version (atomic reference read, never blocks)."""
        return self._snapshot

    @property
    def watermark(self) -> float:
        return self._watermark

    @property
    def closed(self) -> bool:
        return self._closed

    def late_samples(self) -> Tuple[Tuple[Hashable, float, float, float], ...]:
        """The side channel: every sample routed late, in arrival order."""
        with self._lock:
            return tuple(self._late)

    # -- writer API ----------------------------------------------------------

    def submit(
        self,
        oids: Sequence[Hashable],
        ts: Sequence[float],
        xs: Sequence[float],
        ys: Sequence[float],
    ) -> IngestReport:
        """Route one batch, advance the watermark, seal what it passed.

        Each sample is routed against the watermark as of the *previous*
        batches, then the batch's own event times advance it; samples
        the new watermark passed (this batch's or earlier buffered ones)
        are sealed into one published delta segment and folded into the
        cloned stores.  Returns what happened to the batch.
        """
        with self._lock:
            if self._closed:
                raise IngestError("ingestor is closed; no further batches")
            n = len(ts)
            if not (len(oids) == n == len(xs) == len(ys)):
                raise IngestError(
                    f"ragged sample batch: {len(oids)}/{n}/{len(xs)}/"
                    f"{len(ys)} column lengths"
                )
            self.obs.incr("ingest_batches")
            self.obs.incr("samples_submitted", n)
            late_now = 0
            batch_max = -math.inf
            for oid, t, x, y in zip(oids, ts, xs, ys):
                t, x, y = float(t), float(x), float(y)
                if not (
                    math.isfinite(t) and math.isfinite(x) and math.isfinite(y)
                ):
                    raise IngestError(
                        f"non-finite sample ({oid!r}, {t!r}, {x!r}, {y!r})"
                    )
                if t <= self._watermark:
                    self._late.append((oid, t, x, y))
                    late_now += 1
                else:
                    self._buffer.append((t, oid, x, y))
                    if t > batch_max:
                        batch_max = t
            self.obs.incr("samples_late", late_now)
            if batch_max > self._max_t:
                self._max_t = batch_max
            advanced = self._max_t - self.config.allowed_lateness
            if advanced > self._watermark:
                self._watermark = advanced
            sealed = self._flush_locked()
            self._refresh_gauges()
            return IngestReport(
                submitted=n,
                ingested=sealed,
                late=late_now,
                buffered=len(self._buffer),
                watermark=self._watermark,
                ordinal=self._snapshot.ordinal,
                rows=self._snapshot.rows,
            )

    def compact(self) -> IngestSnapshot:
        """Collapse the segment chain now (also runs automatically)."""
        with self._lock:
            self._compact_locked()
            self._refresh_gauges()
            return self._snapshot

    def close(self) -> IngestSnapshot:
        """End of stream: seal every buffered sample and compact.

        The watermark jumps to the newest event seen, so nothing stays
        buffered; the final snapshot answers exactly like a one-shot
        batch load of every accepted sample.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return self._snapshot
            self._closed = True
            if self._buffer:
                self._watermark = max(self._watermark, self._max_t)
                self._flush_locked()
            self._compact_locked()
            self._refresh_gauges()
            return self._snapshot

    # -- internals (lock held) -----------------------------------------------

    def _flush_locked(self) -> int:
        """Seal buffered samples the watermark passed; publish the fold."""
        watermark = self._watermark
        ready = [s for s in self._buffer if s[0] <= watermark]
        if not ready:
            return 0
        ready.sort(key=lambda s: (s[0], repr(s[1])))
        with self.obs.stage("ingest_fold"):
            snap = self.chain.publish(
                [s[1] for s in ready],
                [s[0] for s in ready],
                [s[2] for s in ready],
                [s[3] for s in ready],
            )
            self._fold_and_swap(snap)
        self._buffer = [s for s in self._buffer if s[0] > watermark]
        self.obs.incr("samples_ingested", len(ready))
        self.obs.incr("ingest_flushes")
        if (
            self.config.compact_every
            and len(snap.segments) >= self.config.compact_every
        ):
            self._compact_locked()
        return len(ready)

    def _compact_locked(self) -> None:
        if len(self.chain.head.segments) <= 1:
            return
        with self.obs.stage("compaction"):
            snap = self.chain.compact()
            self._fold_and_swap(snap)
        self.obs.incr("compactions")

    def _fold_and_swap(self, snap: MoftSnapshot) -> None:
        """Clone stores onto a new snapshot table, fold, swap the bundle."""
        table = snap.table()
        stores = tuple(
            store.clone(moft=table) for store in self._snapshot.stores
        )
        for store in stores:
            store.update()
        self._snapshot = IngestSnapshot(
            snap.ordinal, self._watermark, table, stores, self.gis, self.time
        )
        self._count_snapshot(snap)

    def _count_snapshot(self, snap: MoftSnapshot) -> None:
        self._published += 1
        self.obs.gauge("snapshot_count", self._published)
        self.obs.gauge("moft_segments", len(snap.segments))

    def _refresh_gauges(self) -> None:
        self.obs.gauge("samples_buffered", len(self._buffer))
        lag = (
            self._max_t - self._watermark
            if math.isfinite(self._max_t) and math.isfinite(self._watermark)
            else 0.0
        )
        self.obs.gauge("watermark_lag", lag)

    def __repr__(self) -> str:
        return (
            f"StreamingIngestor({self.chain.name!r}, "
            f"watermark={self._watermark:g}, "
            f"buffered={len(self._buffer)}, late={len(self._late)}, "
            f"ordinal={self._snapshot.ordinal})"
        )


__all__ = [
    "IngestConfig",
    "IngestReport",
    "IngestSnapshot",
    "StoreSpec",
    "StreamingIngestor",
]
