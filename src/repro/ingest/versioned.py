"""Immutable-snapshot MVCC version chain over the columnar MOFT.

The MOFT is append-only, but *in-place* appends are invisible to
concurrent readers only if they tolerate torn state: a reader iterating
``as_arrays()`` while a writer extends the columns may see a row count
from before the append and cached arrays from after it.  The streaming
writer therefore never mutates a published table.  Instead it keeps a
**version chain** of immutable snapshots:

* a :class:`MoftSnapshot` is one published version — an ordered tuple of
  frozen *segments* (the base table plus one delta segment per flush)
  with a lazily concatenated columnar view (:meth:`MoftSnapshot.table`);
* :class:`VersionedMoft` owns the chain head.  Publishing appends a new
  segment and swaps the head reference atomically under the writer
  lock; readers pin a snapshot by simply holding the reference — there
  is nothing to unpin, the garbage collector retires old versions when
  the last reader drops them.

Two invariants make the chain cheap to maintain downstream:

**Row-prefix extension.**  Segment order is publication order and
:meth:`MOFT.concat` preserves row order, so every snapshot's table
starts with the previous snapshot's rows, in the same positions.  The
pre-agg maintainer exploits this: a store built against version *k*
can be cloned, repointed at version *k+1*'s table, and folded forward
with :meth:`~repro.preagg.PreAggStore.update` — the appended rows are
exactly ``rows[built:]``.

**Compaction preserves the row sequence.**  :meth:`VersionedMoft
.compact` replaces many segments by their one concatenated table.  The
resulting snapshot is row-for-row identical to its predecessor (same
``rows``, same order, new ``ordinal``), so compaction can never change
a query answer — the differential campaign in ``tests/ingest`` pins
this.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence, Tuple

from repro.errors import IngestError
from repro.mo.moft import MOFT


class MoftSnapshot:
    """One immutable published version of the versioned table.

    Attributes
    ----------
    ordinal:
        Publication sequence number, unique per chain and monotone over
        *every* publish (appends and compactions alike) — the version
        identity concurrency tests match answers against.
    rows:
        Total row count across segments.
    segments:
        The frozen MOFT segments, in publication order.  Never mutate
        them — every downstream guarantee rests on their immutability.
    """

    __slots__ = ("name", "ordinal", "rows", "segments", "_table", "_lock")

    def __init__(
        self, name: str, ordinal: int, segments: Sequence[MOFT]
    ) -> None:
        self.name = name
        self.ordinal = int(ordinal)
        self.segments: Tuple[MOFT, ...] = tuple(segments)
        self.rows = sum(len(segment) for segment in self.segments)
        self._table: Optional[MOFT] = None
        self._lock = threading.Lock()

    def table(self) -> MOFT:
        """The snapshot's columnar view (lazily concatenated, cached).

        Single-segment snapshots (a fresh base, or any post-compaction
        snapshot) return the segment itself — zero copies.  The result
        must be treated as immutable.
        """
        with self._lock:
            if self._table is None:
                if not self.segments:
                    self._table = MOFT(self.name)
                elif len(self.segments) == 1:
                    self._table = self.segments[0]
                else:
                    # Segments were validated on construction and cover
                    # disjoint (oid, t) regions (the ingestor seals each
                    # sample exactly once), so skip re-validation.
                    self._table = MOFT.concat(
                        self.segments, name=self.name, validate=False
                    )
            return self._table

    def save(self, path, include_index: bool = True) -> int:
        """Persist this version as one columnar file; returns the bytes.

        The snapshot is immutable, so the file is a faithful, replayable
        capture of exactly this version — ``MOFT.load`` brings it back
        query-ready (mmap, per-object index prefilled) regardless of how
        many delta segments the live chain had.
        """
        return self.table().save(path, include_index=include_index)

    def __repr__(self) -> str:
        return (
            f"MoftSnapshot({self.name!r}, ordinal={self.ordinal}, "
            f"rows={self.rows}, segments={len(self.segments)})"
        )


class VersionedMoft:
    """Writer-owned head of a :class:`MoftSnapshot` chain.

    One writer at a time publishes (the internal lock serializes
    concurrent publishers); any number of readers call :meth:`head` and
    keep using the returned snapshot for as long as they like.
    """

    def __init__(self, name: str = "FM", base: Optional[MOFT] = None) -> None:
        self.name = name
        self._lock = threading.Lock()
        segments: Tuple[MOFT, ...] = ()
        if base is not None and len(base):
            segments = (base,)
        self._head = MoftSnapshot(name, 0, segments)

    @property
    def head(self) -> MoftSnapshot:
        """The current snapshot (atomic read; hold it to pin the version)."""
        return self._head

    def publish(
        self, oids: Sequence, ts: Sequence, xs: Sequence, ys: Sequence
    ) -> MoftSnapshot:
        """Append one delta segment and publish the successor snapshot.

        The segment is validated on construction (equal column lengths,
        unique ``(oid, t)`` within the segment); cross-segment
        uniqueness is the caller's contract — the streaming ingestor
        guarantees it by sealing each accepted sample exactly once.
        Raises :class:`~repro.errors.IngestError` on an empty or
        malformed segment.
        """
        if not len(ts):
            raise IngestError("refusing to publish an empty delta segment")
        try:
            segment = MOFT.from_columns(
                oids, ts, xs, ys, name=self.name, validate=True
            )
        except Exception as exc:
            raise IngestError(f"malformed delta segment: {exc}") from exc
        with self._lock:
            head = self._head
            self._head = MoftSnapshot(
                self.name, head.ordinal + 1, head.segments + (segment,)
            )
            return self._head

    def compact(self) -> MoftSnapshot:
        """Collapse the head's segments into one columnar base table.

        Publishes a snapshot that is row-for-row identical to the
        current head but holds a single segment, so later
        :meth:`MoftSnapshot.table` calls on its successors concatenate
        one long base plus a few short deltas instead of the full flush
        history.  A no-op (returning the unchanged head) when the head
        already has at most one segment.
        """
        with self._lock:
            head = self._head
            if len(head.segments) <= 1:
                return head
            table = head.table()
            compacted = MoftSnapshot(self.name, head.ordinal + 1, (table,))
            # Reuse the already-materialized view rather than re-concat.
            compacted._table = table
            self._head = compacted
            return self._head

    def __repr__(self) -> str:
        head = self._head
        return (
            f"VersionedMoft({self.name!r}, ordinal={head.ordinal}, "
            f"rows={head.rows}, segments={len(head.segments)})"
        )


__all__ = ["MoftSnapshot", "VersionedMoft"]
