"""Streaming ingestion: watermarked writes over an MVCC snapshot chain.

See ``docs/ingest.md`` for the full semantics.  The public surface:

* :class:`VersionedMoft` / :class:`MoftSnapshot` — the immutable
  version chain of the columnar fact table;
* :class:`StreamingIngestor` — the watermark-driven writer, with
  :class:`IngestConfig` (allowed lateness, compaction cadence),
  :class:`StoreSpec` (which pre-agg stores to maintain) and
  :class:`IngestSnapshot` (what readers pin);
* :class:`IngestReport` — the per-batch accounting ``submit`` returns.
"""

from repro.ingest.ingestor import (
    IngestConfig,
    IngestReport,
    IngestSnapshot,
    StoreSpec,
    StreamingIngestor,
)
from repro.ingest.versioned import MoftSnapshot, VersionedMoft

__all__ = [
    "IngestConfig",
    "IngestReport",
    "IngestSnapshot",
    "MoftSnapshot",
    "StoreSpec",
    "StreamingIngestor",
    "VersionedMoft",
]
