"""Exact stop/move segmentation of trajectories against POI discs.

A *stop* is a maximal time interval during which the (linearly
interpolated) trajectory stays inside one POI's closed disc and whose
duration is at least ``min_dwell``; *moves* are the gaps between stops.
The decomposition follows the SMoT scheme of the follow-up paper: scan
candidate in-disc intervals in time order, commit the earliest one long
enough, and resume scanning from its exit — an object is never at two
places at once, and the first place entered wins the overlap.

Everything is exact clipped arithmetic: the in-disc test solves
``|p0 + w*d - c|^2 = r^2`` per trajectory piece through the batched disc
kernel (:func:`repro.geometry.kernels.disc_clip_batch`), so dwell
attribution is bit-reproducible and identical across the serial,
sharded and pre-aggregated query paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import GeometryError, TrajectoryError
from repro.geometry.kernels import disc_clip_batch
from repro.geometry.point import Point
from repro.geometry.poi import Poi
from repro.mo.trajectory import LinearInterpolationTrajectory, TrajectorySample

#: Episode kinds.
STOP = "stop"
MOVE = "move"


@dataclass(frozen=True)
class Episode:
    """One stop or move of a segmented trajectory.

    ``poi`` is the POI id for stops and ``None`` for moves.  ``start``
    and ``end`` are event times; episodes returned by
    :func:`segment_stops_moves` tile ``[t_min, t_max]`` exactly and
    alternate between the two kinds (zero-length moves appear only
    between back-to-back stops).
    """

    kind: str
    start: float
    end: float
    poi: Optional[Hashable] = None

    def __post_init__(self) -> None:
        if self.kind not in (STOP, MOVE):
            raise TrajectoryError(f"unknown episode kind {self.kind!r}")
        if self.end < self.start:
            raise TrajectoryError(
                f"episode ends before it starts: [{self.start}, {self.end}]"
            )

    @property
    def dwell(self) -> float:
        return self.end - self.start

    @property
    def is_stop(self) -> bool:
        return self.kind == STOP


_PieceArrays = Tuple[
    np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray
]


def _piece_arrays(
    trajectory: Union[LinearInterpolationTrajectory, TrajectorySample],
) -> Tuple[float, float, Optional[_PieceArrays]]:
    """Normalize a trajectory to ``(t_min, t_max, piece arrays)``."""
    if isinstance(trajectory, LinearInterpolationTrajectory):
        sample = trajectory.sample
    elif isinstance(trajectory, TrajectorySample):
        sample = trajectory
    else:
        raise TrajectoryError(
            "segmentation expects a TrajectorySample or "
            f"LinearInterpolationTrajectory, got {type(trajectory).__name__}"
        )
    points = list(sample)
    if not points:
        raise TrajectoryError("cannot segment an empty trajectory")
    ts = np.array([p[0] for p in points], dtype=np.float64)
    xs = np.array([p[1] for p in points], dtype=np.float64)
    ys = np.array([p[2] for p in points], dtype=np.float64)
    if len(points) == 1:
        return float(ts[0]), float(ts[0]), None
    return (
        float(ts[0]),
        float(ts[-1]),
        (ts[:-1], ts[1:], xs[:-1], ys[:-1], xs[1:], ys[1:]),
    )


def _disc_of(geometry: Union[Poi, Point], radius: Optional[float]) -> Tuple[float, float, float]:
    """Resolve ``(cx, cy, r)`` for one POI entry.

    ``Poi`` values carry their own radius; bare ``Point`` centers take
    the shared ``radius`` argument (which may be ``math.inf`` — the
    degenerate all-covering disc).
    """
    if isinstance(geometry, Poi):
        return (geometry.center.x, geometry.center.y, geometry.radius)
    if isinstance(geometry, Point):
        if radius is None:
            raise GeometryError(
                "a bare Point POI needs an explicit radius"
            )
        r = float(radius)
        if math.isnan(r) or r <= 0.0:
            raise GeometryError(f"POI radius must be > 0, got {r!r}")
        return (geometry.x, geometry.y, r)
    raise GeometryError(
        f"POI geometry must be Poi or Point, got {type(geometry).__name__}"
    )


def _merged_intervals(
    pieces: _PieceArrays, cx: float, cy: float, r: float, obs=None
) -> List[Tuple[float, float]]:
    """Maximal positive-length in-disc time intervals of one trajectory."""
    t0s, t1s, x0s, y0s, x1s, y1s = pieces
    lo, hi = disc_clip_batch(cx, cy, r, x0s, y0s, x1s, y1s, obs=obs)
    dts = t1s - t0s
    out: List[Tuple[float, float]] = []
    for i in np.nonzero(hi > lo)[0]:
        # Clamp endpoints that hit a piece boundary to the *exact* piece
        # times so adjacency across pieces is exact-equality, never a
        # tolerance test.
        li, hi_i = float(lo[i]), float(hi[i])
        t0, t1, dt = float(t0s[i]), float(t1s[i]), float(dts[i])
        a = t0 if li == 0.0 else t0 + li * dt
        b = t1 if hi_i == 1.0 else t0 + hi_i * dt
        if b <= a:
            continue
        if out and a == out[-1][1]:
            out[-1] = (out[-1][0], b)
        else:
            out.append((a, b))
    return out


def poi_stop_intervals(
    trajectory: Union[LinearInterpolationTrajectory, TrajectorySample],
    poi: Union[Poi, Point],
    radius: Optional[float] = None,
    obs=None,
) -> List[Tuple[float, float]]:
    """Maximal in-disc intervals of ``trajectory`` at one POI."""
    _, _, pieces = _piece_arrays(trajectory)
    if pieces is None:
        return []
    cx, cy, r = _disc_of(poi, radius)
    return _merged_intervals(pieces, cx, cy, r, obs=obs)


def segment_stops_moves(
    trajectory: Union[LinearInterpolationTrajectory, TrajectorySample],
    pois: Mapping[Hashable, Union[Poi, Point]],
    radius: Optional[float] = None,
    min_dwell: float = 0.0,
    obs=None,
) -> List[Episode]:
    """Decompose a trajectory into an alternating stop/move sequence.

    Parameters
    ----------
    trajectory:
        A :class:`TrajectorySample` or
        :class:`LinearInterpolationTrajectory` (linear interpolation
        between samples is assumed either way).
    pois:
        Mapping ``poi id -> Poi`` (or bare ``Point`` center, in which
        case ``radius`` supplies the disc radius — ``math.inf`` allowed).
    min_dwell:
        Minimum stop duration.  ``0.0`` turns every positive-length
        in-disc interval into a stop; zero-length grazes never count.

    Returns the episode list tiling ``[t_min, t_max]`` exactly.
    Determinism: candidate intervals are scanned in ``(start, end,
    repr(id))`` order, so ties between POIs entered at the same instant
    break by id.
    """
    min_dwell = float(min_dwell)
    if math.isnan(min_dwell) or min_dwell < 0.0:
        raise TrajectoryError(f"min_dwell must be >= 0, got {min_dwell!r}")
    t_min, t_max, pieces = _piece_arrays(trajectory)

    candidates: List[Tuple[float, float, str, Hashable]] = []
    if pieces is not None:
        for gid in sorted(pois, key=repr):
            cx, cy, r = _disc_of(pois[gid], radius)
            for a, b in _merged_intervals(pieces, cx, cy, r, obs=obs):
                candidates.append((a, b, repr(gid), gid))
    candidates.sort(key=lambda c: (c[0], c[1], c[2]))

    # SMoT scan: earliest qualifying interval wins; resume from its exit.
    cursor = t_min
    stops: List[Tuple[float, float, Hashable]] = []
    for a, b, _, gid in candidates:
        start = a if a >= cursor else cursor
        if b <= start:
            continue
        if b - start < min_dwell:
            continue
        stops.append((start, b, gid))
        cursor = b

    episodes: List[Episode] = []
    prev_end = t_min
    for start, end, gid in stops:
        if start > prev_end or episodes:
            # A move fills the gap; zero-length only between two stops.
            episodes.append(Episode(MOVE, prev_end, start))
        episodes.append(Episode(STOP, start, end, poi=gid))
        prev_end = end
    if not episodes or prev_end < t_max:
        episodes.append(Episode(MOVE, prev_end, t_max))
    if obs is not None:
        obs.incr("stop_episodes", len(stops))
    return episodes
