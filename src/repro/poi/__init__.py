"""Places of interest and stop/move trajectory semantics.

The follow-up paper ("Aggregation Languages for Moving Object and Places
of Interest Data", see PAPERS.md) extends the GIS dimension model with
*places of interest* — point features with an influence radius — and a
stop/move view of trajectories: a moving object alternates between
*stops* (dwelling inside a POI disc for at least a minimum duration) and
*moves* (everything in between).  This package provides:

* :func:`segment_stops_moves` — exact stop/move segmentation of a
  linearly-interpolated trajectory against a set of POI discs;
* :class:`PoiVisitStore` — summable per-(POI, granule) visit cells
  (visit counts, exact visitor sets, clipped dwell) with incremental
  maintenance, shard merge and spatial/temporal roll-up.
"""

from repro.poi.segmentation import (
    Episode,
    poi_stop_intervals,
    segment_stops_moves,
)
from repro.poi.store import PoiVisitStore, poi_cells

__all__ = [
    "Episode",
    "PoiVisitStore",
    "poi_cells",
    "poi_stop_intervals",
    "segment_stops_moves",
]
