"""Summable per-(POI, time-granule) visit cells with exact visitor sets.

The POI aggregates of the follow-up paper — visits, distinct visitors,
dwell per POI per granule, top-k by distinct visitors — are *summable*
in the sense of the source paper's Definition 4: each moving object's
contribution decomposes per (POI, granule) cell, cells merge by sum /
set-union, and object-partitioned shards recombine losslessly.
:class:`PoiVisitStore` materializes those cells.

Cell semantics (one stop episode ``[a, b]`` at POI ``g``):

* ``visits``  — counted once, in the granule containing ``a``;
* ``dwell``   — ``b - a`` split exactly over the half-open granule
  windows ``[start_i, start_{i+1})`` it spans (the last window extends
  to ``+inf``), so summing any partition of granules preserves dwell;
* ``visitor`` — the object is a visitor of every cell it received a
  visit or positive clipped dwell in.

Byte-reproducibility: all state is kept *per object*; read methods fold
objects in sorted-``repr`` order, so the serial scan, shard-merged and
incrementally-updated stores produce identical floats and identical
canonical JSON (pinned by ``tests/poi/test_poi_differential.py``).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PreAggError
from repro.mo.moft import MOFT
from repro.poi.segmentation import segment_stops_moves
from repro.temporal.timedim import TimeDimension

#: Per-object cell contribution: ``{(gid, code): (visits, dwell)}``.
ObjectCells = Dict[Tuple[Hashable, int], Tuple[int, float]]


def _object_cells(
    moft: MOFT,
    oid: Hashable,
    starts: np.ndarray,
    pois: Mapping[Hashable, object],
    radius: Optional[float],
    min_dwell: float,
    obs=None,
) -> ObjectCells:
    """One object's visit/dwell contributions, in time order."""
    sample = moft.trajectory_sample(oid)
    episodes = segment_stops_moves(
        sample, pois, radius=radius, min_dwell=min_dwell, obs=obs
    )
    cells: ObjectCells = {}
    n = starts.shape[0]
    for episode in episodes:
        if not episode.is_stop:
            continue
        a, b, gid = episode.start, episode.end, episode.poi
        code = int(np.searchsorted(starts, a, side="right")) - 1
        if code < 0:
            code = 0
        visits, dwell = cells.get((gid, code), (0, 0.0))
        cells[(gid, code)] = (visits + 1, dwell)
        # Split [a, b] exactly over granule windows from `code` onward.
        i = code
        while i < n:
            win_start = float(starts[i]) if i > code else a
            win_end = float(starts[i + 1]) if i + 1 < n else math.inf
            piece = min(b, win_end) - max(a, win_start)
            if piece > 0.0:
                visits, dwell = cells.get((gid, i), (0, 0.0))
                cells[(gid, i)] = (visits, dwell + piece)
            if win_end >= b:
                break
            i += 1
    return cells


def poi_cells(
    moft: MOFT,
    time: TimeDimension,
    granule_level: str,
    pois: Mapping[Hashable, object],
    min_dwell: float = 0.0,
    radius: Optional[float] = None,
    oids: Optional[Sequence[Hashable]] = None,
    obs=None,
) -> Dict[Hashable, ObjectCells]:
    """Per-object POI cells of ``moft`` — the shared scan primitive.

    The serial query path calls this directly; shards call it with their
    object subset; :class:`PoiVisitStore` materializes its result.  One
    object's cells never depend on another's, which is what makes the
    three strategies byte-identical.
    """
    partition = time.granules(granule_level)
    starts = np.asarray(partition.starts, dtype=np.float64)
    wanted = list(moft.objects()) if oids is None else list(oids)
    out: Dict[Hashable, ObjectCells] = {}
    total_visits = 0
    for oid in sorted(wanted, key=repr):
        cells = _object_cells(
            moft, oid, starts, pois, radius, min_dwell, obs=obs
        )
        if cells:
            out[oid] = cells
            total_visits += sum(v for v, _ in cells.values())
    if obs is not None and total_visits:
        obs.incr("poi_visits", total_visits)
    return out


class PoiVisitStore:
    """Materialized POI visit cells over one MOFT.

    Mirrors the :class:`~repro.preagg.store.PreAggStore` lifecycle —
    build, :meth:`is_stale`, incremental :meth:`update` on append,
    :meth:`clone` for MVCC streaming snapshots, classmethod
    :meth:`merge` with completeness checks — so the streaming ingestor
    and the evaluation context treat both store kinds uniformly.
    """

    def __init__(
        self,
        moft: MOFT,
        time: TimeDimension,
        granule_level: str,
        pois: Mapping[Hashable, object],
        *,
        layer: Optional[str] = None,
        kind: str = "poi",
        min_dwell: float = 0.0,
        radius: Optional[float] = None,
        name: Optional[str] = None,
        obs=None,
        build: bool = True,
    ) -> None:
        if not pois:
            raise PreAggError("a POI store needs at least one POI")
        self.moft = moft
        self.time = time
        self.granule_level = granule_level
        self.pois = dict(pois)
        self.layer = layer
        self.kind = kind
        self.min_dwell = float(min_dwell)
        self.radius = radius
        self.name = name if name is not None else f"poi_{granule_level}"
        self.obs = obs
        self.partition = time.granules(granule_level)
        self.gids = tuple(sorted(self.pois, key=repr))
        self._gid_set = frozenset(self.pois)
        self._per_object: Dict[Hashable, ObjectCells] = {}
        self._built_version: Optional[int] = None
        self._built_rows = 0
        if build:
            self._rebuild()

    # -- build / maintenance --------------------------------------------------

    def _scan(self, oids: Optional[Sequence[Hashable]] = None) -> Dict[Hashable, ObjectCells]:
        return poi_cells(
            self.moft,
            self.time,
            self.granule_level,
            self.pois,
            min_dwell=self.min_dwell,
            radius=self.radius,
            oids=oids,
            obs=self.obs,
        )

    def _rebuild(self) -> None:
        self._per_object = self._scan()
        self._built_version = self.moft.version
        self._built_rows = len(self.moft)

    def is_stale(self) -> bool:
        return self.moft.version != self._built_version

    def update(self) -> str:
        """Fold appended rows in; returns ``fresh``/``delta``/``rebuild``.

        A *stop is not prefix-decomposable*: new samples can extend (or
        create) an episode that earlier rows alone did not justify, so
        the delta path re-segments every object that gained rows — whole
        trajectories, but only the touched objects.  Rows vanishing (a
        non-append mutation) forces a full rebuild.
        """
        if not self.is_stale():
            return "fresh"
        rows = len(self.moft)
        if rows < self._built_rows:
            self._rebuild()
            if self.obs is not None:
                self.obs.incr("poi_store_updates")
            return "rebuild"
        touched = sorted(
            set(self.moft.oid_column()[self._built_rows :]), key=repr
        )
        fresh = self._scan(oids=touched)
        per_object = dict(self._per_object)
        for oid in touched:
            cells = fresh.get(oid)
            if cells:
                per_object[oid] = cells
            else:
                per_object.pop(oid, None)
        self._per_object = per_object
        self._built_version = self.moft.version
        self._built_rows = rows
        if self.obs is not None:
            self.obs.incr("poi_store_updates")
        return "delta"

    def clone(self, moft: Optional[MOFT] = None) -> "PoiVisitStore":
        """Copy-on-write duplicate, optionally repointed at a new MOFT.

        Per-object cell dicts are immutable after build (updates rebind,
        never mutate), so the clone shares them until its own update.
        ``moft`` must extend this store's table as a row prefix — the
        :class:`~repro.ingest.VersionedMoft` publish guarantee.
        """
        out = PoiVisitStore(
            moft if moft is not None else self.moft,
            self.time,
            self.granule_level,
            self.pois,
            layer=self.layer,
            kind=self.kind,
            min_dwell=self.min_dwell,
            radius=self.radius,
            name=self.name,
            obs=self.obs,
            build=False,
        )
        out._per_object = dict(self._per_object)
        out._built_version = self._built_version
        out._built_rows = self._built_rows
        if moft is not None and moft is not self.moft:
            # The snapshot table carries its own version counter: a
            # row-identical repoint (compaction) is fresh at the new
            # version; an extension is stale but keeps ``_built_rows``,
            # so the next update() walks the delta path, not a rebuild.
            out._built_version = (
                moft.version if len(moft) == self._built_rows else None
            )
        return out

    @classmethod
    def merge(
        cls,
        stores: Sequence["PoiVisitStore"],
        moft: MOFT,
    ) -> "PoiVisitStore":
        """Recombine object-partitioned shard stores over the full MOFT.

        Completeness checks (the shard contract): every shard shares the
        cell schema, shard object sets are disjoint, and their union
        plus row total covers ``moft`` exactly — a dropped or duplicated
        shard fails loudly instead of under-counting.
        """
        if not stores:
            raise PreAggError("cannot merge zero POI stores")
        head = stores[0]
        for other in stores[1:]:
            if (
                other.granule_level != head.granule_level
                or other.min_dwell != head.min_dwell
                or other.radius != head.radius
                or other.gids != head.gids
                or other.time is not head.time
            ):
                raise PreAggError(
                    "POI shard stores disagree on cell schema "
                    "(granule/min_dwell/radius/pois/time)"
                )
        seen: Dict[Hashable, int] = {}
        rows = 0
        for store in stores:
            rows += len(store.moft)
            for oid in store.moft.objects():
                seen[oid] = seen.get(oid, 0) + 1
        duplicates = sorted((o for o, n in seen.items() if n > 1), key=repr)
        if duplicates:
            raise PreAggError(
                f"POI shards overlap on objects {duplicates[:5]!r}"
            )
        missing = sorted(set(moft.objects()) - set(seen), key=repr)
        if missing or rows != len(moft):
            raise PreAggError(
                f"POI shard merge incomplete: {len(missing)} objects and "
                f"{len(moft) - rows} rows unaccounted for"
            )
        out = cls(
            moft,
            head.time,
            head.granule_level,
            head.pois,
            layer=head.layer,
            kind=head.kind,
            min_dwell=head.min_dwell,
            radius=head.radius,
            name=head.name,
            obs=head.obs,
            build=False,
        )
        merged: Dict[Hashable, ObjectCells] = {}
        for store in stores:
            merged.update(store._per_object)
        out._per_object = merged
        out._built_version = moft.version
        out._built_rows = len(moft)
        return out

    # -- reads ----------------------------------------------------------------

    def _member(self, code: int) -> Hashable:
        return self.partition.members[code]

    def _fold(self):
        """Yield ``(oid, gid, code, visits, dwell)`` in canonical order."""
        for oid in sorted(self._per_object, key=repr):
            cells = self._per_object[oid]
            for (gid, code) in sorted(cells, key=lambda k: (repr(k[0]), k[1])):
                visits, dwell = cells[(gid, code)]
                yield oid, gid, code, visits, dwell

    def visit_counts(self) -> Dict[Tuple[Hashable, Hashable], int]:
        """``{(poi id, granule member): visit count}`` — non-zero cells."""
        out: Dict[Tuple[Hashable, Hashable], int] = {}
        for _, gid, code, visits, _ in self._fold():
            if visits:
                key = (gid, self._member(code))
                out[key] = out.get(key, 0) + visits
        return out

    def dwell_times(self) -> Dict[Tuple[Hashable, Hashable], float]:
        """``{(poi id, granule member): dwell}`` folded in canonical order."""
        out: Dict[Tuple[Hashable, Hashable], float] = {}
        for _, gid, code, _, dwell in self._fold():
            if dwell:
                key = (gid, self._member(code))
                out[key] = out.get(key, 0.0) + dwell
        return out

    def distinct_visitors(
        self,
    ) -> Dict[Tuple[Hashable, Hashable], Tuple[Hashable, ...]]:
        """``{(poi id, granule member): sorted visitor ids}``."""
        out: Dict[Tuple[Hashable, Hashable], List[Hashable]] = {}
        for oid, gid, code, _, _ in self._fold():
            out.setdefault((gid, self._member(code)), []).append(oid)
        return {key: tuple(oids) for key, oids in out.items()}

    def topk(self, k: int) -> Dict[Hashable, Tuple[Tuple[Hashable, int], ...]]:
        """Top-``k`` POIs by distinct visitors, per granule member.

        Ranks descending by distinct-visitor count, ties broken
        ascending by ``repr(poi id)``; members nobody visited are
        omitted.
        """
        if k < 1:
            raise PreAggError(f"top-k needs k >= 1, got {k}")
        counts: Dict[Hashable, Dict[Hashable, int]] = {}
        for (gid, member), visitors in self.distinct_visitors().items():
            counts.setdefault(member, {})[gid] = len(visitors)
        out: Dict[Hashable, Tuple[Tuple[Hashable, int], ...]] = {}
        for member in self.partition.members:
            ranking = counts.get(member)
            if not ranking:
                continue
            ordered = sorted(
                ranking.items(), key=lambda item: (-item[1], repr(item[0]))
            )
            out[member] = tuple(ordered[:k])
        return out

    # -- rollups / cube -------------------------------------------------------

    def rollup_cells(self, parent_level: str):
        """Temporal roll-up: the same cells at a coarser granule level.

        Returns ``(parent_partition, visits, dwell, visitors)`` dicts
        keyed ``(poi id, parent member)``.
        """
        parent, mapping = self.partition.rollup_codes(self.time, parent_level)
        visits: Dict[Tuple[Hashable, Hashable], int] = {}
        dwell: Dict[Tuple[Hashable, Hashable], float] = {}
        visitors: Dict[Tuple[Hashable, Hashable], List[Hashable]] = {}
        for oid, gid, code, n, d in self._fold():
            key = (gid, parent.members[int(mapping[code])])
            if n:
                visits[key] = visits.get(key, 0) + n
            if d:
                dwell[key] = dwell.get(key, 0.0) + d
            bucket = visitors.setdefault(key, [])
            if not bucket or bucket[-1] != oid:
                bucket.append(oid)
        return (
            parent,
            visits,
            dwell,
            {key: tuple(oids) for key, oids in visitors.items()},
        )

    def rollup_space(self, mapping):
        """Spatial roll-up: every measure folded gid → parent.

        ``mapping`` usually comes from
        :func:`repro.olap.solap.poi_parent_mapping`; returns
        ``(visits, dwell, visitors)`` keyed ``(parent id, member)``.
        """
        from repro.olap.solap import spatial_rollup

        return (
            spatial_rollup(self.visit_counts(), mapping),
            spatial_rollup(self.dwell_times(), mapping),
            spatial_rollup(self.distinct_visitors(), mapping),
        )

    def as_cube(self):
        """Expose the cells as an OLAP cube (granule x POI axes)."""
        from repro.olap.cube import Cube
        from repro.olap.dimension import DimensionInstance, DimensionSchema

        visits = self.visit_counts()
        dwell = self.dwell_times()
        visitors = self.distinct_visitors()
        rows = []
        for (gid, member), oids in visitors.items():
            rows.append(
                {
                    "granule": member,
                    "poi": gid,
                    "visits": visits.get((gid, member), 0),
                    "dwell": dwell.get((gid, member), 0.0),
                    "distinct_visitors": len(oids),
                }
            )
        schema = DimensionSchema(f"{self.name}_poi", [("gid", "layer")])
        instance = DimensionInstance(schema)
        label = self.layer if self.layer is not None else self.name
        for gid in self.gids:
            instance.set_rollup("gid", gid, "layer", label)
        return Cube.from_rows(
            f"{self.name}_cells",
            [
                (
                    "granule",
                    self.time.instance.schema.name,
                    self.granule_level,
                    self.time.instance,
                ),
                ("poi", f"{self.name}_poi", "gid", instance),
            ],
            ("visits", "dwell", "distinct_visitors"),
            rows,
        )

    # -- introspection --------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        cells = set()
        visits = 0
        for _, gid, code, n, _ in self._fold():
            cells.add((gid, code))
            visits += n
        return {
            "name": self.name,
            "granule_level": self.granule_level,
            "pois": len(self.pois),
            "objects": len(self._per_object),
            "cells": len(cells),
            "visits": visits,
            "min_dwell": self.min_dwell,
            "stale": self.is_stale(),
        }

    def __repr__(self) -> str:
        return (
            f"PoiVisitStore({self.name!r}, granule={self.granule_level!r}, "
            f"pois={len(self.pois)}, objects={len(self._per_object)})"
        )
