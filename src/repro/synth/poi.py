"""POI layer population and stop-biased movement generators.

Two pieces the POI workload needs from the synthetic city:

* :func:`install_city_pois` — turn every school and store node of a
  :class:`~repro.synth.city.SyntheticCity` into a place-of-interest disc
  on the ``Lp`` layer (deterministic: derived from the node geometry,
  no randomness);
* :func:`stop_biased_moft` — a movement model that *actually stops*:
  objects hop between POI centers and dwell there for several instants
  (with sub-radius jitter), so stop/move segmentation finds real
  episodes instead of the near-zero dwell a random-waypoint walker
  produces.

Deterministic in ``seed``; ``rng`` overrides it, as everywhere in
:mod:`repro.synth`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Sequence

from repro.errors import SchemaError
from repro.geometry.poi import Poi
from repro.gis import NODE, POI
from repro.mo.moft import MOFT
from repro.synth.city import SyntheticCity
from repro.synth.movement import _validate
from repro.synth.rng import RandomLike, resolve_rng

#: Category assigned per source layer when installing city POIs.
_CITY_POI_SOURCES = (("Ls", "school"), ("Lsto", "store"))


def install_city_pois(
    city: SyntheticCity, radius: float | None = None
) -> Dict[str, Poi]:
    """Populate the city's ``Lp`` layer with discs at schools and stores.

    Every node of the ``Ls`` (schools) and ``Lsto`` (stores) layers
    becomes one POI ``poi_<node gid>`` with ``place`` member
    ``pl_<node gid>`` rolling up to its source category.  ``radius``
    defaults to a quarter block.  Returns ``{poi gid: disc}``.
    """
    if radius is None:
        radius = city.config.block_size / 4.0
    radius = float(radius)
    if radius <= 0:
        raise SchemaError(f"POI radius must be positive, got {radius!r}")
    gis = city.gis
    places = gis.application_instance("Places")
    out: Dict[str, Poi] = {}
    for layer_name, category in _CITY_POI_SOURCES:
        nodes = gis.layer(layer_name).elements(NODE)
        for node_gid in sorted(nodes, key=repr):
            poi = Poi(nodes[node_gid], radius)
            gid = f"poi_{node_gid}"
            member = f"pl_{node_gid}"
            gis.add_geometry("Lp", POI, gid, poi)
            gis.set_alpha("place", member, gid)
            places.set_rollup("place", member, "category", category)
            out[gid] = poi
    if not out:
        raise SchemaError("city has no school or store nodes to promote")
    return out


def stop_biased_moft(
    pois: Mapping[Hashable, Poi] | Sequence[Poi],
    n_objects: int,
    n_instants: int,
    dwell_instants: int = 3,
    travel_instants: int = 2,
    seed: int = 23,
    name: str = "FM",
    oid_prefix: str = "visitor",
    rng: RandomLike = None,
) -> MOFT:
    """Objects hopping between POIs, dwelling ``dwell_instants`` at each.

    Each object repeatedly picks a POI (never the one it is at), travels
    toward it over ``travel_instants`` instants, then sits near its
    center — jittered within half the radius, so every dwell sample is
    strictly inside the disc — for ``dwell_instants`` instants.
    Positions are emitted at integer instants ``0 .. n_instants - 1``.
    """
    _validate(n_objects, n_instants)
    if dwell_instants < 1:
        raise SchemaError("dwell_instants must be >= 1")
    if travel_instants < 1:
        raise SchemaError("travel_instants must be >= 1")
    if isinstance(pois, Mapping):
        discs = [pois[gid] for gid in sorted(pois, key=repr)]
    else:
        discs = list(pois)
    if not discs:
        raise SchemaError("need at least one POI to visit")
    rng = resolve_rng(seed, rng)
    moft = MOFT(name)

    def jittered(disc: Poi) -> tuple:
        r = disc.radius * 0.5 * rng.uniform(0.0, 1.0)
        # Deterministic angle from the same stream; uniform enough.
        angle = rng.uniform(0.0, 6.283185307179586)
        from math import cos, sin

        return (disc.center.x + r * cos(angle), disc.center.y + r * sin(angle))

    for index in range(n_objects):
        oid = f"{oid_prefix}{index}"
        at = rng.randint(0, len(discs) - 1)
        x, y = jittered(discs[at])
        t = 0
        while t < n_instants:
            # Dwell at the current POI.
            for _ in range(dwell_instants):
                if t >= n_instants:
                    break
                moft.add(oid, t, x, y)
                t += 1
            if t >= n_instants:
                break
            # Pick a different POI and travel there linearly.
            if len(discs) > 1:
                nxt = rng.randint(0, len(discs) - 2)
                if nxt >= at:
                    nxt += 1
            else:
                nxt = at
            tx, ty = jittered(discs[nxt])
            for step in range(1, travel_instants + 1):
                if t >= n_instants:
                    break
                w = step / travel_instants
                moft.add(oid, t, x + w * (tx - x), y + w * (ty - y))
                t += 1
            x, y = tx, ty
            at = nxt
    return moft
