"""Explicit random-source threading for the synthetic generators.

The movement simulators and the city builder are used as *fixtures* by
the differential-oracle suite (``tests/parallel``) and the benchmarks:
two oracle runs must see byte-identical worlds, or a mismatch between the
serial and parallel paths could be blamed on the data instead of the
code.  Every generator therefore accepts an ``rng`` argument:

* ``None`` (default) — the legacy ``random.Random(seed)`` stream, kept
  bit-compatible so existing tests and recorded benchmark numbers do not
  move;
* a ``numpy.random.Generator`` — the modern, explicitly-seeded stream;
  equal generator states produce equal worlds, and ``Generator.spawn``
  gives independent streams for multi-fixture setups;
* an ``int`` — shorthand for ``numpy.random.default_rng(rng)``;
* a ``random.Random`` — threaded through unchanged.

:class:`NumpyRandomSource` adapts a NumPy generator to the three methods
the generators draw from (``uniform`` / ``randint`` / ``random``).
"""

from __future__ import annotations

import random
from typing import Union

import numpy as np

from repro.errors import SchemaError

#: Accepted ``rng`` arguments of the synthetic generators.
RandomLike = Union[None, int, random.Random, np.random.Generator]


class NumpyRandomSource:
    """A ``numpy.random.Generator`` behind the ``random.Random`` surface."""

    def __init__(self, generator: np.random.Generator) -> None:
        self.generator = generator

    def uniform(self, low: float, high: float) -> float:
        """A float drawn uniformly from ``[low, high)``."""
        return float(self.generator.uniform(low, high))

    def randint(self, low: int, high: int) -> int:
        """An int drawn uniformly from ``[low, high]`` (both inclusive)."""
        return int(self.generator.integers(low, high + 1))

    def random(self) -> float:
        """A float drawn uniformly from ``[0, 1)``."""
        return float(self.generator.random())

    def __repr__(self) -> str:
        return f"NumpyRandomSource({self.generator!r})"


def resolve_rng(
    seed: int, rng: RandomLike = None
) -> "random.Random | NumpyRandomSource":
    """Return the random source a generator should draw from.

    An explicit ``rng`` wins over ``seed``; ``None`` falls back to the
    legacy ``random.Random(seed)`` stream (bit-compatible with the
    historical behavior of the generators).
    """
    if rng is None:
        return random.Random(seed)
    if isinstance(rng, np.random.Generator):
        return NumpyRandomSource(rng)
    if isinstance(rng, random.Random):
        return rng
    if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
        return NumpyRandomSource(np.random.default_rng(int(rng)))
    raise SchemaError(
        f"rng must be None, an int seed, a random.Random or a "
        f"numpy.random.Generator, got {type(rng).__name__}"
    )
