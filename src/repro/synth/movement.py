"""Moving-object simulators.

"The behavior of all these moving objects is traceable by means of
electronic devices" (Section 1) — these generators play the role of those
devices, emitting MOFT samples ``(Oid, t, x, y)`` for several movement
models:

* :func:`random_waypoint_moft` — the classical random-waypoint model:
  objects pick a destination in the world box, travel at their speed,
  repeat; positions are sampled at every instant (cars, pedestrians);
* :func:`route_following_moft` — objects shuttle along fixed polyline
  routes at constant speed (buses, trams);
* :func:`commuter_moft` — objects move from a southern home to a northern
  work location during a morning window and stay there (commuter traffic);
* :func:`adversarial_moft` — objects whose trajectories avoid a given box
  entirely: every region query over them degenerates to the paper's
  "worst case [where] the whole trajectory must be checked".

All generators are deterministic in their seed, and every one accepts
an explicit ``rng`` (``numpy.random.Generator``, int seed or
``random.Random``; see :mod:`repro.synth.rng`) that overrides ``seed`` —
the hook the differential-oracle suite uses for reproducible worlds.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import SchemaError
from repro.geometry.point import BoundingBox, Point
from repro.geometry.polyline import Polyline
from repro.mo.moft import MOFT
from repro.synth.rng import RandomLike, resolve_rng


def _validate(n_objects: int, n_instants: int) -> None:
    if n_objects < 1:
        raise SchemaError("need at least one object")
    if n_instants < 2:
        raise SchemaError("need at least two instants")


def random_waypoint_moft(
    box: BoundingBox,
    n_objects: int,
    n_instants: int,
    speed: float = 2.0,
    seed: int = 11,
    name: str = "FM",
    oid_prefix: str = "car",
    rng: RandomLike = None,
) -> MOFT:
    """Random-waypoint movement sampled at instants ``0 .. n_instants-1``."""
    _validate(n_objects, n_instants)
    if speed <= 0:
        raise SchemaError("speed must be positive")
    rng = resolve_rng(seed, rng)
    moft = MOFT(name)
    for index in range(n_objects):
        oid = f"{oid_prefix}{index}"
        x = rng.uniform(box.min_x, box.max_x)
        y = rng.uniform(box.min_y, box.max_y)
        target_x = rng.uniform(box.min_x, box.max_x)
        target_y = rng.uniform(box.min_y, box.max_y)
        for t in range(n_instants):
            moft.add(oid, t, x, y)
            remaining = speed
            while remaining > 0:
                dx = target_x - x
                dy = target_y - y
                dist = (dx * dx + dy * dy) ** 0.5
                if dist <= remaining:
                    x, y = target_x, target_y
                    remaining -= dist
                    target_x = rng.uniform(box.min_x, box.max_x)
                    target_y = rng.uniform(box.min_y, box.max_y)
                else:
                    x += dx / dist * remaining
                    y += dy / dist * remaining
                    remaining = 0
    return moft


def route_following_moft(
    routes: Sequence[Polyline],
    objects_per_route: int,
    n_instants: int,
    speed: float = 2.0,
    seed: int = 13,
    name: str = "FM",
    oid_prefix: str = "bus",
    rng: RandomLike = None,
) -> MOFT:
    """Objects shuttling back and forth along fixed routes.

    Each object starts at a random offset along its route and bounces
    between the endpoints at constant speed.
    """
    if not routes:
        raise SchemaError("need at least one route")
    _validate(objects_per_route, n_instants)
    if speed <= 0:
        raise SchemaError("speed must be positive")
    rng = resolve_rng(seed, rng)
    moft = MOFT(name)
    for route_index, route in enumerate(routes):
        length = route.length
        if length <= 0:
            raise SchemaError(f"route {route_index} has zero length")
        for k in range(objects_per_route):
            oid = f"{oid_prefix}{route_index}_{k}"
            offset = rng.uniform(0, length)
            direction = 1.0 if rng.random() < 0.5 else -1.0
            for t in range(n_instants):
                p = route.point_at_distance(offset)
                moft.add(oid, t, float(p.x), float(p.y))
                offset += direction * speed
                while offset > length or offset < 0:
                    if offset > length:
                        offset = 2 * length - offset
                    else:
                        offset = -offset
                    direction = -direction
    return moft


def commuter_moft(
    box: BoundingBox,
    n_objects: int,
    n_instants: int,
    morning_end: int,
    seed: int = 17,
    name: str = "FM",
    oid_prefix: str = "commuter",
    rng: RandomLike = None,
) -> MOFT:
    """South-to-north commuters: travel until ``morning_end``, then park.

    Homes are in the southern third, work places in the northern third;
    each commuter interpolates between them over instants
    ``0 .. morning_end`` and stays at work afterwards.
    """
    _validate(n_objects, n_instants)
    if not 1 <= morning_end < n_instants:
        raise SchemaError("morning_end must lie inside the instant range")
    rng = resolve_rng(seed, rng)
    moft = MOFT(name)
    south_top = box.min_y + box.height / 3
    north_bottom = box.max_y - box.height / 3
    for index in range(n_objects):
        oid = f"{oid_prefix}{index}"
        home = (
            rng.uniform(box.min_x, box.max_x),
            rng.uniform(box.min_y, south_top),
        )
        work = (
            rng.uniform(box.min_x, box.max_x),
            rng.uniform(north_bottom, box.max_y),
        )
        for t in range(n_instants):
            w = min(t / morning_end, 1.0)
            x = home[0] + w * (work[0] - home[0])
            y = home[1] + w * (work[1] - home[1])
            moft.add(oid, t, x, y)
    return moft


def adversarial_moft(
    avoid: BoundingBox,
    n_objects: int,
    n_instants: int,
    margin: float = 5.0,
    seed: int = 19,
    name: str = "FM",
    oid_prefix: str = "ghost",
    rng: RandomLike = None,
) -> MOFT:
    """Objects whose whole trajectories stay strictly outside ``avoid``.

    They wander in a band to the east of the avoided box, so that
    intersection queries against geometries inside the box reject every
    trajectory only after scanning all of its segments — the paper's
    worst case.
    """
    _validate(n_objects, n_instants)
    if margin <= 0:
        raise SchemaError("margin must be positive")
    rng = resolve_rng(seed, rng)
    moft = MOFT(name)
    band_min_x = avoid.max_x + margin
    band_max_x = avoid.max_x + margin * 10
    for index in range(n_objects):
        oid = f"{oid_prefix}{index}"
        for t in range(n_instants):
            moft.add(
                oid,
                t,
                rng.uniform(band_min_x, band_max_x),
                rng.uniform(avoid.min_y, avoid.max_y),
            )
    return moft
