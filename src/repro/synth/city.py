"""A deterministic synthetic city.

The paper's motivating example (Section 1.1) is "a layered representation
of geographic features of a city": neighborhoods (polygons), highways and
streets (polylines), schools, stores and gas stations (points), a river
dividing the city into a northern and a southern part, and a bounding box.
This generator produces exactly that, at configurable scale, with every
layer wired into a :class:`~repro.gis.instance.GISDimensionInstance`:

* ``Ln`` — neighborhoods: a ``cols × rows`` grid of polygon blocks with
  deterministic incomes and populations;
* ``Lc`` — cities: groups of ``city_span × city_span`` blocks, with
  populations summed from their neighborhoods;
* ``Lst`` — streets: the horizontal and vertical grid lines, stored as
  polylines composed of per-block line segments (populating the
  ``line → polyline`` rollup relation of Figure 2);
* ``Lr`` — the river: a polyline meandering along the city's horizontal
  midline;
* ``Ls`` / ``Lsto`` / ``Lg`` — schools, stores, gas stations: nodes placed
  deterministically inside blocks.

Everything derives from ``seed``; equal configs produce equal cities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import SchemaError
from repro.geometry.point import BoundingBox, Point
from repro.geometry.polygon import Polygon
from repro.geometry.polyline import Polyline
from repro.geometry.segment import Segment
from repro.gis import (
    ALL,
    LINE,
    NODE,
    POI,
    POINT,
    POLYGON,
    POLYLINE,
    AttributePlacement,
    GISDimensionInstance,
    GISDimensionSchema,
    LayerHierarchy,
)
from repro.olap.dimension import DimensionSchema
from repro.synth.rng import RandomLike, resolve_rng


@dataclass(frozen=True)
class CityConfig:
    """Parameters of the synthetic city."""

    cols: int = 6
    rows: int = 6
    block_size: float = 10.0
    city_span: int = 3
    schools_per_city: int = 2
    stores_per_city: int = 3
    gas_stations_per_city: int = 1
    income_low: float = 800.0
    income_high: float = 4000.0
    population_low: int = 5_000
    population_high: int = 80_000
    seed: int = 7

    def __post_init__(self) -> None:
        if self.cols < 1 or self.rows < 1:
            raise SchemaError("city needs at least one block")
        if self.block_size <= 0:
            raise SchemaError("block size must be positive")
        if self.city_span < 1:
            raise SchemaError("city span must be >= 1")


def city_schema() -> GISDimensionSchema:
    """The GIS dimension schema of the synthetic city (Figure 2, extended)."""
    hierarchies = [
        LayerHierarchy("Ln", [(POINT, POLYGON), (POLYGON, ALL)]),
        LayerHierarchy("Lc", [(POINT, POLYGON), (POLYGON, ALL)]),
        LayerHierarchy(
            "Lst", [(POINT, LINE), (LINE, POLYLINE), (POLYLINE, ALL)]
        ),
        LayerHierarchy(
            "Lr", [(POINT, LINE), (LINE, POLYLINE), (POLYLINE, ALL)]
        ),
        LayerHierarchy("Ls", [(POINT, NODE), (NODE, ALL)]),
        LayerHierarchy("Lsto", [(POINT, NODE), (NODE, ALL)]),
        LayerHierarchy("Lg", [(POINT, NODE), (NODE, ALL)]),
        # Places of interest (discs); populated by repro.synth.poi.
        LayerHierarchy("Lp", [(POINT, POI), (POI, ALL)]),
    ]
    placements = [
        AttributePlacement("neighborhood", POLYGON, "Ln"),
        AttributePlacement("city", POLYGON, "Lc"),
        AttributePlacement("street", POLYLINE, "Lst"),
        AttributePlacement("river", POLYLINE, "Lr"),
        AttributePlacement("school", NODE, "Ls"),
        AttributePlacement("store", NODE, "Lsto"),
        AttributePlacement("gas_station", NODE, "Lg"),
        AttributePlacement("place", POI, "Lp"),
    ]
    dimensions = [
        DimensionSchema("Neighbourhoods", [("neighborhood", "city")]),
        DimensionSchema("Streets", [("street", "streetType")]),
        DimensionSchema("Schools", [("school", "district")]),
        DimensionSchema("Places", [("place", "category")]),
    ]
    return GISDimensionSchema(hierarchies, placements, dimensions)


@dataclass
class SyntheticCity:
    """The generated world plus convenient member listings."""

    config: CityConfig
    gis: GISDimensionInstance
    bounding_box: BoundingBox
    neighborhoods: List[str] = field(default_factory=list)
    cities: List[str] = field(default_factory=list)
    streets: List[str] = field(default_factory=list)
    schools: List[str] = field(default_factory=list)
    stores: List[str] = field(default_factory=list)
    gas_stations: List[str] = field(default_factory=list)

    def low_income_neighborhoods(self, threshold: float) -> List[str]:
        """Neighborhood members with income below ``threshold``."""
        return sorted(
            self.gis.members_where(
                "neighborhood", lambda v: v("income") < threshold
            )
        )


def build_city(
    config: CityConfig | None = None, rng: RandomLike = None
) -> SyntheticCity:
    """Generate the synthetic city for a config (deterministic in seed).

    An explicit ``rng`` (``numpy.random.Generator``, int seed or
    ``random.Random``) overrides ``config.seed``; the default keeps the
    historical ``random.Random(config.seed)`` stream bit-for-bit.
    """
    config = config or CityConfig()
    rng = resolve_rng(config.seed, rng)
    gis = GISDimensionInstance(city_schema())
    size = config.block_size
    width = config.cols * size
    height = config.rows * size
    city = SyntheticCity(
        config=config,
        gis=gis,
        bounding_box=BoundingBox(0.0, 0.0, width, height),
    )
    app = gis.application_instance("Neighbourhoods")

    # -- neighborhoods and cities ------------------------------------------------
    city_cols = (config.cols + config.city_span - 1) // config.city_span
    city_rows = (config.rows + config.city_span - 1) // config.city_span
    city_population: Dict[str, int] = {}
    for ci in range(city_cols):
        for cj in range(city_rows):
            name = f"city_{ci}_{cj}"
            x0 = ci * config.city_span * size
            y0 = cj * config.city_span * size
            x1 = min((ci + 1) * config.city_span * size, width)
            y1 = min((cj + 1) * config.city_span * size, height)
            gid = f"pg_{name}"
            gis.add_geometry("Lc", POLYGON, gid, Polygon.rectangle(x0, y0, x1, y1))
            gis.set_alpha("city", name, gid)
            city.cities.append(name)
            city_population[name] = 0
    for i in range(config.cols):
        for j in range(config.rows):
            name = f"nb_{i}_{j}"
            gid = f"pg_{name}"
            polygon = Polygon.rectangle(
                i * size, j * size, (i + 1) * size, (j + 1) * size
            )
            gis.add_geometry("Ln", POLYGON, gid, polygon)
            gis.set_alpha("neighborhood", name, gid)
            income = rng.uniform(config.income_low, config.income_high)
            population = rng.randint(
                config.population_low, config.population_high
            )
            gis.set_member_value("neighborhood", name, "income", income)
            gis.set_member_value("neighborhood", name, "population", population)
            parent = f"city_{i // config.city_span}_{j // config.city_span}"
            app.set_rollup("neighborhood", name, "city", parent)
            city_population[parent] += population
            city.neighborhoods.append(name)
    for name, population in city_population.items():
        gis.set_member_value("city", name, "population", population)

    # -- streets: grid lines as polylines composed of block-length lines ----------
    def add_street(name: str, vertices: List[Point]) -> None:
        gid = f"pl_{name}"
        gis.add_geometry("Lst", POLYLINE, gid, Polyline(vertices))
        gis.set_alpha("street", name, gid)
        gis.set_member_value(
            "street", name, "length", Polyline(vertices).length
        )
        for k, (a, b) in enumerate(zip(vertices, vertices[1:])):
            line_id = f"ln_{name}_{k}"
            gis.add_geometry("Lst", LINE, line_id, Segment(a, b))
            gis.relate("Lst", LINE, line_id, POLYLINE, gid)
        city.streets.append(name)

    for j in range(config.rows + 1):
        y = j * size
        add_street(
            f"h{j}", [Point(i * size, y) for i in range(config.cols + 1)]
        )
    for i in range(config.cols + 1):
        x = i * size
        add_street(
            f"v{i}", [Point(x, j * size) for j in range(config.rows + 1)]
        )

    # -- the river: meanders along the horizontal midline --------------------------
    mid = height / 2
    river_points = []
    for i in range(config.cols + 1):
        wiggle = rng.uniform(-size / 4, size / 4)
        river_points.append(Point(i * size, mid + wiggle))
    gis.add_geometry("Lr", POLYLINE, "pl_river", Polyline(river_points))
    gis.set_alpha("river", "river", "pl_river")

    # -- point features: schools, stores, gas stations -----------------------------
    def scatter(layer: str, attribute: str, prefix: str, per_city: int, bag: List[str]):
        for ci in range(city_cols):
            for cj in range(city_rows):
                for k in range(per_city):
                    name = f"{prefix}_{ci}_{cj}_{k}"
                    x = rng.uniform(
                        ci * config.city_span * size + 1,
                        min((ci + 1) * config.city_span * size, width) - 1,
                    )
                    y = rng.uniform(
                        cj * config.city_span * size + 1,
                        min((cj + 1) * config.city_span * size, height) - 1,
                    )
                    gid = f"nd_{name}"
                    gis.add_geometry(layer, NODE, gid, Point(x, y))
                    gis.set_alpha(attribute, name, gid)
                    bag.append(name)

    scatter("Ls", "school", "school", config.schools_per_city, city.schools)
    scatter("Lsto", "store", "store", config.stores_per_city, city.stores)
    scatter(
        "Lg", "gas_station", "gas", config.gas_stations_per_city, city.gas_stations
    )
    return city
