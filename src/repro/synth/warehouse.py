"""The classical data warehouse of the paper's application part.

Section 1.1: "there is numerical and categorical information stored in a
conventional data warehouse.  In this data warehouse, there are dimension
tables containing information about, for instance, stores, gas stations,
schools; there is also a fact table containing economic information based
on these dimensions."

This module generates that warehouse for a :class:`~repro.synth.city.SyntheticCity`:
a ``Stores`` dimension (store → city, aligned with the GIS α placements)
and a sales fact table at (store, day) granularity.  Combined with the
geometric subqueries, it answers the paper's signature GIS+OLAP questions
("revenue of stores in cities crossed by the river").
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set, Tuple

from repro.errors import SchemaError
from repro.olap.cube import Cube
from repro.olap.dimension import DimensionInstance, DimensionSchema
from repro.olap.facttable import DimensionAttribute, FactTable, FactTableSchema
from repro.synth.city import SyntheticCity
from repro.synth.rng import RandomLike, resolve_rng
from repro.temporal.timedim import TimeDimension


def stores_dimension(city: SyntheticCity) -> DimensionInstance:
    """The Stores dimension: store → city, matching the GIS placement.

    The parent city of a store is read from the store's generated name
    (``store_<ci>_<cj>_<k>``), which the generator placed inside
    ``city_<ci>_<cj>`` — so the warehouse dimension and the GIS geometry
    agree by construction.
    """
    schema = DimensionSchema("Stores", [("store", "city")])
    instance = DimensionInstance(schema)
    for store in city.stores:
        _, ci, cj, _ = store.split("_")
        instance.set_rollup("store", store, "city", f"city_{ci}_{cj}")
    return instance


def sales_fact_table(
    city: SyntheticCity,
    days: List[str],
    seed: int = 101,
    revenue_low: float = 100.0,
    revenue_high: float = 5_000.0,
    rng: RandomLike = None,
) -> FactTable:
    """A (store, day) → revenue fact table, deterministic in the seed.

    An explicit ``rng`` (``numpy.random.Generator``, int seed or
    ``random.Random``) overrides ``seed``.
    """
    if not days:
        raise SchemaError("need at least one day")
    if revenue_low > revenue_high:
        raise SchemaError("revenue_low must not exceed revenue_high")
    rng = resolve_rng(seed, rng)
    schema = FactTableSchema(
        "sales",
        [
            DimensionAttribute("store", "Stores", "store"),
            DimensionAttribute("day", "Time", "day"),
        ],
        ["revenue"],
    )
    table = FactTable(schema)
    for store in city.stores:
        for day in days:
            table.insert(
                {
                    "store": store,
                    "day": day,
                    "revenue": rng.uniform(revenue_low, revenue_high),
                }
            )
    return table


def sales_cube(
    city: SyntheticCity, table: FactTable, time_dim: TimeDimension
) -> Cube:
    """Wrap the sales facts in a cube over Stores × Time."""
    return Cube(
        table,
        {"Stores": stores_dimension(city), "Time": time_dim.instance},
    )


def revenue_of_cities(
    city: SyntheticCity,
    table: FactTable,
    city_names: Set[Hashable],
) -> float:
    """Total revenue of stores located in the given cities.

    This is the warehouse side of the paper's combined queries: the city
    set typically comes from a geometric subquery (e.g. cities crossed by
    the river), and the revenue from the classical fact table.
    """
    stores = stores_dimension(city)
    qualifying = {
        store
        for store in city.stores
        if stores.rollup(store, "store", "city") in city_names
    }
    total = 0.0
    for row in table.rows():
        if row["store"] in qualifying:
            total += row["revenue"]
    return total
