"""Synthetic data: the paper's exact running example and scalable worlds."""

from repro.synth.city import CityConfig, SyntheticCity, build_city, city_schema
from repro.synth.movement import (
    adversarial_moft,
    commuter_moft,
    random_waypoint_moft,
    route_following_moft,
)
from repro.synth.poi import install_city_pois, stop_biased_moft
from repro.synth.rng import NumpyRandomSource, RandomLike, resolve_rng
from repro.synth.warehouse import (
    revenue_of_cities,
    sales_cube,
    sales_fact_table,
    stores_dimension,
)
from repro.synth.paperdata import (
    INCOMES,
    LOW_INCOME_THRESHOLD,
    MORNING_INSTANTS,
    TABLE1_SAMPLES,
    PaperInstance,
    figure1_gis,
    figure1_instance,
    figure1_time,
    figure2_schema,
    neighborhood_polygons,
    table1_moft,
)

__all__ = [
    "NumpyRandomSource",
    "RandomLike",
    "resolve_rng",
    "CityConfig",
    "SyntheticCity",
    "build_city",
    "city_schema",
    "revenue_of_cities",
    "sales_cube",
    "sales_fact_table",
    "stores_dimension",
    "adversarial_moft",
    "commuter_moft",
    "install_city_pois",
    "random_waypoint_moft",
    "route_following_moft",
    "stop_biased_moft",
    "INCOMES",
    "LOW_INCOME_THRESHOLD",
    "MORNING_INSTANTS",
    "TABLE1_SAMPLES",
    "PaperInstance",
    "figure1_gis",
    "figure1_instance",
    "figure1_time",
    "figure2_schema",
    "neighborhood_polygons",
    "table1_moft",
]
