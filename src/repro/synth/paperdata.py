"""The paper's running example, made concrete.

Figure 1 shows six buses moving over Antwerp neighborhoods shaded by
income; Table 1 lists their MOFT ``FM_bus`` with symbolic coordinates
``(x1, y1) … (x9, y9)``.  This module realizes that instance with concrete
coordinates chosen so that every statement the paper makes about it holds:

* **O1** remains always within the low-income region (all four samples);
* **O2** starts in a high-income region, enters a low-income neighborhood
  at t=3, and leaves again at t=4;
* **O3, O4, O5** are always in high-income neighborhoods;
* **O6** *passes through* a low-income region between its two samples but
  was never sampled inside it;
* with "the morning" = instants {2, 3, 4}, the running query "number of
  buses per hour in the morning in the neighborhoods with income < 1500"
  evaluates to **4/3 ≈ 1.333** (Remark 1: O1 contributes three times, O2
  once, over a three-hour span).

The world is a 20×20 city split into four neighborhoods.  The low-income
region is the southern half plus a "bump" of Berchem reaching north between
x=12 and x=16, which is what O6's interpolated segment crosses::

    y=20 ┌─────────┬──────────────┐
         │ centrum │    noord     │   centrum: income 2500 (high)
    y=12 │ (high)  │  ┌────┐      │   noord:   income 3000 (high)
    y=10 ├─────────┴──┤bump├──────┤   zuid:    income 1200 (low)
         │    zuid    │  berchem  │   berchem: income 1400 (low)
    y=0  └────────────┴───────────┘
        x=0         x=10,12  x=16  x=20
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Set, Tuple

from repro.geometry.point import Point
from repro.geometry.poi import Poi
from repro.geometry.polygon import Polygon
from repro.geometry.polyline import Polyline
from repro.gis import (
    ALL,
    LINE,
    NODE,
    POI,
    POINT,
    POLYGON,
    POLYLINE,
    AttributePlacement,
    GISDimensionInstance,
    GISDimensionSchema,
    LayerHierarchy,
)
from repro.mo.moft import MOFT
from repro.olap.dimension import DimensionSchema
from repro.query.region import EvaluationContext
from repro.temporal.timedim import TimeDimension

#: Income threshold of the running query (in the paper: C 1,500.00).
LOW_INCOME_THRESHOLD = 1500

#: Instants forming "the morning" of Remark 1 (time span: three hours).
MORNING_INSTANTS = (2, 3, 4)

#: Neighborhood incomes of the Figure 1 instance.
INCOMES = {
    "zuid": 1200,
    "berchem": 1400,
    "centrum": 2500,
    "noord": 3000,
}

#: Table 1, with the symbolic coordinates made concrete.
TABLE1_SAMPLES: Tuple[Tuple[str, int, float, float], ...] = (
    # O1: always in zuid (low income).
    ("O1", 1, 2.0, 2.0),
    ("O1", 2, 4.0, 2.0),
    ("O1", 3, 6.0, 2.0),
    ("O1", 4, 8.0, 2.0),
    # O2: high (centrum) -> low (zuid) -> high (centrum).
    ("O2", 2, 2.0, 12.0),
    ("O2", 3, 4.0, 6.0),
    ("O2", 4, 2.0, 14.0),
    # O3, O4, O5: always in high-income neighborhoods.
    ("O3", 5, 15.0, 15.0),
    ("O4", 6, 5.0, 15.0),
    ("O5", 3, 12.0, 18.0),
    # O6: sampled in noord twice; the straight path between the samples
    # crosses the Berchem bump (low income) without a sample inside.
    ("O6", 2, 11.0, 11.0),
    ("O6", 3, 17.0, 11.0),
)


def neighborhood_polygons() -> Dict[str, Polygon]:
    """The four neighborhoods of the Figure 1 city (a partition)."""
    return {
        "zuid": Polygon.rectangle(0, 0, 10, 10),
        "berchem": Polygon(
            [
                Point(10, 0),
                Point(20, 0),
                Point(20, 10),
                Point(16, 10),
                Point(16, 12),
                Point(12, 12),
                Point(12, 10),
                Point(10, 10),
            ]
        ),
        "centrum": Polygon.rectangle(0, 10, 10, 20),
        "noord": Polygon(
            [
                Point(10, 10),
                Point(12, 10),
                Point(12, 12),
                Point(16, 12),
                Point(16, 10),
                Point(20, 10),
                Point(20, 20),
                Point(10, 20),
            ]
        ),
    }


def figure2_schema() -> GISDimensionSchema:
    """The GIS dimension schema of Figure 2.

    Three layers — rivers (Lr), schools (Ls), neighborhoods (Ln) — with
    their granularity hierarchies, the α placements of the application
    categories, and the application dimensions Rivers and Neighbourhoods
    (neighborhood → city, as in Example 1).
    """
    rivers = LayerHierarchy(
        "Lr", [(POINT, LINE), (LINE, POLYLINE), (POLYLINE, ALL)]
    )
    schools = LayerHierarchy("Ls", [(POINT, NODE), (NODE, ALL)])
    neighborhoods = LayerHierarchy("Ln", [(POINT, POLYGON), (POLYGON, ALL)])
    # The follow-up paper's extension: places of interest as discs.
    places = LayerHierarchy("Lp", [(POINT, POI), (POI, ALL)])
    placements = [
        AttributePlacement("river", POLYLINE, "Lr"),
        AttributePlacement("school", NODE, "Ls"),
        AttributePlacement("neighborhood", POLYGON, "Ln"),
        AttributePlacement("place", POI, "Lp"),
    ]
    dimensions = [
        DimensionSchema("Rivers", [("river", "basin")]),
        DimensionSchema("Neighbourhoods", [("neighborhood", "city")]),
        DimensionSchema("Places", [("place", "category")]),
    ]
    return GISDimensionSchema(
        [rivers, schools, neighborhoods, places], placements, dimensions
    )


#: Default disc radius of the Figure 1 places of interest.
FIG1_POI_RADIUS = 3.0


def figure1_pois(radius: float = FIG1_POI_RADIUS) -> Dict[str, Poi]:
    """The Figure 1 places of interest: both schools and the market.

    Discs at the school nodes plus a central market — sized so the
    Table 1 buses produce real stops (O1 dwells at the south school,
    O6 grazes the market).
    """
    return {
        "poi_market": Poi.at(10.0, 10.0, radius),
        "poi_school_north": Poi.at(15.0, 15.0, radius),
        "poi_school_south": Poi.at(5.0, 5.0, radius),
    }


def figure1_gis(with_pois: bool = False) -> GISDimensionInstance:
    """The populated GIS of Figure 1 over the Figure 2 schema.

    ``with_pois`` also populates the ``Lp`` place-of-interest layer
    (:func:`figure1_pois`) with its ``place`` members and category
    rollups — the world of the POI aggregation workload.
    """
    gis = GISDimensionInstance(figure2_schema())
    for name, polygon in neighborhood_polygons().items():
        gid = f"pg_{name}"
        gis.add_geometry("Ln", POLYGON, gid, polygon)
        gis.set_alpha("neighborhood", name, gid)
        gis.set_member_value("neighborhood", name, "income", INCOMES[name])
    # All four neighborhoods belong to Antwerp in the application part.
    app = gis.application_instance("Neighbourhoods")
    for name in INCOMES:
        app.set_rollup("neighborhood", name, "city", "antwerp")
    # The river divides the city into a northern and a southern part.
    gis.add_geometry(
        "Lr",
        POLYLINE,
        "pl_scheldt",
        Polyline([Point(-2, 10), Point(12, 10), Point(22, 10)]),
    )
    gis.set_alpha("river", "scheldt", "pl_scheldt")
    # Two schools, one per half.
    gis.add_geometry("Ls", NODE, "nd_school_south", Point(5, 5))
    gis.add_geometry("Ls", NODE, "nd_school_north", Point(15, 15))
    gis.set_alpha("school", "south-school", "nd_school_south")
    gis.set_alpha("school", "north-school", "nd_school_north")
    if with_pois:
        categories = {
            "poi_market": "market",
            "poi_school_north": "school",
            "poi_school_south": "school",
        }
        places = gis.application_instance("Places")
        for gid, poi in figure1_pois().items():
            member = gid[len("poi_") :]
            gis.add_geometry("Lp", POI, gid, poi)
            gis.set_alpha("place", member, gid)
            places.set_rollup("place", member, "category", categories[gid])
    return gis


def figure1_time() -> TimeDimension:
    """The toy Time dimension: instants 1..6, morning = {2, 3, 4}."""
    rollups: List[Tuple[str, Hashable, str, Hashable]] = []
    for t in range(1, 7):
        rollups.append(("timeId", t, "hour", t))
        rollups.append(("timeId", t, "day", "2006-01-09"))
    for t in MORNING_INSTANTS:
        rollups.append(("hour", t, "timeOfDay", "Morning"))
    for t in (1, 5, 6):
        rollups.append(("hour", t, "timeOfDay", "Other"))
    rollups.append(("day", "2006-01-09", "dayOfWeek", "Monday"))
    rollups.append(("day", "2006-01-09", "typeOfDay", "Weekday"))
    rollups.append(("day", "2006-01-09", "month", "2006-01"))
    rollups.append(("month", "2006-01", "year", 2006))
    return TimeDimension.from_explicit_rollups(rollups)


def table1_moft() -> MOFT:
    """The MOFT ``FM_bus`` of Table 1 (12 samples, 6 objects)."""
    moft = MOFT("FMbus")
    moft.add_many(TABLE1_SAMPLES)
    return moft


@dataclass(frozen=True)
class PaperInstance:
    """The complete running-example world."""

    gis: GISDimensionInstance
    time: TimeDimension
    moft: MOFT

    def context(self, use_overlay: bool = True) -> EvaluationContext:
        """Build an evaluation context over this instance."""
        return EvaluationContext(
            self.gis, self.time, self.moft, use_overlay=use_overlay
        )

    @property
    def low_income_neighborhoods(self) -> Set[str]:
        """Members with income under the paper's threshold."""
        return self.gis.members_where(
            "neighborhood", lambda v: v("income") < LOW_INCOME_THRESHOLD
        )


def figure1_instance(with_pois: bool = False) -> PaperInstance:
    """Assemble the full Figure 1 / Table 1 world."""
    return PaperInstance(
        figure1_gis(with_pois=with_pois), figure1_time(), table1_moft()
    )
