"""Sharded, parallel evaluation of MOFT queries.

The Section 5 pipeline is embarrassingly parallel in its expensive step:
the trajectory scan touches each object independently, so a MOFT split by
:meth:`~repro.mo.moft.MOFT.partition_by_objects` can be scanned shard by
shard and the per-shard answers merged exactly (disjoint object sets —
set union).  :class:`ShardedExecutor` packages that recipe:

* a pluggable :mod:`backend <repro.parallel.backends>` (``serial`` /
  ``threads`` / ``processes``) runs the shard tasks;
* per-query merge functions (:mod:`repro.parallel.merge`) fold partials;
* every fan-out is instrumented on the executor's
  :class:`~repro.obs.PipelineStats`: ``shard_count`` / ``merge_ms``
  counters plus ``shard_fanout`` / ``shard_scan`` / ``merge`` stage
  timers (per-shard wall times are measured inside the workers and
  recorded by the parent, so they are honest across processes).

Correctness is guarded externally: ``tests/parallel/oracle.py`` runs
every covered query through the seed serial path and every backend and
asserts result equality.  Semantics note: trajectory queries must shard
by *objects* — ``partition_by_time`` cuts trajectories at shard
boundaries and loses the interpolated segments that cross a cut.

Failure semantics (the resilient layer): the executor's
``failure_mode`` (``raise`` / ``retry`` / ``degrade``) plus an optional
:class:`~repro.parallel.backends.RetryPolicy` govern what a stalling,
dying or corrupt shard task does to the run — bounded deterministic
retries, per-task timeouts, and backend degradation ``processes`` →
``threads`` → ``serial``.  Every fan-out verifies result completeness
before merging: the engine either returns an answer bit-equal to the
serial scan or raises a typed
:class:`~repro.errors.ShardExecutionError`; a partial merge is
impossible.  ``tests/faults`` enforces this under seeded
:class:`~repro.faults.FaultPlan` chaos.

Worker task functions live at module level and their payloads are
picklable, as the ``processes`` backend requires.
"""

from __future__ import annotations

import time
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

from repro.errors import EvaluationError, ShardExecutionError
from repro.mo.moft import MOFT
from repro.obs import EvaluationStats, PipelineStats
from repro.parallel.backends import (
    ExecutionBackend,
    RetryPolicy,
    available_cpus,
    get_backend,
    resilient_map,
)
from repro.parallel.merge import intersect_ids, sum_groups, union_ids
from repro.pietql import ast as pietql_ast
from repro.pietql.executor import LayerBinding, PietQLExecutor
from repro.query.evaluator import TrajectoryIntersectionCounter
from repro.query.region import EvaluationContext

V = TypeVar("V")
M = TypeVar("M")

#: A shard task's return: (value, worker wall seconds, worker stats).
ShardOutcome = Tuple[V, float, Optional[PipelineStats]]


# -- module-level worker tasks (picklable for the processes backend) ----------


def _scan_task(
    payload: Tuple[TrajectoryIntersectionCounter, MOFT]
) -> ShardOutcome[Set[Hashable]]:
    """Run a trajectory-intersection scan over one MOFT shard."""
    counter, shard = payload
    stats = EvaluationStats()
    start = time.perf_counter()
    matched = counter.matching_objects(shard, stats)
    return matched, time.perf_counter() - start, stats


def _condition_task(
    payload: Tuple[PietQLExecutor, "pietql_ast.GeoCondition", "pietql_ast.LayerRef"]
) -> ShardOutcome[Set[Hashable]]:
    """Answer one Piet-QL WHERE condition to target-element ids."""
    executor, condition, target_ref = payload
    start = time.perf_counter()
    ids = executor._condition_ids(condition, target_ref)
    return ids, time.perf_counter() - start, None


def _apply_task(payload: Tuple[Callable[[MOFT], V], MOFT]) -> ShardOutcome[V]:
    """Apply a user shard function (module-level for processes) to a shard."""
    fn, shard = payload
    start = time.perf_counter()
    value = fn(shard)
    return value, time.perf_counter() - start, None


def _build_preagg_task(payload) -> ShardOutcome:
    """Build a pre-aggregation store over one object shard of a MOFT."""
    from repro.preagg.store import PreAggStore

    shard, time_dim, granule_level, geometries, layer, kind, name = payload
    stats = PipelineStats()
    start = time.perf_counter()
    store = PreAggStore(
        shard,
        time_dim,
        granule_level,
        geometries,
        layer=layer,
        kind=kind,
        name=name,
        obs=stats,
    )
    return store, time.perf_counter() - start, stats


# Zero-copy twins: same work, but the payload carries a
# repro.parallel.shm.ShardDescriptor instead of the shard itself; the
# worker attaches to the shared block and materializes the shard as
# views — O(1) pickled bytes per task instead of O(rows).


def _scan_task_zc(payload) -> ShardOutcome[Set[Hashable]]:
    """Zero-copy variant of :func:`_scan_task`."""
    from repro.parallel.shm import moft_from_descriptor

    counter, descriptor = payload
    stats = EvaluationStats()
    start = time.perf_counter()
    matched = counter.matching_objects(
        moft_from_descriptor(descriptor), stats
    )
    return matched, time.perf_counter() - start, stats


def _apply_task_zc(payload) -> ShardOutcome:
    """Zero-copy variant of :func:`_apply_task`."""
    from repro.parallel.shm import moft_from_descriptor

    fn, descriptor = payload
    start = time.perf_counter()
    value = fn(moft_from_descriptor(descriptor))
    return value, time.perf_counter() - start, None


def _build_preagg_task_zc(payload) -> ShardOutcome:
    """Zero-copy variant of :func:`_build_preagg_task`."""
    descriptor = payload[0]
    from repro.parallel.shm import moft_from_descriptor

    return _build_preagg_task(
        (moft_from_descriptor(descriptor),) + tuple(payload[1:])
    )


class ShardedExecutor:
    """Fans MOFT query work out over shards and merges exact partials.

    Parameters
    ----------
    backend:
        ``"serial"`` / ``"threads"`` / ``"processes"`` or an
        :class:`~repro.parallel.backends.ExecutionBackend` instance.
    n_shards:
        How many shards to cut inputs into (default: available CPUs).
    max_workers:
        Pool size cap for the thread/process backends.
    obs:
        Observer receiving fan-out instrumentation; a fresh
        :class:`~repro.obs.PipelineStats` when omitted.  Pass
        ``context.obs`` to fold shard metrics into a context's pipeline
        report.
    failure_mode:
        What a failing shard task does to the run: ``"raise"`` (the
        default — fail fast with a typed
        :class:`~repro.errors.ShardExecutionError`), ``"retry"``
        (bounded retries per :class:`RetryPolicy`, then the typed
        error), or ``"degrade"`` (retries, then step the backend down
        ``processes`` → ``threads`` → ``serial`` before giving up).
        Whatever the mode, the answer contract is *exact-or-error*: a
        merged result always accounts for every shard.
    retry_policy:
        Timeout/retry/backoff knobs for the resilient modes (default:
        :class:`RetryPolicy()` — 2 retries, no timeout, no backoff).
    fault_plan:
        A :class:`~repro.faults.FaultPlan` injecting deterministic
        faults into shard attempts (testing only).  Setting a plan
        routes execution through the resilient path even under
        ``failure_mode="raise"`` so injected faults surface as typed
        errors carrying the trace.
    zero_copy:
        Whether MOFT shard fan-outs ship shards as shared-memory
        descriptors (:mod:`repro.parallel.shm`) instead of pickled
        tables.  ``None`` (default) enables it exactly for the
        ``processes`` backend, where crossing the pool boundary copies;
        ``True``/``False`` force it.  Worlds whose object ids the
        columnar format cannot encode fall back to pickled shards
        transparently.
    track_payload_bytes:
        When True, every fan-out records the pickled size of its task
        payloads on the observer: ``bytes_serialized`` (counter, total
        across fan-outs) and ``peak_shard_payload_bytes`` (gauge, the
        largest single payload seen).  Off by default — measuring costs
        a serialization pass, so only benchmarks/diagnostics turn it on.
    """

    def __init__(
        self,
        backend: "str | ExecutionBackend" = "serial",
        n_shards: Optional[int] = None,
        max_workers: Optional[int] = None,
        obs: Optional[PipelineStats] = None,
        failure_mode: str = "raise",
        retry_policy: Optional[RetryPolicy] = None,
        fault_plan: Optional[object] = None,
        zero_copy: Optional[bool] = None,
        track_payload_bytes: bool = False,
    ) -> None:
        self.backend = get_backend(backend, max_workers)
        self.n_shards = n_shards if n_shards is not None else available_cpus()
        if self.n_shards < 1:
            raise EvaluationError(
                f"shard count must be >= 1, got {self.n_shards}"
            )
        if failure_mode not in ("raise", "retry", "degrade"):
            raise EvaluationError(
                f"unknown failure mode {failure_mode!r}; "
                f"expected 'raise', 'retry' or 'degrade'"
            )
        self.obs = obs if obs is not None else PipelineStats()
        self.failure_mode = failure_mode
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan
        self.zero_copy = zero_copy
        self.track_payload_bytes = track_payload_bytes

    def __repr__(self) -> str:
        return (
            f"ShardedExecutor(backend={self.backend.name!r}, "
            f"n_shards={self.n_shards}, "
            f"failure_mode={self.failure_mode!r})"
        )

    # -- the generic fan-out/merge step ---------------------------------------

    def _use_zero_copy(self) -> bool:
        """Effective zero-copy setting (default: processes backend only)."""
        if self.zero_copy is not None:
            return self.zero_copy
        return self.backend.name == "processes"

    def _account_payloads(self, payloads: Sequence[object]) -> None:
        """Record pickled payload sizes when ``track_payload_bytes`` is on."""
        if not self.track_payload_bytes or not payloads:
            return
        import pickle

        sizes = [
            len(pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))
            for payload in payloads
        ]
        self.obs.incr("bytes_serialized", sum(sizes))
        self.obs.gauge(
            "peak_shard_payload_bytes",
            max(self.obs.count("peak_shard_payload_bytes"), max(sizes)),
        )

    def _fanout_shards(
        self,
        shards: Sequence[MOFT],
        make_payload: Callable[[object], object],
        plain_task: Callable,
        zc_task: Callable,
        merge: Callable[[List[M]], object],
        observers: Sequence[PipelineStats] = (),
    ) -> object:
        """Fan shard work out, shipping shards zero-copy when enabled.

        ``make_payload`` builds one task payload from either a MOFT
        shard (pickle path) or a :class:`~repro.parallel.shm
        .ShardDescriptor` (zero-copy path).  The shared block lives
        exactly as long as the fan-out: it is unlinked in a ``finally``,
        so neither task failures, retries, nor injected faults can leak
        a segment.  Worlds the columnar format cannot encode (exotic
        object-id types) fall back to pickled shards.
        """
        if self._use_zero_copy():
            from repro.errors import MoftStorageError
            from repro.parallel.shm import create_shard_block

            try:
                block, descriptors = create_shard_block(shards)
            except MoftStorageError:
                self.obs.incr("zero_copy_fallbacks")
            else:
                payloads = [make_payload(d) for d in descriptors]
                self._account_payloads(payloads)
                self.obs.incr("zero_copy_blocks")
                try:
                    return self.map_shards(
                        zc_task, payloads, merge, observers=observers
                    )
                finally:
                    block.close()
        payloads = [make_payload(shard) for shard in shards]
        self._account_payloads(payloads)
        return self.map_shards(
            plain_task, payloads, merge, observers=observers
        )

    def _resilient(self) -> bool:
        """Whether fan-outs route through the retry/fault-injection path."""
        return (
            self.failure_mode != "raise"
            or self.retry_policy is not None
            or self.fault_plan is not None
        )

    def map_shards(
        self,
        fn: Callable[[V], ShardOutcome[M]],
        payloads: Sequence[V],
        merge: Callable[[List[M]], object],
        observers: Sequence[PipelineStats] = (),
    ) -> object:
        """Run shard tasks on the backend and merge their values.

        ``fn`` must be a module-level function returning a
        :data:`ShardOutcome` triple; per-shard wall times land in the
        ``shard_scan`` stage and any worker stats are folded into the
        executor's observer (plus ``observers``).

        Every shard is verified accounted for before the merge runs: a
        dropped or failed shard raises
        :class:`~repro.errors.ShardExecutionError` (possibly after the
        configured retries/degradation) — it can never silently
        under-count.  With the default ``failure_mode="raise"``, no
        retry policy and no fault plan, the fan-out is the plain
        ``backend.map`` call of the seed path: zero added per-task
        overhead.
        """
        targets = [self.obs] + [
            extra for extra in observers if extra is not self.obs
        ]
        for observer in targets:
            observer.incr("shard_count", len(payloads))
        with self.obs.stage("shard_fanout"):
            if self._resilient():
                outcomes = resilient_map(
                    self.backend,
                    fn,
                    payloads,
                    policy=self.retry_policy,
                    plan=self.fault_plan,
                    obs=self.obs,
                    failure_mode=self.failure_mode,
                )
            else:
                try:
                    outcomes = self.backend.map(fn, payloads)
                except ShardExecutionError:
                    raise
                except Exception as exc:
                    raise ShardExecutionError(
                        f"shard fan-out failed on backend "
                        f"{self.backend.name!r}: {exc!r}"
                    ) from exc
        if len(outcomes) != len(payloads):
            raise ShardExecutionError(
                f"result-completeness check failed: backend "
                f"{self.backend.name!r} returned {len(outcomes)} "
                f"outcomes for {len(payloads)} shards"
            )
        values: List[M] = []
        for value, seconds, stats in outcomes:
            for observer in targets:
                observer.record("shard_scan", seconds)
                if stats is not None:
                    observer.merge(stats)
            values.append(value)
        start = time.perf_counter()
        merged = merge(values)
        elapsed = time.perf_counter() - start
        for observer in targets:
            observer.record("merge", elapsed)
            observer.incr("merge_ms", int(round(elapsed * 1000)))
        return merged

    # -- trajectory queries ----------------------------------------------------

    def matching_objects(
        self,
        counter: TrajectoryIntersectionCounter,
        moft: MOFT,
        stats: Optional[EvaluationStats] = None,
        n_shards: Optional[int] = None,
    ) -> Set[Hashable]:
        """Sharded :meth:`TrajectoryIntersectionCounter.matching_objects`.

        The MOFT is partitioned by objects (each object's whole history in
        one shard, preserving interpolation semantics); per-shard matched
        sets are disjoint, so their union is the exact serial answer.
        ``n_shards`` overrides the executor's configured shard count for
        this one scan — the cost-based planner passes its chosen count
        here without reconstructing the executor.
        """
        shards = [
            shard
            for shard in moft.partition_by_objects(
                n_shards if n_shards is not None else self.n_shards
            )
            if len(shard)
        ]
        if not shards:
            return set()
        observers = (stats,) if stats is not None else ()
        return self._fanout_shards(
            shards,
            lambda shard: (counter, shard),
            _scan_task,
            _scan_task_zc,
            union_ids,
            observers=observers,
        )

    def count_objects_through(
        self,
        context: EvaluationContext,
        target: Tuple[str, str],
        constraints: Sequence[Tuple[str, Tuple[str, str]]],
        moft_name: str = "FM",
        use_index: bool = True,
        early_exit: bool = True,
        stats: Optional[EvaluationStats] = None,
        vectorized: bool = True,
        window: Optional[Tuple[float, float]] = None,
        use_preagg: bool = True,
    ) -> int:
        """Sharded Section 5 pipeline; same signature and semantics as
        :func:`repro.query.evaluator.count_objects_through`.

        The geometric subquery stays serial (it is cheap against the
        overlay and not shardable by MOFT rows); only the trajectory scan
        fans out — including the residual sliver scan when the planner
        routes the covered part of a window through a pre-agg store.
        """
        from repro.query.evaluator import count_objects_through

        return count_objects_through(
            context,
            target,
            constraints,
            moft_name=moft_name,
            use_index=use_index,
            early_exit=early_exit,
            stats=stats,
            vectorized=vectorized,
            executor=self,
            window=window,
            use_preagg=use_preagg,
        )

    def build_preagg_store(
        self,
        moft: MOFT,
        time_dim,
        granule_level: str,
        geometries: Dict[Hashable, object],
        layer: Optional[str] = None,
        kind: Optional[str] = None,
        name: Optional[str] = None,
    ):
        """Build a :class:`~repro.preagg.PreAggStore` shard by shard.

        The MOFT is partitioned by objects; each shard builds its own
        store (the expensive containment/clipping passes run on the
        backend) and the partials merge by count addition and oid-set
        union (:meth:`~repro.preagg.PreAggStore.merge`), which is exact
        because the object sets are disjoint.  The merged store's
        staleness snapshot is taken from the parent MOFT *before* the
        fan-out, so appends racing the build are detected as stale.
        """
        from repro.preagg.store import PreAggStore

        snapshot = (moft.version, len(moft))
        shards = [
            shard
            for shard in moft.partition_by_objects(self.n_shards)
            if len(shard)
        ]
        if not shards:
            store = PreAggStore(
                moft, time_dim, granule_level, geometries,
                layer=layer, kind=kind, name=name,
            )
            return store
        return self._fanout_shards(
            shards,
            lambda shard: (
                shard, time_dim, granule_level, dict(geometries),
                layer, kind, name,
            ),
            _build_preagg_task,
            _build_preagg_task_zc,
            lambda stores: PreAggStore.merge(stores, moft, snapshot),
        )

    # -- generic sharded aggregation -------------------------------------------

    def aggregate_moft(
        self,
        moft: MOFT,
        shard_fn: Callable[[MOFT], M],
        merge: Callable[[List[M]], object] = sum_groups,
        partition: str = "objects",
    ) -> object:
        """Fan a per-shard aggregation over a partitioned MOFT.

        ``shard_fn`` maps one shard to a partial (e.g. a ``group -> sum``
        dict) and must be a module-level function under the ``processes``
        backend; ``merge`` folds the partials (default: per-group sum).
        ``partition`` picks the partitioner: ``"objects"`` keeps whole
        trajectories together, ``"time"`` cuts contiguous instant ranges
        (exact only for queries that treat samples independently).
        """
        if partition == "objects":
            shards = moft.partition_by_objects(self.n_shards)
        elif partition == "time":
            shards = moft.partition_by_time(self.n_shards)
        else:
            raise EvaluationError(
                f"unknown partition {partition!r}; expected 'objects' or 'time'"
            )
        shards = [shard for shard in shards if len(shard)]
        if not shards:
            return merge([])
        return self._fanout_shards(
            shards,
            lambda shard: (shard_fn, shard),
            _apply_task,
            _apply_task_zc,
            merge,
        )


class ShardedPietQLExecutor(PietQLExecutor):
    """A :class:`PietQLExecutor` whose expensive steps fan out over shards.

    * the geometric part evaluates its WHERE conditions as parallel tasks
      and intersects their id sets (exact: conjunction is condition-wise);
    * ``THROUGH RESULT`` trajectory scans shard the MOFT by objects and
      union the per-shard matched sets.

    By default the sharded executor reports into ``context.obs``, so
    ``shard_count`` / ``merge_ms`` and the shard stage timers appear next
    to the usual pipeline counters.
    """

    def __init__(
        self,
        context: EvaluationContext,
        bindings: "Dict[str, LayerBinding] | None" = None,
        sharded: Optional[ShardedExecutor] = None,
        backend: "str | ExecutionBackend" = "serial",
        n_shards: Optional[int] = None,
        max_workers: Optional[int] = None,
        failure_mode: str = "raise",
        retry_policy: Optional[RetryPolicy] = None,
        fault_plan: Optional[object] = None,
    ) -> None:
        super().__init__(context, bindings)
        self.sharded = sharded or ShardedExecutor(
            backend=backend,
            n_shards=n_shards,
            max_workers=max_workers,
            obs=context.obs,
            failure_mode=failure_mode,
            retry_policy=retry_policy,
            fault_plan=fault_plan,
        )

    def _execute_geometric(
        self, geo: "pietql_ast.GeometricQuery"
    ) -> Set[Hashable]:
        if len(geo.conditions) <= 1:
            return super()._execute_geometric(geo)
        payloads = [
            (self, condition, geo.target) for condition in geo.conditions
        ]
        return self.sharded.map_shards(
            _condition_task, payloads, intersect_ids
        )

    def _scan_through_result(
        self,
        moft: MOFT,
        binding: LayerBinding,
        geometry_ids: Set[Hashable],
    ) -> Set[Hashable]:
        counter = self._through_result_counter(binding, geometry_ids)
        stats = EvaluationStats()
        matched = self.sharded.matching_objects(counter, moft, stats)
        if self.sharded.obs is not self.context.obs:
            self.context.obs.merge(stats)
        return matched


def sharded_count_objects_through(
    context: EvaluationContext,
    target: Tuple[str, str],
    constraints: Sequence[Tuple[str, Tuple[str, str]]],
    moft_name: str = "FM",
    backend: "str | ExecutionBackend" = "processes",
    n_shards: Optional[int] = None,
    stats: Optional[EvaluationStats] = None,
) -> int:
    """One-call convenience: sharded Section 5 count with a named backend."""
    executor = ShardedExecutor(
        backend=backend, n_shards=n_shards, obs=context.obs
    )
    return executor.count_objects_through(
        context, target, constraints, moft_name=moft_name, stats=stats
    )


__all__ = [
    "ShardOutcome",
    "ShardedExecutor",
    "ShardedPietQLExecutor",
    "sharded_count_objects_through",
]
