"""Sharding + parallel execution for MOFT queries.

``MOFT.partition_by_objects`` / ``partition_by_time`` cut the columnar
fact table into shard MOFTs; :class:`ShardedExecutor` fans query work out
over a pluggable backend (``serial`` / ``threads`` / ``processes``) and
merges exact partial results; :class:`ShardedPietQLExecutor` does the
same for Piet-QL queries.  See ``docs/API.md`` ("repro.parallel") for
merge semantics and the differential-oracle harness that verifies every
optimized path against the serial seed implementation.
"""

from repro.parallel.backends import (
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_cpus,
    get_backend,
)
from repro.parallel.executor import (
    ShardedExecutor,
    ShardedPietQLExecutor,
    sharded_count_objects_through,
)
from repro.parallel.merge import (
    intersect_ids,
    sum_counts,
    sum_groups,
    union_ids,
)

__all__ = [
    "BACKENDS",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "available_cpus",
    "get_backend",
    "ShardedExecutor",
    "ShardedPietQLExecutor",
    "sharded_count_objects_through",
    "union_ids",
    "intersect_ids",
    "sum_groups",
    "sum_counts",
]
