"""Sharding + parallel execution for MOFT queries.

``MOFT.partition_by_objects`` / ``partition_by_time`` cut the columnar
fact table into shard MOFTs; :class:`ShardedExecutor` fans query work out
over a pluggable backend (``serial`` / ``threads`` / ``processes``) and
merges exact partial results; :class:`ShardedPietQLExecutor` does the
same for Piet-QL queries.  The resilient layer (:class:`RetryPolicy`,
:func:`resilient_map`, executor ``failure_mode``) adds per-task
timeouts, bounded deterministic retries and backend degradation with an
exact-or-error guarantee: results are bit-equal to the serial scan or a
typed :class:`~repro.errors.ShardExecutionError` is raised.  See
``docs/API.md`` ("repro.parallel") for merge semantics and the
differential-oracle harness that verifies every optimized path against
the serial seed implementation.
"""

from repro.parallel.backends import (
    BACKENDS,
    DEGRADATION_ORDER,
    ExecutionBackend,
    ProcessBackend,
    RetryPolicy,
    SerialBackend,
    TaskFailure,
    ThreadBackend,
    available_cpus,
    degraded_backend,
    get_backend,
    resilient_map,
)
from repro.parallel.executor import (
    ShardedExecutor,
    ShardedPietQLExecutor,
    sharded_count_objects_through,
)
from repro.parallel.merge import (
    intersect_ids,
    sum_counts,
    sum_groups,
    union_ids,
)

__all__ = [
    "BACKENDS",
    "DEGRADATION_ORDER",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "RetryPolicy",
    "TaskFailure",
    "available_cpus",
    "degraded_backend",
    "get_backend",
    "resilient_map",
    "ShardedExecutor",
    "ShardedPietQLExecutor",
    "sharded_count_objects_through",
    "union_ids",
    "intersect_ids",
    "sum_groups",
    "sum_counts",
]
