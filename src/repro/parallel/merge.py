"""Merge functions for per-shard partial results.

Each query family has a merge with the right algebra:

* object-id queries (``matching_objects`` over object shards) —
  :func:`union_ids`: shards hold disjoint object sets, the union is the
  exact serial answer;
* conjunctive geometric queries (one WHERE condition per task) —
  :func:`intersect_ids`: every condition constrains the target ids;
* grouped aggregations (per-shard ``group -> value`` sums) —
  :func:`sum_groups`: group keys are summed pointwise, which is exact
  for distributive aggregates (SUM/COUNT) over disjoint shards;
* plain counts of disjoint shards — :func:`sum_counts`.

These are deliberately tiny, pure functions: the differential oracle in
``tests/parallel`` exists to prove that *executor + merge* reproduces the
serial semantics, and small merges keep that surface auditable.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Sequence, Set

import numpy as np


def union_ids(partials: Iterable[Set[Hashable]]) -> Set[Hashable]:
    """Union per-shard id sets (disjoint-shard object queries)."""
    merged: Set[Hashable] = set()
    for partial in partials:
        merged |= partial
    return merged


def intersect_ids(partials: Iterable[Set[Hashable]]) -> Set[Hashable]:
    """Intersect per-condition id sets (conjunctive geometric queries).

    An empty iterable has no constraining condition; callers handle that
    case themselves (it means "all target elements"), so here it is an
    error to merge nothing.
    """
    merged: "Set[Hashable] | None" = None
    for partial in partials:
        merged = set(partial) if merged is None else merged & partial
        if not merged:
            return set()
    if merged is None:
        raise ValueError("intersect_ids needs at least one partial")
    return merged


def union_sorted_ids(partials: Sequence[np.ndarray]) -> np.ndarray:
    """Union sorted integer-id arrays into one sorted deduplicated array.

    The id-set algebra of the pre-aggregation store
    (:mod:`repro.preagg`): distinct-object measures are not summable as
    counters, so shards and cells carry exact id-code arrays and merges
    union them.  Accepts unsorted inputs too (``np.unique`` sorts); an
    empty sequence yields an empty ``uint32`` array.
    """
    parts = [p for p in partials if p.size]
    if not parts:
        return np.empty(0, dtype=np.uint32)
    if len(parts) == 1:
        return np.unique(parts[0])
    return np.unique(np.concatenate(parts))


def sum_groups(
    partials: Iterable[Dict[Hashable, float]]
) -> Dict[Hashable, float]:
    """Add per-group values pointwise across shards."""
    merged: Dict[Hashable, float] = {}
    for partial in partials:
        for key, value in partial.items():
            merged[key] = merged.get(key, 0.0) + value
    return merged


def sum_counts(partials: Iterable[float]) -> float:
    """Add per-shard counts (exact when shards are disjoint)."""
    return sum(partials)
