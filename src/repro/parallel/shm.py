"""Zero-copy MOFT shards over POSIX shared memory.

The ``processes`` backend used to pickle whole MOFT shards into every
worker — O(rows) bytes per task, which ROADMAP item 3 flags as eating
the fan-out speedup on 250k+ sample worlds.  This module replaces the
payload with a *descriptor*: the coordinator writes all shards once into
one :class:`multiprocessing.shared_memory.SharedMemory` block as a
single index-less columnar image (:mod:`repro.mo.storage`), and each
task carries only ``(block name, start row, stop row)`` — O(1) bytes.
Workers attach to the block by name and materialize their shard as
zero-copy numpy views over the shared pages.

Lifecycle contract:

* **create** — :func:`create_shard_block` serializes the shards and
  returns a :class:`ShardBlock` (owning the segment) plus one
  :class:`ShardDescriptor` per shard, in shard order.
* **attach** — workers call :func:`moft_from_descriptor`; the attachment
  is cached per process (one block at a time) and explicitly
  *unregistered* from the resource tracker, so a pool worker never
  unlinks a segment it does not own.
* **unlink** — only the creating side calls :meth:`ShardBlock.close`,
  in a ``finally`` around the fan-out, so the segment disappears even
  when a shard task fails or a fault-injection plan kills the run.
  ``tests/parallel/test_zero_copy.py`` sweeps ``/dev/shm`` around chaos
  runs to enforce the no-leak guarantee.
"""

from __future__ import annotations

import atexit
import os
import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker
from multiprocessing.shared_memory import SharedMemory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mo.moft import MOFT
from repro.mo.storage import (
    MoftImage,
    open_image,
    serialize_columns,
    table_from_image,
)

#: Prefix of every shard block's segment name; the leak-sweep tests key
#: on it, and so can operators inspecting ``/dev/shm``.
BLOCK_PREFIX = "repro-zc-"


@dataclass(frozen=True)
class ShardDescriptor:
    """One shard as a row range ``[start, stop)`` of a shared block."""

    block: str
    start: int
    stop: int

    @property
    def rows(self) -> int:
        return self.stop - self.start


class ShardBlock:
    """The creating side's handle on one shared-memory shard image."""

    def __init__(self, shm: SharedMemory, nbytes: int) -> None:
        self._shm = shm
        self.name = shm.name
        self.nbytes = nbytes
        self._closed = False

    def close(self) -> None:
        """Release and unlink the segment (idempotent, never raises)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - defensive
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        except OSError:  # pragma: no cover - defensive
            pass

    def __enter__(self) -> "ShardBlock":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        self.close()


def create_shard_block(
    shards: Sequence[MOFT],
    name: Optional[str] = None,
) -> Tuple[ShardBlock, List[ShardDescriptor]]:
    """Serialize ``shards`` into one shared block; return its descriptors.

    The shards' columns are concatenated in shard order (each shard's
    internal row order preserved), so descriptor ``i`` addresses exactly
    shard ``i``'s rows.  Raises
    :class:`~repro.errors.MoftStorageError` when the object ids cannot
    be encoded (the caller then falls back to pickled payloads).
    """
    ts: List[np.ndarray] = []
    xs: List[np.ndarray] = []
    ys: List[np.ndarray] = []
    oids: List[np.ndarray] = []
    bounds: List[Tuple[int, int]] = []
    cursor = 0
    table_name = shards[0].name if shards else "MOFT"
    for shard in shards:
        t, x, y = shard.as_arrays()
        ts.append(t)
        xs.append(x)
        ys.append(y)
        oids.append(shard.oid_column())
        bounds.append((cursor, cursor + len(t)))
        cursor += len(t)
    image = serialize_columns(
        table_name,
        np.concatenate(oids) if oids else np.empty(0, dtype=object),
        np.concatenate(ts) if ts else np.empty(0, dtype=float),
        np.concatenate(xs) if xs else np.empty(0, dtype=float),
        np.concatenate(ys) if ys else np.empty(0, dtype=float),
        include_index=False,
    )
    if name is None:
        name = f"{BLOCK_PREFIX}{os.getpid()}-{os.urandom(4).hex()}"
    shm = SharedMemory(create=True, size=len(image), name=name)
    try:
        shm.buf[: len(image)] = image
    except BaseException:  # pragma: no cover - defensive
        shm.close()
        shm.unlink()
        raise
    block = ShardBlock(shm, len(image))
    descriptors = [
        ShardDescriptor(block=block.name, start=lo, stop=hi)
        for lo, hi in bounds
    ]
    return block, descriptors


# -- worker side ---------------------------------------------------------------

# One attached block per process: fan-outs use a single block, so a
# size-1 cache gives every task of a run a free attach after the first.
_ATTACHED: Dict[str, Tuple[SharedMemory, MoftImage]] = {}


_ATTACH_LOCK = threading.Lock()


def _attach(name: str) -> SharedMemory:
    """Attach to an existing segment without adopting ownership.

    Python 3.13 grew ``track=False``; on older versions attaching
    registers the segment with the resource tracker, which would unlink
    it when *this* process exits — stealing it from the creator (and an
    explicit unregister would instead strip the *creator's* entry from
    the shared tracker).  There, suppress the registration itself for
    the duration of the constructor.
    """
    try:
        return SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        pass
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _detach(shm: SharedMemory) -> None:
    """Close an attachment; abandon the mapping if views still export it.

    Abandoning (rather than erroring or retrying) is safe: the creator
    owns the unlink, and a dangling private mapping is reclaimed by the
    kernel when this process exits.  Nulling the handles also keeps
    ``SharedMemory.__del__`` from re-raising at interpreter teardown.
    """
    try:
        shm.close()
    except BufferError:
        shm._buf = None
        shm._mmap = None


def _drain_attachments() -> None:
    for name in list(_ATTACHED):
        shm, _ = _ATTACHED.pop(name)
        _detach(shm)


atexit.register(_drain_attachments)


def attached_image(name: str) -> MoftImage:
    """The parsed columnar image of block ``name`` (cached per process)."""
    with _ATTACH_LOCK:
        hit = _ATTACHED.get(name)
        if hit is not None:
            return hit[1]
        _drain_attachments()
        shm = _attach(name)
        image = open_image(shm.buf, source=f"shm://{name}")
        _ATTACHED[name] = (shm, image)
        return image


def moft_from_descriptor(descriptor: ShardDescriptor) -> MOFT:
    """Materialize one shard as views over its shared block."""
    image = attached_image(descriptor.block)
    return table_from_image(image, descriptor.start, descriptor.stop)


def leaked_segments() -> List[str]:
    """Names of ``repro-zc-*`` segments currently present in /dev/shm.

    Test/diagnostic helper: after every fan-out (chaotic or not) this
    must be empty.  Returns an empty list on platforms without a
    /dev/shm to inspect.
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(BLOCK_PREFIX))


__all__ = [
    "BLOCK_PREFIX",
    "ShardBlock",
    "ShardDescriptor",
    "attached_image",
    "create_shard_block",
    "leaked_segments",
    "moft_from_descriptor",
]
