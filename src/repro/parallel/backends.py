"""Pluggable execution backends for sharded query evaluation.

A backend is anything with a ``map(fn, items)`` returning the results in
item order.  Three are built in:

* :class:`SerialBackend` — a plain loop in the calling thread; the
  baseline every differential test compares against, and the right
  choice for tiny inputs where fan-out overhead dominates;
* :class:`ThreadBackend` — ``concurrent.futures.ThreadPoolExecutor``;
  helps when shard work releases the GIL (NumPy batch predicates);
* :class:`ProcessBackend` — ``concurrent.futures.ProcessPoolExecutor``;
  true multi-core parallelism for the pure-Python segment scans.  Task
  functions must be module-level and payloads picklable.

:func:`get_backend` resolves a backend from its registry name (or passes
an instance through), so callers can say ``backend="processes"``.

On top of plain ``map`` sits the *resilient* layer:

* ``run_tasks(fn, items, timeout)`` — per-item guarded execution: every
  item yields an outcome (value, exception, or timeout) instead of the
  first worker exception aborting the whole fan-out.  Pool backends
  enforce the timeout preemptively via futures; the serial backend
  checks elapsed time after the fact (a single thread cannot preempt
  itself);
* :class:`RetryPolicy` — per-task timeout, bounded retry budget, and a
  deterministic exponential backoff (no jitter: chaos tests must
  replay);
* :func:`resilient_map` — the retry/degrade loop used by
  ``ShardedExecutor`` when a failure mode other than plain ``raise`` (or
  a :class:`~repro.faults.FaultPlan`) is configured.  It guarantees the
  *exact-or-error* contract: either every task's value is accounted for,
  in item order, or a typed :class:`~repro.errors.ShardExecutionError`
  carrying the failure records and the injected-fault trace is raised.
  Backend degradation steps down :data:`DEGRADATION_ORDER`
  (``processes`` → ``threads`` → ``serial``), resetting the retry budget
  of the tasks that exhausted it at the richer tier.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

import os

from repro.errors import EvaluationError, ShardExecutionError
from repro.obs import PipelineStats

T = TypeVar("T")
R = TypeVar("R")

#: One task attempt's outcome: (status, value, error, seconds) where
#: status is "ok" / "error" / "timeout".
AttemptOutcome = Tuple[str, Optional[R], Optional[BaseException], float]


def _timed_call(fn: Callable[[T], R], item: T) -> "AttemptOutcome[R]":
    """Run one task guarded: capture the exception and the wall time.

    Runs inside the worker (module-level, hence picklable via
    ``functools.partial`` for the processes backend); the measured
    seconds are the worker's own wall time, honest across process
    boundaries.
    """
    start = time.perf_counter()
    try:
        value = fn(item)
    except Exception as exc:
        return ("error", None, exc, time.perf_counter() - start)
    return ("ok", value, None, time.perf_counter() - start)


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware, never below 1)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without sched_getaffinity
        return max(1, os.cpu_count() or 1)


class ExecutionBackend:
    """Maps a function over shard payloads; subclasses define the how."""

    #: Registry name (also used in reports and error messages).
    name = "base"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, returning results in item order."""
        raise NotImplementedError

    def run_tasks(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        timeout: Optional[float] = None,
    ) -> List["AttemptOutcome[R]"]:
        """Guarded per-item execution: one outcome per item, in order.

        The default (used by the serial backend) runs items in-process;
        a single thread cannot preempt itself, so ``timeout`` is checked
        *after* each item completes — an overdue attempt is reported as
        a timeout even though its work finished, keeping timeout
        semantics uniform across backends (the retry loop will redo
        it).  Pool backends override this with preemptive waits.
        """
        outcomes: List[AttemptOutcome[R]] = []
        for item in items:
            outcome = _timed_call(fn, item)
            if (
                timeout is not None
                and outcome[0] == "ok"
                and outcome[3] > timeout
            ):
                outcome = ("timeout", None, None, outcome[3])
            outcomes.append(outcome)
        return outcomes

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """The seed path: evaluate shards one after another, in-process."""

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]


class _PoolBackend(ExecutionBackend):
    """Shared sizing logic for the pool-based backends."""

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise EvaluationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.max_workers = max_workers

    #: The ``concurrent.futures`` executor class the subclass pools with.
    _pool_class: "type | None" = None

    def _workers_for(self, n_items: int) -> int:
        limit = self.max_workers or available_cpus()
        return max(1, min(limit, n_items))

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        if len(items) <= 1:
            return [fn(item) for item in items]
        with self._pool_class(
            max_workers=self._workers_for(len(items))
        ) as pool:
            return list(pool.map(fn, items))

    def run_tasks(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        timeout: Optional[float] = None,
    ) -> List["AttemptOutcome[R]"]:
        """Guarded pool execution with a preemptive per-task timeout.

        Each item becomes its own future; ``timeout`` bounds the wait on
        each future from the moment the collector reaches it.  A
        timed-out future is cancelled and abandoned (its worker may
        still finish, but the result is discarded — the retry loop owns
        redoing the task), and the pool is shut down without waiting so
        a straggler cannot wedge the coordinator.
        """
        if not items:
            return []
        pool = self._pool_class(max_workers=self._workers_for(len(items)))
        timed_out = False
        outcomes: List[AttemptOutcome[R]] = []
        try:
            futures = [
                pool.submit(_timed_call, fn, item) for item in items
            ]
            for future in futures:
                try:
                    outcomes.append(future.result(timeout=timeout))
                except FuturesTimeoutError:
                    future.cancel()
                    timed_out = True
                    outcomes.append(
                        ("timeout", None, None, float(timeout))
                    )
                except Exception as exc:
                    # Pool infrastructure failure (a worker process died,
                    # a payload failed to pickle, ...) — the task itself
                    # guards its own exceptions in _timed_call.
                    outcomes.append(("error", None, exc, 0.0))
        finally:
            pool.shutdown(wait=not timed_out, cancel_futures=True)
        return outcomes


class ThreadBackend(_PoolBackend):
    """Fan shards out over a thread pool."""

    name = "threads"
    _pool_class = ThreadPoolExecutor


class ProcessBackend(_PoolBackend):
    """Fan shards out over worker processes.

    ``fn`` must be defined at module level and every payload picklable —
    the sharded executor's task functions satisfy both.
    """

    name = "processes"
    _pool_class = ProcessPoolExecutor


#: Name -> backend class, for ``backend="<name>"`` resolution.
BACKENDS = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def get_backend(
    backend: "str | ExecutionBackend", max_workers: Optional[int] = None
) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through unchanged)."""
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise EvaluationError(
            f"unknown backend {backend!r}; expected one of "
            f"{sorted(BACKENDS)} or an ExecutionBackend instance"
        ) from None
    if cls is SerialBackend:
        return cls()
    return cls(max_workers=max_workers)


# -- the resilient layer -------------------------------------------------------

#: Backend-degradation ladder: each failure tier steps one name right.
DEGRADATION_ORDER: Tuple[str, ...] = ("processes", "threads", "serial")


@dataclass(frozen=True)
class RetryPolicy:
    """How the resilient fan-out treats a failing shard task.

    Parameters
    ----------
    max_retries:
        Extra attempts granted per task *per backend tier* (2 means up
        to three tries before the task escalates — to degradation under
        ``failure_mode="degrade"``, to a typed error otherwise).
    timeout_s:
        Per-task timeout in seconds (None: no timeout).  Pool backends
        enforce it preemptively; the serial backend checks after the
        fact.  Injected latency faults count against it.
    backoff_s / backoff_multiplier:
        Deterministic exponential backoff between retry rounds: round
        ``r`` (1-based) sleeps ``backoff_s * backoff_multiplier**(r-1)``
        seconds.  No jitter — chaos runs must replay bit-identically.
        The default 0.0 never sleeps, which is what tests want.
    sleep:
        The sleep function backoff uses (injectable so tests can assert
        backoff without waiting).
    """

    max_retries: int = 2
    timeout_s: Optional[float] = None
    backoff_s: float = 0.0
    backoff_multiplier: float = 2.0
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise EvaluationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise EvaluationError(
                f"timeout_s must be positive, got {self.timeout_s}"
            )
        if self.backoff_s < 0 or self.backoff_multiplier <= 0:
            raise EvaluationError(
                "backoff_s must be >= 0 and backoff_multiplier > 0, got "
                f"{self.backoff_s} / {self.backoff_multiplier}"
            )

    def backoff_for(self, round_number: int) -> float:
        """Seconds to back off before retry round ``round_number`` (1-based)."""
        return self.backoff_s * (self.backoff_multiplier ** (round_number - 1))


@dataclass(frozen=True)
class TaskFailure:
    """One failed task attempt, as recorded by :func:`resilient_map`."""

    task_index: int
    attempt: int
    status: str  # "error" | "timeout" | "dropped" | "truncated"
    backend: str
    error: Optional[BaseException] = None
    fault: "object | None" = None  # the FaultSpec that caused it, if injected

    def describe(self) -> str:
        cause = f": {self.error!r}" if self.error is not None else ""
        injected = " [injected]" if self.fault is not None else ""
        return (
            f"task {self.task_index} attempt {self.attempt} "
            f"{self.status} on {self.backend!r}{injected}{cause}"
        )


def degraded_backend(backend: ExecutionBackend) -> Optional[ExecutionBackend]:
    """The next backend down the ladder, or None when already at serial.

    Unknown (user-supplied) backends degrade straight to serial: when a
    custom pool misbehaves, the one dependable fallback is the plain
    in-process loop.
    """
    if isinstance(backend, SerialBackend) or backend.name == "serial":
        return None
    try:
        position = DEGRADATION_ORDER.index(backend.name)
    except ValueError:
        return SerialBackend()
    for name in DEGRADATION_ORDER[position + 1:]:
        cls = BACKENDS[name]
        if cls is SerialBackend:
            return cls()
        max_workers = getattr(backend, "max_workers", None)
        return cls(max_workers=max_workers)
    return None


def _shard_error(
    message: str,
    failures: List[TaskFailure],
    plan: "object | None",
) -> ShardExecutionError:
    trace = tuple(getattr(plan, "trace", ())) if plan is not None else ()
    detail = "; ".join(f.describe() for f in failures[-5:])
    if detail:
        message = f"{message} ({detail})"
    return ShardExecutionError(message, failures=failures, faults=trace)


def resilient_map(
    backend: ExecutionBackend,
    fn: Callable[[T], R],
    items: Sequence[T],
    policy: Optional[RetryPolicy] = None,
    plan: "object | None" = None,
    obs: Optional[PipelineStats] = None,
    failure_mode: str = "retry",
) -> List[R]:
    """Map ``fn`` over ``items`` with retries, timeouts and degradation.

    The exact-or-error workhorse: returns one value per item, in item
    order, or raises :class:`~repro.errors.ShardExecutionError` — a
    partial result can never leak out.  ``plan`` is an optional
    :class:`~repro.faults.FaultPlan`; scheduled faults are applied to
    attempt outcomes *in the coordinator* (identical behavior on every
    backend) and recorded on the plan's trace.

    ``failure_mode``:

    * ``"raise"`` — no tolerance: the first failed attempt raises (still
      typed, still carrying the fault trace);
    * ``"retry"`` — each task gets ``policy.max_retries`` extra attempts
      on the configured backend, then the run raises;
    * ``"degrade"`` — like retry, but a task that exhausts its budget
      steps the whole fan-out down :data:`DEGRADATION_ORDER` with a
      fresh budget; only exhaustion *at serial* raises.

    Observability (all on ``obs``): ``fault_injected``, ``task_retries``,
    ``task_timeouts``, ``backend_degradations`` counters and the
    ``retry_backoff`` stage timer.
    """
    if failure_mode not in ("raise", "retry", "degrade"):
        raise EvaluationError(
            f"unknown failure mode {failure_mode!r}; "
            f"expected 'raise', 'retry' or 'degrade'"
        )
    policy = policy if policy is not None else RetryPolicy()
    obs = obs if obs is not None else PipelineStats()
    n = len(items)
    results: dict = {}
    attempts = [0] * n        # global attempt number per task (keys the plan)
    tier_failures = [0] * n   # failures within the current backend tier
    failures: List[TaskFailure] = []
    current = backend
    pending = list(range(n))
    retry_round = 0
    while pending:
        outcomes = current.run_tasks(
            fn, [items[i] for i in pending], timeout=policy.timeout_s
        )
        if len(outcomes) != len(pending):
            # A backend returning the wrong number of outcomes is a
            # broken backend; treat the tail as dropped tasks.
            outcomes = list(outcomes) + [
                ("dropped", None, None, 0.0)
            ] * (len(pending) - len(outcomes))
        retry_next: List[int] = []
        exhausted: List[int] = []
        for i, outcome in zip(pending, outcomes):
            status, value, error, seconds = outcome
            attempt = attempts[i]
            fault = (
                plan.fault_for(i, attempt) if plan is not None else None
            )
            if fault is not None:
                from repro.faults import FaultInjected

                plan.record(fault)
                obs.incr("fault_injected")
                if fault.kind == "raise":
                    status, value, error = (
                        "error",
                        None,
                        FaultInjected(
                            f"injected fault: {fault.describe()}"
                        ),
                    )
                elif fault.kind == "drop":
                    status, value = "dropped", None
                elif fault.kind == "truncate":
                    # The envelope fails its integrity check: a worker
                    # died mid-serialization.  The (corrupt) value must
                    # never reach the merge.
                    status, value = "truncated", None
                elif fault.kind == "latency":
                    seconds += fault.latency_s
            if (
                status == "ok"
                and policy.timeout_s is not None
                and seconds > policy.timeout_s
            ):
                status, value = "timeout", None
            if status == "ok":
                results[i] = value
                continue
            if status == "timeout":
                obs.incr("task_timeouts")
            attempts[i] += 1
            tier_failures[i] += 1
            failures.append(TaskFailure(
                task_index=i,
                attempt=attempt,
                status=status,
                backend=current.name,
                error=error,
                fault=fault,
            ))
            if failure_mode == "raise":
                raise _shard_error(
                    f"shard task {i} failed ({status}) and "
                    f"failure_mode='raise' grants no retries",
                    failures, plan,
                )
            if tier_failures[i] > policy.max_retries:
                exhausted.append(i)
            else:
                retry_next.append(i)
        if exhausted:
            if failure_mode == "degrade":
                degraded = degraded_backend(current)
                if degraded is None:
                    raise _shard_error(
                        f"{len(exhausted)} shard task(s) exhausted "
                        f"{policy.max_retries} retries on the 'serial' "
                        f"backend; nothing left to degrade to",
                        failures, plan,
                    )
                obs.incr("backend_degradations")
                current = degraded
                for i in exhausted:
                    tier_failures[i] = 0
                retry_next.extend(exhausted)
            else:
                raise _shard_error(
                    f"{len(exhausted)} shard task(s) failed past "
                    f"max_retries={policy.max_retries}",
                    failures, plan,
                )
        if retry_next:
            retry_round += 1
            obs.incr("task_retries", len(retry_next))
            delay = policy.backoff_for(retry_round)
            with obs.stage("retry_backoff"):
                if delay > 0:
                    policy.sleep(delay)
        pending = sorted(retry_next)
    if len(results) != n:
        missing = sorted(set(range(n)) - set(results))
        raise _shard_error(
            f"result-completeness check failed: shard task(s) {missing} "
            f"unaccounted for before merge",
            failures, plan,
        )
    return [results[i] for i in range(n)]
