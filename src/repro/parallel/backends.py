"""Pluggable execution backends for sharded query evaluation.

A backend is anything with a ``map(fn, items)`` returning the results in
item order.  Three are built in:

* :class:`SerialBackend` — a plain loop in the calling thread; the
  baseline every differential test compares against, and the right
  choice for tiny inputs where fan-out overhead dominates;
* :class:`ThreadBackend` — ``concurrent.futures.ThreadPoolExecutor``;
  helps when shard work releases the GIL (NumPy batch predicates);
* :class:`ProcessBackend` — ``concurrent.futures.ProcessPoolExecutor``;
  true multi-core parallelism for the pure-Python segment scans.  Task
  functions must be module-level and payloads picklable.

:func:`get_backend` resolves a backend from its registry name (or passes
an instance through), so callers can say ``backend="processes"``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import EvaluationError

T = TypeVar("T")
R = TypeVar("R")


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware, never below 1)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without sched_getaffinity
        return max(1, os.cpu_count() or 1)


class ExecutionBackend:
    """Maps a function over shard payloads; subclasses define the how."""

    #: Registry name (also used in reports and error messages).
    name = "base"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, returning results in item order."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """The seed path: evaluate shards one after another, in-process."""

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]


class _PoolBackend(ExecutionBackend):
    """Shared sizing logic for the pool-based backends."""

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise EvaluationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.max_workers = max_workers

    def _workers_for(self, n_items: int) -> int:
        limit = self.max_workers or available_cpus()
        return max(1, min(limit, n_items))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_workers={self.max_workers})"


class ThreadBackend(_PoolBackend):
    """Fan shards out over a thread pool."""

    name = "threads"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        if len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(
            max_workers=self._workers_for(len(items))
        ) as pool:
            return list(pool.map(fn, items))


class ProcessBackend(_PoolBackend):
    """Fan shards out over worker processes.

    ``fn`` must be defined at module level and every payload picklable —
    the sharded executor's task functions satisfy both.
    """

    name = "processes"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        if len(items) <= 1:
            return [fn(item) for item in items]
        with ProcessPoolExecutor(
            max_workers=self._workers_for(len(items))
        ) as pool:
            return list(pool.map(fn, items))


#: Name -> backend class, for ``backend="<name>"`` resolution.
BACKENDS = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def get_backend(
    backend: "str | ExecutionBackend", max_workers: Optional[int] = None
) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through unchanged)."""
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise EvaluationError(
            f"unknown backend {backend!r}; expected one of "
            f"{sorted(BACKENDS)} or an ExecutionBackend instance"
        ) from None
    if cls is SerialBackend:
        return cls()
    return cls(max_workers=max_workers)
