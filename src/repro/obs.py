"""Pipeline observability: named counters and per-stage wall-clock timers.

The Section 5 pipeline (geometric subquery → index build → trajectory
segment scan) is the workload the benchmarks ablate, and every stage used
to carry its own ad-hoc statistics object (``EvaluationStats`` fields,
the ``EvaluationContext.stats`` dict, per-benchmark counters).  This
module generalizes them into one small instrumentation vocabulary:

* :class:`PipelineStats` — a bag of *named counters* (``incr``/``count``)
  and *named stage timers* (``stage`` context manager accumulating call
  counts and seconds);
* :class:`EvaluationStats` — the historical trajectory-scan statistics,
  now a :class:`PipelineStats` specialization whose legacy attributes
  (``segment_checks``, ``bbox_rejections``, …) are views over named
  counters, so new code and old code observe the same numbers.

Counter names used by the built-in pipeline (see ``docs/API.md``):

``grid_index_builds`` / ``grid_index_cache_hits``
    :meth:`repro.query.EvaluationContext.geometry_index` cache behavior.
``vectorized_accepts``
    Objects accepted by the columnar point-in-polygon prefilter without a
    segment scan.
``segment_checks`` / ``bbox_rejections`` / ``objects_scanned`` /
``objects_matched``
    The trajectory-intersection counter (both indexed and naive paths).

``shard_count`` / ``merge_ms``
    :class:`repro.parallel.ShardedExecutor` fan-out: shards dispatched,
    and merge wall time rounded to milliseconds (the exact figure is the
    ``merge`` stage timer).

``fault_injected`` / ``task_retries`` / ``task_timeouts`` /
``backend_degradations``
    The resilient execution layer (:func:`repro.parallel.backends
    .resilient_map`): faults fired from a :class:`~repro.faults
    .FaultPlan`, task attempts re-scheduled, attempts that exceeded the
    :class:`~repro.parallel.backends.RetryPolicy` timeout, and backend
    steps down the degradation ladder (``processes`` → ``threads`` →
    ``serial``).  All zero on the fast path (no plan, no policy,
    ``failure_mode="raise"``).

``clip_kernel_segments`` / ``clip_kernel_fallback``
    The vectorized clip kernel (:mod:`repro.geometry.kernels`): segments
    classified in batch, and the subset that fell back to the scalar
    near-boundary path (``Polygon.clip_segment``).  The fallback share
    is the kernel's efficiency figure; exactness is unconditional.

``zero_copy_blocks`` / ``zero_copy_fallbacks``
    Zero-copy shard transport (:mod:`repro.parallel.shm`): shared-memory
    blocks created for fan-outs, and fan-outs that fell back to pickled
    shard payloads (object ids not encodable as str/int).
``bytes_serialized`` / ``peak_shard_payload_bytes``
    Payload accounting, recorded only under
    ``ShardedExecutor(track_payload_bytes=True)``: total pickled task
    payload bytes across a fan-out, and the largest single payload (a
    *gauge* holding the maximum seen).  Descriptor-sized payloads on the
    zero-copy route, O(rows) on the pickled route — the figure
    ``benchmarks/bench_zero_copy_shards.py`` gates on.

``preagg_hits`` / ``preagg_misses``
    Planner routing through the materialized pre-aggregation layer
    (:mod:`repro.preagg`): a hit means the covered part of the query was
    answered from store cells, a miss that a registered store existed
    but could not serve (stale, unmaterialized geometry, window without
    a whole granule).  Contexts with no registered store count neither.
``sliver_scan_rows``
    MOFT rows handed to the residual scan when a misaligned window
    routes through a store (the hybrid path's scan cost).

``scan_rows``
    MOFT rows handed to a trajectory scan (every
    :meth:`~repro.query.evaluator.TrajectoryIntersectionCounter
    .matching_objects` call adds the scanned table's length); the
    cost-based planner reads this back as a plan node's *actual rows*.

``jobs_submitted`` / ``jobs_rejected`` / ``jobs_claimed`` /
``jobs_completed`` / ``jobs_failed`` / ``jobs_dead`` /
``jobs_cancelled`` / ``jobs_requeued`` / ``jobs_reclaimed`` /
``worker_crashes``
    The query service layer (:mod:`repro.service`): submissions accepted
    into the queue, submissions bounced by admission control, claims
    handed to workers, terminal outcomes by kind, failed attempts put
    back on the queue for retry, expired leases released by the reaper,
    and workers killed mid-job by an injected fault.
``queue_depth`` / ``jobs_in_flight`` / ``workers_busy``
    Service *gauges* (set via :meth:`PipelineStats.gauge`, not summed):
    currently queued jobs, jobs anywhere between submit and a terminal
    state, and workers currently executing a claim.

``samples_submitted`` / ``samples_ingested`` / ``samples_late`` /
``ingest_batches`` / ``ingest_flushes`` / ``compactions``
    The streaming-ingest layer (:mod:`repro.ingest`): samples handed to
    :meth:`~repro.ingest.StreamingIngestor.submit`, samples sealed into
    published delta segments, samples routed to the late side channel
    (beyond the watermark — counted, kept, never silently dropped),
    batches accepted, watermark flushes that published a segment, and
    segment-chain compactions.  Exhaustiveness invariant at any instant:
    ``samples_submitted == samples_ingested + samples_late +
    samples_buffered``.
``samples_buffered`` / ``watermark_lag`` / ``snapshot_count`` /
``moft_segments``
    Ingest *gauges*: samples above the watermark awaiting their seal,
    how far (event-time units, truncated to int) the watermark trails
    the newest event seen, total snapshots published on the version
    chain, and segments in the current head (drops to 1 at each
    compaction).

``disc_kernel_segments``
    Trajectory pieces classified against a place-of-interest disc by the
    vectorized quadratic clip (:func:`repro.geometry.kernels
    .disc_clip_batch`), whichever backend ran.
``stop_episodes`` / ``poi_visits``
    The stop/move layer (:mod:`repro.poi`): stop episodes produced by
    :func:`~repro.poi.segment_stops_moves`, and per-(POI, granule) visit
    attributions folded into cells by :func:`~repro.poi.poi_cells`.
``poi_preagg_hits`` / ``poi_preagg_misses``
    POI aggregate routing (:mod:`repro.query.poi`): queries served from
    a registered fresh :class:`~repro.poi.PoiVisitStore`, and queries
    that found registered stores but none fresh and covering.
``poi_store_updates``
    Incremental maintenance: :meth:`~repro.poi.PoiVisitStore.update`
    calls that actually folded (delta or rebuild; ``fresh`` no-ops
    don't count).

Stage names: ``geometric_subquery``, ``index_build``, ``segment_scan``;
the sharded executor adds ``shard_fanout`` (dispatch-to-last-result wall
time), ``shard_scan`` (per-shard work, one call per shard, summed across
shards), ``merge``, and ``retry_backoff`` (deterministic backoff sleeps
between retry rounds); the pre-aggregation layer adds ``preagg_build``,
``preagg_update`` (store maintenance) and ``preagg_lookup`` (planner
routing + cell reads); the query service adds ``service_queue_wait``
(submit-to-claim latency, one call per claim), ``service_run``
(claim-to-outcome execution wall time, one call per finished attempt)
and ``worker_idle`` (poll sleeps of workers with nothing to claim —
utilization is ``service_run / (service_run + worker_idle)``); the
streaming-ingest layer adds ``ingest_fold`` (seal → publish → clone →
store fold, one call per flush) and ``compaction`` (segment-chain
collapse, one call per compaction).

Thread safety: counters and stage timers are mutated from worker threads
by the ``threads`` backend of :mod:`repro.parallel`, so every read-modify-
write on a :class:`PipelineStats` goes through one re-entrant lock —
``incr``, ``record``, ``stage`` entry/exit, ``merge``, ``reset`` and the
snapshot helpers are all atomic.  Instances stay picklable (the
``processes`` backend ships worker stats back to the parent): the lock is
dropped on pickle and recreated on unpickle.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional


class StageTimer:
    """Accumulated wall time of one named pipeline stage."""

    __slots__ = ("calls", "seconds")

    def __init__(self, calls: int = 0, seconds: float = 0.0) -> None:
        self.calls = calls
        self.seconds = seconds

    def record(self, seconds: float) -> None:
        """Add one timed call."""
        self.calls += 1
        self.seconds += seconds

    def __repr__(self) -> str:
        return f"StageTimer(calls={self.calls}, seconds={self.seconds:.6f})"


class PipelineStats:
    """Named counters plus per-stage timers for one pipeline run.

    Counters spring into existence at zero on first use; stages likewise.
    Instances are cheap and composable — evaluation entry points accept an
    optional instance and create a throwaway one when none is given.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.stages: Dict[str, StageTimer] = {}
        self._lock = threading.RLock()

    # -- pickling (the processes backend ships stats across the pool) --------

    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # -- counters ------------------------------------------------------------

    def incr(self, name: str, by: int = 1) -> int:
        """Add ``by`` to a named counter; returns the new value (atomic)."""
        with self._lock:
            value = self.counters.get(name, 0) + by
            self.counters[name] = value
            return value

    def count(self, name: str) -> int:
        """Current value of a named counter (0 if never incremented)."""
        return self.counters.get(name, 0)

    def gauge(self, name: str, value: int) -> int:
        """Set a named counter to a point-in-time value (atomic).

        Gauges share the counter namespace but are *set*, not summed —
        the query service keeps ``queue_depth`` / ``jobs_in_flight`` /
        ``workers_busy`` current this way.  Do not :meth:`merge` stats
        objects that both carry the same gauge: merge adds.
        """
        with self._lock:
            value = int(value)
            self.counters[name] = value
            return value

    # -- timers --------------------------------------------------------------

    def timer(self, name: str) -> StageTimer:
        """Return (creating if needed) the timer of a named stage."""
        with self._lock:
            timer = self.stages.get(name)
            if timer is None:
                timer = self.stages[name] = StageTimer()
            return timer

    @contextmanager
    def stage(self, name: str) -> Iterator[StageTimer]:
        """Time a ``with`` block under a stage name (re-entrant, additive)."""
        timer = self.timer(name)
        start = time.perf_counter()
        try:
            yield timer
        finally:
            self.record(name, time.perf_counter() - start)

    def record(self, name: str, seconds: float) -> StageTimer:
        """Record one externally-timed call under a stage name (atomic).

        The sharded executor uses this for per-shard timings: workers
        (possibly in other processes) measure their own wall time and the
        parent folds each measurement into its observer.
        """
        with self._lock:
            timer = self.timer(name)
            timer.record(float(seconds))
            return timer

    def seconds(self, name: str) -> float:
        """Accumulated seconds of a stage (0.0 if never entered)."""
        timer = self.stages.get(name)
        return timer.seconds if timer is not None else 0.0

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "PipelineStats") -> "PipelineStats":
        """Fold another instance's counters and timers into this one.

        Atomic on *this* instance; ``other`` should be quiescent (a
        returned worker's stats), as its dicts are iterated unlocked.
        """
        with self._lock:
            for name, value in other.counters.items():
                self.incr(name, value)
            for name, timer in other.stages.items():
                mine = self.timer(name)
                mine.calls += timer.calls
                mine.seconds += timer.seconds
            return self

    def reset(self) -> None:
        """Zero every counter and timer."""
        with self._lock:
            self.counters.clear()
            self.stages.clear()

    def as_dict(self) -> Dict[str, float]:
        """Flat report: counters verbatim, stages as ``<name>_seconds``."""
        with self._lock:
            report: Dict[str, float] = dict(self.counters)
            for name, timer in self.stages.items():
                report[f"{name}_seconds"] = timer.seconds
                report[f"{name}_calls"] = timer.calls
            return report

    # -- deltas (plan-node actuals) ------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """An atomic flat copy of every counter and stage figure.

        Pair with :meth:`since` to attribute counters and wall time to
        one bounded piece of work (the cost-based planner brackets each
        plan execution this way to report *actual* rows and stage
        seconds next to its estimates).
        """
        return self.as_dict()

    def since(self, snapshot: Mapping[str, float]) -> Dict[str, float]:
        """The change of every counter/stage figure since a snapshot.

        Returns only non-zero deltas; figures absent from the snapshot
        count from zero.  Counters stay ints, stage figures stay floats.
        """
        current = self.as_dict()
        delta: Dict[str, float] = {}
        for name, value in current.items():
            change = value - snapshot.get(name, 0)
            if change:
                delta[name] = change
        return delta

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(counters={self.counters}, "
            f"stages={self.stages})"
        )


def _legacy_counter(name: str) -> property:
    """An attribute view over a named counter (supports ``stats.x += 1``)."""

    def _get(self: "EvaluationStats") -> int:
        return self.count(name)

    def _set(self: "EvaluationStats", value: int) -> None:
        with self._lock:
            self.counters[name] = int(value)

    return property(_get, _set, doc=f"View over the {name!r} counter.")


class EvaluationStats(PipelineStats):
    """Trajectory-scan statistics of one evaluation (Section 5, step 2).

    Historically a fixed dataclass; now the fixed fields are views over
    :class:`PipelineStats` named counters so the scan shares one
    instrumentation vocabulary with the rest of the pipeline.  Extra
    counters (``vectorized_accepts``, index cache counters merged in from
    a context) ride along in :attr:`counters` and show up in
    :meth:`as_dict`.
    """

    #: The stage name backing :attr:`elapsed_seconds`.
    SCAN_STAGE = "segment_scan"

    segment_checks = _legacy_counter("segment_checks")
    bbox_rejections = _legacy_counter("bbox_rejections")
    objects_scanned = _legacy_counter("objects_scanned")
    objects_matched = _legacy_counter("objects_matched")

    def __init__(
        self,
        segment_checks: int = 0,
        bbox_rejections: int = 0,
        objects_scanned: int = 0,
        objects_matched: int = 0,
        elapsed_seconds: float = 0.0,
    ) -> None:
        super().__init__()
        if segment_checks:
            self.segment_checks = segment_checks
        if bbox_rejections:
            self.bbox_rejections = bbox_rejections
        if objects_scanned:
            self.objects_scanned = objects_scanned
        if objects_matched:
            self.objects_matched = objects_matched
        if elapsed_seconds:
            self.elapsed_seconds = elapsed_seconds

    @property
    def elapsed_seconds(self) -> float:
        """Wall seconds of the segment-scan stage."""
        return self.seconds(self.SCAN_STAGE)

    @elapsed_seconds.setter
    def elapsed_seconds(self, value: float) -> None:
        with self._lock:
            timer = self.timer(self.SCAN_STAGE)
            timer.seconds = float(value)
            if timer.calls == 0 and value:
                timer.calls = 1

    def as_dict(self) -> Dict[str, float]:
        """Flat report; always includes the legacy field names."""
        report: Dict[str, float] = {
            "segment_checks": self.segment_checks,
            "bbox_rejections": self.bbox_rejections,
            "objects_scanned": self.objects_scanned,
            "objects_matched": self.objects_matched,
            "elapsed_seconds": self.elapsed_seconds,
        }
        for name, value in self.counters.items():
            report.setdefault(name, value)
        for name, timer in self.stages.items():
            if name != self.SCAN_STAGE:
                report[f"{name}_seconds"] = timer.seconds
        return report


__all__ = ["StageTimer", "PipelineStats", "EvaluationStats"]
