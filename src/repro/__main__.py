"""``python -m repro`` — the command-line entry point.

Two subcommands:

* ``demo`` (the default) — renders the paper's Figure 1 as ASCII, runs
  the Remark 1 query and prints the 4/3 answer with its breakdown;
* ``info PATH`` — reads a MOFT CSV dump (``oid,t,x,y`` with a header)
  and prints a one-screen summary: rows, objects, time span, bounding
  box.

Failure semantics: bad input (a missing file, a malformed CSV) exits
with status 2 and a single ``error: ...`` line on stderr — never a
traceback.  Every domain failure is a typed
:class:`~repro.errors.ReproError` subclass, which is what makes that
guarantee enforceable (see ``tests/test_cli.py``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.errors import ReproError


def _run_demo() -> int:
    from repro.query import (
        AggregateSpec,
        MovingObjectAggregateQuery,
        RegionBuilder,
        count_per_group,
    )
    from repro.synth import LOW_INCOME_THRESHOLD, figure1_instance
    from repro.viz import render_figure1

    print("Figure 1 demo: the paper's running example.")
    print()
    print(render_figure1(width=64, height=20))
    print()
    world = figure1_instance()
    ctx = world.context()
    region = (
        RegionBuilder()
        .from_moft("FMbus")
        .during("timeOfDay", "Morning")
        .in_attribute_polygon(
            "neighborhood", value_filter=("income", "<", LOW_INCOME_THRESHOLD)
        )
        .build(world.gis)
    )
    query = MovingObjectAggregateQuery(
        region,
        AggregateSpec(per_span_level="timeOfDay", per_span_member="Morning"),
    )
    answer = query.run_scalar(ctx)
    per_object = count_per_group(region, ctx, ["oid"])
    print(
        "Buses per hour in the morning in neighborhoods with income "
        f"< {LOW_INCOME_THRESHOLD}: {answer:.4f}  (paper's Remark 1: 4/3)"
    )
    print(
        "Contributions: "
        + ", ".join(f"{k[0]}×{v:.0f}" for k, v in sorted(per_object.items()))
    )
    return 0


def _run_info(path: str) -> int:
    from repro.mo.io import read_csv

    moft = read_csv(path)
    print(f"MOFT CSV: {path}")
    print(f"  rows:    {len(moft)}")
    print(f"  objects: {len(moft.objects())}")
    if len(moft):
        t_min, t_max = moft.time_range()
        box = moft.bbox()
        print(f"  time:    [{t_min:g}, {t_max:g}]")
        print(
            f"  bbox:    ({box.min_x:g}, {box.min_y:g}) — "
            f"({box.max_x:g}, {box.max_y:g})"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Moving-object aggregation (Kuijpers & Vaisman, ICDE 2007): "
            "run the Figure 1 demo or inspect a MOFT CSV dump."
        ),
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("demo", help="render Figure 1 and run the Remark 1 query")
    info = sub.add_parser("info", help="summarize a MOFT CSV file")
    info.add_argument("path", help="path to a MOFT CSV (oid,t,x,y header)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "info":
            return _run_info(args.path)
        return _run_demo()
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
