"""``python -m repro`` — a one-screen demonstration.

Renders the paper's Figure 1 as ASCII, runs the Remark 1 query and prints
the 4/3 answer with its breakdown.
"""

from repro.query import MovingObjectAggregateQuery, AggregateSpec, RegionBuilder, count_per_group
from repro.synth import LOW_INCOME_THRESHOLD, figure1_instance
from repro.viz import render_figure1


def main() -> None:
    """Entry point for ``python -m repro``."""
    print(__doc__.strip().splitlines()[0])
    print()
    print(render_figure1(width=64, height=20))
    print()
    world = figure1_instance()
    ctx = world.context()
    region = (
        RegionBuilder()
        .from_moft("FMbus")
        .during("timeOfDay", "Morning")
        .in_attribute_polygon(
            "neighborhood", value_filter=("income", "<", LOW_INCOME_THRESHOLD)
        )
        .build(world.gis)
    )
    query = MovingObjectAggregateQuery(
        region,
        AggregateSpec(per_span_level="timeOfDay", per_span_member="Morning"),
    )
    answer = query.run_scalar(ctx)
    per_object = count_per_group(region, ctx, ["oid"])
    print(
        "Buses per hour in the morning in neighborhoods with income "
        f"< {LOW_INCOME_THRESHOLD}: {answer:.4f}  (paper's Remark 1: 4/3)"
    )
    print(
        "Contributions: "
        + ", ".join(f"{k[0]}×{v:.0f}" for k, v in sorted(per_object.items()))
    )


if __name__ == "__main__":
    main()
