"""``python -m repro`` — the command-line entry point.

Subcommands:

* ``demo`` (the default) — renders the paper's Figure 1 as ASCII, runs
  the Remark 1 query and prints the 4/3 answer with its breakdown;
* ``info PATH`` — reads a MOFT dump (CSV with an ``oid,t,x,y`` header,
  or a columnar ``.moft`` file — sniffed by magic) and prints a
  one-screen summary: rows, objects, time span, bounding box;
* ``convert SRC DST`` — converts between the CSV and columnar MOFT
  formats (``repro.mo.storage``).  The source format is sniffed by
  magic bytes; the destination format follows its extension (``.csv``
  writes CSV, anything else writes columnar);
* ``ingest PATH`` — streams a MOFT CSV through the watermarked ingest
  pipeline (``repro.ingest``) in batches against a named world's
  dimensions, then prints the accounting: samples
  submitted/ingested/late, flushes, compactions, final snapshot
  version (see ``docs/ingest.md``);
* ``poi`` — builds a POI world (Figure 1 with its places of interest,
  or the synthetic city with schools/stores promoted to discs and a
  stop-biased population), runs the stop/move segmentation and prints
  visits, dwell, top-k places and the planner's EXPLAIN route (see
  ``docs/poi.md``);
* the query-service verbs (see ``docs/service.md``), all sharing a
  SQLite-backed durable job queue file (``--db``):

  - ``submit`` — admission-checked enqueue of a Piet-QL string or a
    builder-API ``--through`` count spec; prints the job id;
  - ``serve`` — run a worker pool over the queue (``--drain``
    processes everything queued, then exits — the batch mode the
    tests and CI drive);
  - ``status JOB`` — one-screen job record: state, attempts, error,
    fault trace, metrics snapshot;
  - ``result JOB`` — the canonical result JSON of a ``done`` job (and
    its EXPLAIN plan with ``--explain``).

Failure semantics: bad input (a missing file, a malformed CSV or query,
a rejected admission, an unknown job id) exits with status 2 and a
single ``error: ...`` line on stderr — never a traceback.  Every domain
failure is a typed :class:`~repro.errors.ReproError` subclass, which is
what makes that guarantee enforceable (see ``tests/test_cli.py``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.errors import ReproError, ServiceError


def _run_demo() -> int:
    from repro.query import (
        AggregateSpec,
        MovingObjectAggregateQuery,
        RegionBuilder,
        count_per_group,
    )
    from repro.synth import LOW_INCOME_THRESHOLD, figure1_instance
    from repro.viz import render_figure1

    print("Figure 1 demo: the paper's running example.")
    print()
    print(render_figure1(width=64, height=20))
    print()
    world = figure1_instance()
    ctx = world.context()
    region = (
        RegionBuilder()
        .from_moft("FMbus")
        .during("timeOfDay", "Morning")
        .in_attribute_polygon(
            "neighborhood", value_filter=("income", "<", LOW_INCOME_THRESHOLD)
        )
        .build(world.gis)
    )
    query = MovingObjectAggregateQuery(
        region,
        AggregateSpec(per_span_level="timeOfDay", per_span_member="Morning"),
    )
    answer = query.run_scalar(ctx)
    per_object = count_per_group(region, ctx, ["oid"])
    print(
        "Buses per hour in the morning in neighborhoods with income "
        f"< {LOW_INCOME_THRESHOLD}: {answer:.4f}  (paper's Remark 1: 4/3)"
    )
    print(
        "Contributions: "
        + ", ".join(f"{k[0]}×{v:.0f}" for k, v in sorted(per_object.items()))
    )
    return 0


def _load_any_moft(path: str):
    """Load ``path`` as columnar (sniffed by magic) or CSV; returns
    ``(moft, format_name)``."""
    from repro.mo import storage
    from repro.mo.io import read_csv

    if storage.is_columnar_file(path):
        return storage.load_moft(path), "columnar"
    return read_csv(path), "CSV"


def _run_info(path: str) -> int:
    moft, fmt = _load_any_moft(path)
    print(f"MOFT {fmt}: {path}")
    print(f"  rows:    {len(moft)}")
    print(f"  objects: {len(moft.objects())}")
    if len(moft):
        t_min, t_max = moft.time_range()
        box = moft.bbox()
        print(f"  time:    [{t_min:g}, {t_max:g}]")
        print(
            f"  bbox:    ({box.min_x:g}, {box.min_y:g}) — "
            f"({box.max_x:g}, {box.max_y:g})"
        )
    return 0


def _run_convert(args) -> int:
    import os

    from repro.mo import storage
    from repro.mo.io import write_csv

    moft, src_fmt = _load_any_moft(args.src)
    to_csv = os.path.splitext(args.dst)[1].lower() == ".csv"
    if to_csv:
        write_csv(moft, args.dst)
        dst_fmt, nbytes = "CSV", os.path.getsize(args.dst)
    else:
        dst_fmt = "columnar"
        nbytes = storage.save_moft(
            moft, args.dst, include_index=not args.no_index
        )
    print(
        f"converted {args.src} ({src_fmt}) -> {args.dst} ({dst_fmt}): "
        f"{len(moft)} rows, {len(moft.objects())} objects, "
        f"{nbytes} bytes"
    )
    return 0


def _run_ingest(args) -> int:
    from repro.gis import POLYGON
    from repro.ingest import IngestConfig, StoreSpec, StreamingIngestor
    from repro.mo.io import read_csv
    from repro.service import load_world

    world = load_world(args.world)
    context = world.context
    moft_name = "FMbus" if args.world == "fig1" else "FM"
    # Hour-of-day granules wrap on the 100-instant synth clock; its
    # streaming store maintains day granules (matching load_world).
    granule = "hour" if args.world == "fig1" else "day"
    data = read_csv(args.path, name=moft_name)
    ingestor = StreamingIngestor(
        context.gis,
        context.time,
        moft_name=moft_name,
        config=IngestConfig(
            allowed_lateness=args.lateness,
            compact_every=args.compact_every,
        ),
        store_specs=[StoreSpec(granule, "Ln", POLYGON)],
    )
    t, x, y = data.as_arrays()
    oids = data.oid_column()
    batch = max(1, args.batch_size)
    for i in range(0, len(data), batch):
        j = min(i + batch, len(data))
        ingestor.submit(
            oids[i:j].tolist(),
            t[i:j].tolist(),
            x[i:j].tolist(),
            y[i:j].tolist(),
        )
    snapshot = ingestor.close()
    counters = ingestor.obs.counters
    head = ingestor.chain.head
    print(f"ingested {args.path} into world {args.world!r} ({moft_name})")
    print(
        f"  samples:     {counters.get('samples_submitted', 0)} submitted, "
        f"{counters.get('samples_ingested', 0)} ingested, "
        f"{counters.get('samples_late', 0)} late"
    )
    print(
        f"  pipeline:    {counters.get('ingest_batches', 0)} batch(es), "
        f"{counters.get('ingest_flushes', 0)} flush(es), "
        f"{counters.get('compactions', 0)} compaction(s)"
    )
    print(
        f"  head:        version {snapshot.ordinal}, {snapshot.rows} rows, "
        f"{len(head.segments)} segment(s), "
        f"watermark {snapshot.watermark:g}"
    )
    return 0


# -- service verbs -------------------------------------------------------------


def _parse_target(text: str):
    parts = text.split(":")
    if len(parts) != 2 or not all(parts):
        raise ServiceError(
            f"target must be LAYER:KIND (e.g. Ln:polygon), got {text!r}"
        )
    return (parts[0], parts[1])


def _parse_constraint(text: str):
    parts = text.split(":")
    if len(parts) != 3 or not all(parts):
        raise ServiceError(
            "constraint must be RELATION:LAYER:KIND "
            f"(e.g. intersects:Lr:polyline), got {text!r}"
        )
    return (parts[0], (parts[1], parts[2]))


def _parse_window(text: str):
    parts = text.split(":")
    try:
        start, end = (float(parts[0]), float(parts[1]))
    except (ValueError, IndexError):
        raise ServiceError(
            f"window must be START:END (two numbers), got {text!r}"
        ) from None
    return (start, end)


def _build_spec(args):
    from repro.service import QuerySpec

    if args.through is not None:
        if args.query is not None:
            raise ServiceError(
                "pass either a Piet-QL query or --through, not both"
            )
        return QuerySpec.through(
            _parse_target(args.through),
            [_parse_constraint(c) for c in args.constraint],
            moft_name=args.moft,
            window=(
                _parse_window(args.window)
                if args.window is not None
                else None
            ),
        )
    if args.query is None:
        raise ServiceError(
            "nothing to submit: pass a Piet-QL query string or --through"
        )
    return QuerySpec.pietql(args.query)


def _run_submit(args) -> int:
    from repro.service import (
        AdmissionController,
        AdmissionPolicy,
        SQLiteJobQueue,
    )

    spec = _build_spec(args)
    queue = SQLiteJobQueue(args.db)
    try:
        admission = AdmissionController(
            AdmissionPolicy(
                max_queue_depth=args.max_depth,
                max_in_flight_per_client=args.max_inflight,
            ),
            obs=queue.obs,
        )
        with queue._lock:
            admission.admit(queue, args.client)
            job = queue.enqueue(
                spec, client_id=args.client, max_retries=args.retries
            )
        print(job.job_id)
        print(
            f"queued {spec.describe()} (depth={queue.depth()})",
            file=sys.stderr,
        )
        return 0
    finally:
        queue.close()


def _run_serve(args) -> int:
    from repro.service import SQLiteJobQueue, WorkerPool, load_world

    world = load_world(args.world)
    queue = SQLiteJobQueue(args.db)
    pool = WorkerPool(
        queue,
        world,
        n_workers=args.workers,
        lease_s=args.lease,
        backend=args.backend,
    )
    try:
        with pool:
            if args.drain:
                pool.drain(timeout=args.timeout)
            else:  # pragma: no cover - interactive mode
                print(
                    f"serving world {args.world!r} from {args.db} "
                    f"with {args.workers} worker(s); Ctrl-C to stop"
                )
                try:
                    while True:
                        pool._stop.wait(0.5)
                except KeyboardInterrupt:
                    pass
        counts = queue.counts()
        print(
            f"queue {args.db}: "
            + " ".join(f"{s}={counts[s]}" for s in sorted(counts))
        )
        return 0
    finally:
        queue.close()


def _format_job(job, verbose: bool = True) -> str:
    lines = [f"job {job.job_id}: {job.state}"]
    lines.append(f"  client:   {job.client_id}")
    lines.append(f"  query:    {job.spec.describe()}")
    lines.append(
        f"  attempts: {job.attempts} (max_retries={job.max_retries})"
    )
    if job.worker_id:
        lines.append(f"  worker:   {job.worker_id}")
    if job.error:
        lines.append(f"  error:    {job.error}")
    if job.fault_trace:
        lines.append(f"  faults:   {job.fault_trace}")
    if verbose and job.metrics_json:
        lines.append(f"  metrics:  {job.metrics_json}")
    return "\n".join(lines)


def _run_status(args) -> int:
    from repro.service import SQLiteJobQueue

    queue = SQLiteJobQueue(args.db)
    try:
        print(_format_job(queue.get(args.job_id)))
        return 0
    finally:
        queue.close()


def _run_result(args) -> int:
    from repro.errors import JobFailedError, JobStateError
    from repro.service import SQLiteJobQueue

    queue = SQLiteJobQueue(args.db)
    try:
        job = queue.get(args.job_id)
        if job.state in ("failed", "dead"):
            raise JobFailedError(
                f"job {args.job_id} is {job.state}: {job.error}"
                + (f" [faults: {job.fault_trace}]" if job.fault_trace else ""),
                error=job.error,
            )
        if job.state != "done":
            raise JobStateError(
                f"job {args.job_id} has no result yet "
                f"(state={job.state!r})"
            )
        print(job.result_json)
        if args.explain and job.explain:
            print(job.explain, file=sys.stderr)
        return 0
    finally:
        queue.close()



def _run_poi(args) -> int:
    from repro.query.poi import PoiQueryBuilder
    from repro.query.region import EvaluationContext

    if args.world == "fig1":
        from repro.synth import figure1_instance

        world = figure1_instance(with_pois=True)
        context = world.context()
        moft_name, layer = "FMbus", "Lp"
        granule = args.granule or "hour"
    else:
        from datetime import datetime

        import numpy as np

        from repro.synth import (
            CityConfig,
            build_city,
            install_city_pois,
            stop_biased_moft,
        )
        from repro.temporal.calendar import hourly
        from repro.temporal.timedim import TimeDimension

        city = build_city(
            CityConfig(cols=6, rows=6), rng=np.random.default_rng(20060109)
        )
        pois = install_city_pois(city, radius=args.radius)
        n_instants = 100
        time_dim = TimeDimension.from_mapping(
            hourly(datetime(2006, 1, 9, 0, 0)), range(n_instants)
        )
        moft = stop_biased_moft(pois, args.objects, n_instants)
        context = EvaluationContext(city.gis, time_dim, moft)
        moft_name, layer = "FM", "Lp"
        granule = args.granule or "day"

    builder = (
        PoiQueryBuilder(layer, moft_name)
        .per(granule)
        .with_min_dwell(args.min_dwell)
    )
    visits = builder.visits(context)
    dwell = builder.dwell(context)
    topk = builder.top_k(context, args.k)
    plan = builder.explain(context, measure="topk")
    n_pois = len(context.gis.layer(layer).elements("poi"))
    print(
        f"POI world {args.world!r}: {n_pois} places, "
        f"granule level {granule!r}, min_dwell {args.min_dwell:g}"
    )
    print(f"  visited cells: {len(visits)}, total visits "
          f"{sum(visits.values())}, dwell {sum(dwell.values()):.3f}")
    for member in sorted(topk, key=repr):
        ranked = ", ".join(
            f"{gid}×{count}" for gid, count in topk[member]
        )
        print(f"  top-{args.k} @ {member}: {ranked}")
    print()
    print(plan.render())
    counters = context.obs.counters
    interesting = (
        "stop_episodes",
        "poi_visits",
        "poi_preagg_hits",
        "disc_kernel_segments",
    )
    shown = {k: counters[k] for k in interesting if k in counters}
    if shown:
        print("counters: " + ", ".join(f"{k}={v}" for k, v in shown.items()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Moving-object aggregation (Kuijpers & Vaisman, ICDE 2007): "
            "run the Figure 1 demo, inspect a MOFT CSV dump, or operate "
            "the durable query service (submit/serve/status/result)."
        ),
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("demo", help="render Figure 1 and run the Remark 1 query")
    info = sub.add_parser("info", help="summarize a MOFT file (CSV or columnar)")
    info.add_argument(
        "path", help="path to a MOFT CSV (oid,t,x,y header) or columnar file"
    )

    convert = sub.add_parser(
        "convert",
        help="convert a MOFT between CSV and the columnar format",
    )
    convert.add_argument(
        "src", help="source MOFT file (CSV or columnar; sniffed by magic)"
    )
    convert.add_argument(
        "dst",
        help="destination path (.csv writes CSV, anything else columnar)",
    )
    convert.add_argument(
        "--no-index", action="store_true",
        help="omit the per-object sorted index from columnar output",
    )

    ingest = sub.add_parser(
        "ingest",
        help="stream a MOFT CSV through the watermarked ingest pipeline",
    )
    ingest.add_argument(
        "path",
        help="MOFT CSV to stream (instants must be registered in the "
        "chosen world's Time dimension)",
    )
    ingest.add_argument(
        "--world", default="fig1", choices=("fig1", "synth"),
        help="world providing the GIS and Time dimensions (default fig1)",
    )
    ingest.add_argument(
        "--batch-size", type=int, default=64,
        help="samples per submitted batch (default 64)",
    )
    ingest.add_argument(
        "--lateness", type=float, default=0.0,
        help="allowed lateness in event-time units (default 0)",
    )
    ingest.add_argument(
        "--compact-every", type=int, default=8,
        help="compact the segment chain every N segments (default 8; "
        "0 disables background compaction)",
    )

    poi = sub.add_parser(
        "poi",
        help="run the places-of-interest stop/move aggregation demo",
    )
    poi.add_argument(
        "--world", default="fig1", choices=("fig1", "synth"),
        help="POI world: Figure 1 places or the synthetic city "
        "(default fig1)",
    )
    poi.add_argument(
        "--granule", default=None,
        help="Time granule level (default: hour for fig1, day for synth)",
    )
    poi.add_argument(
        "--radius", type=float, default=None,
        help="synth disc radius (default: a quarter block)",
    )
    poi.add_argument(
        "--min-dwell", type=float, default=0.0, dest="min_dwell",
        help="minimum stop duration in event-time units (default 0)",
    )
    poi.add_argument(
        "--k", type=int, default=3,
        help="places per granule in the top-k ranking (default 3)",
    )
    poi.add_argument(
        "--objects", type=int, default=40,
        help="synth population size (default 40)",
    )

    submit = sub.add_parser(
        "submit", help="enqueue a query into a durable job queue"
    )
    submit.add_argument("--db", required=True, help="job queue SQLite file")
    submit.add_argument(
        "query", nargs="?", help="a Piet-QL query string to enqueue"
    )
    submit.add_argument(
        "--through",
        metavar="LAYER:KIND",
        help="builder-API count: target geometries (e.g. Ln:polygon)",
    )
    submit.add_argument(
        "--constraint",
        action="append",
        default=[],
        metavar="REL:LAYER:KIND",
        help="constraint on the target (repeatable), "
        "e.g. intersects:Lr:polyline",
    )
    submit.add_argument(
        "--moft", default="FM", help="MOFT name for --through (default FM)"
    )
    submit.add_argument(
        "--window", metavar="START:END", help="time window for --through"
    )
    submit.add_argument(
        "--client", default="cli", help="client id for admission control"
    )
    submit.add_argument(
        "--max-depth", type=int, default=1024,
        help="admission cap: max queued jobs (default 1024)",
    )
    submit.add_argument(
        "--max-inflight", type=int, default=64,
        help="admission cap: max in-flight jobs per client (default 64)",
    )
    submit.add_argument(
        "--retries", type=int, default=2,
        help="extra attempts granted on retryable failures (default 2)",
    )

    serve = sub.add_parser(
        "serve", help="run a worker pool over a durable job queue"
    )
    serve.add_argument("--db", required=True, help="job queue SQLite file")
    serve.add_argument(
        "--world", default="fig1", choices=("fig1", "synth"),
        help="evaluation world queries run against (default fig1)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="worker threads (default 2)"
    )
    serve.add_argument(
        "--lease", type=float, default=30.0,
        help="claim visibility timeout in seconds (default 30)",
    )
    serve.add_argument(
        "--backend", default="serial",
        choices=("serial", "threads", "processes"),
        help="sharded-executor backend jobs run with (default serial)",
    )
    serve.add_argument(
        "--drain", action="store_true",
        help="process everything queued, then exit",
    )
    serve.add_argument(
        "--timeout", type=float, default=300.0,
        help="--drain timeout in seconds (default 300)",
    )

    status = sub.add_parser("status", help="show one job's record")
    status.add_argument("--db", required=True, help="job queue SQLite file")
    status.add_argument("job_id", help="the job id printed by submit")

    result = sub.add_parser(
        "result", help="print a done job's canonical result JSON"
    )
    result.add_argument("--db", required=True, help="job queue SQLite file")
    result.add_argument("job_id", help="the job id printed by submit")
    result.add_argument(
        "--explain", action="store_true",
        help="also print the stored EXPLAIN plan to stderr",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "info":
            return _run_info(args.path)
        if args.command == "convert":
            return _run_convert(args)
        if args.command == "ingest":
            return _run_ingest(args)
        if args.command == "poi":
            return _run_poi(args)
        if args.command == "submit":
            return _run_submit(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "status":
            return _run_status(args)
        if args.command == "result":
            return _run_result(args)
        return _run_demo()
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
