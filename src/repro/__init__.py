"""repro — a reproduction of "A Data Model for Moving Objects Supporting
Aggregation" (Kuijpers & Vaisman, ICDE 2007).

The library integrates three worlds into one queryable model, exactly as
the paper does:

* a **GIS** of thematic layers with per-layer geometry hierarchies,
  rollup relations and α functions (:mod:`repro.gis`, built on the
  geometry kernel :mod:`repro.geometry`);
* classical **OLAP** dimensions and fact tables, including the Time
  dimension (:mod:`repro.olap`, :mod:`repro.temporal`);
* **moving objects**: the MOFT, trajectory samples and interpolated
  trajectories (:mod:`repro.mo`).

On top sits the paper's contribution (:mod:`repro.query`): spatio-temporal
regions defined by constraint formulas, γ-aggregation over them, the
eight-type query taxonomy, and the overlay-precomputation evaluation
strategy — plus the Piet-QL language (:mod:`repro.pietql`) and synthetic
data generators including the exact Figure 1 instance (:mod:`repro.synth`).

Quickstart::

    from repro.synth import figure1_instance, LOW_INCOME_THRESHOLD
    from repro.query import RegionBuilder

    world = figure1_instance()
    query = (
        RegionBuilder()
        .from_moft("FMbus")
        .during("timeOfDay", "Morning")
        .in_attribute_polygon(
            "neighborhood", value_filter=("income", "<", LOW_INCOME_THRESHOLD)
        )
        .count_query(per_span=("timeOfDay", "Morning"), gis=world.gis)
    )
    print(query.run_scalar(world.context()))  # 1.333… (Remark 1)
"""

from repro.errors import (
    AggregationError,
    EvaluationError,
    GeometryError,
    InstanceError,
    PietQLError,
    PreAggError,
    QueryError,
    ReproError,
    RollupError,
    SchemaError,
    TrajectoryError,
)

__version__ = "1.0.0"

__all__ = [
    "AggregationError",
    "EvaluationError",
    "GeometryError",
    "InstanceError",
    "PietQLError",
    "PreAggError",
    "QueryError",
    "ReproError",
    "RollupError",
    "SchemaError",
    "TrajectoryError",
    "__version__",
]
