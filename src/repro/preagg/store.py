"""The materialized pre-aggregation store: per-(geometry, granule) cells.

The paper's Definition 4 makes geometric aggregation *summable*: once a
measure is attached to finite geometry ids, ``Q = Σ_{g∈C} h'(g)``.  This
module materializes exactly that form for the moving-object workload: a
:class:`PreAggStore` summarizes a MOFT against a set of polygons and a
contiguous time-granule partition (:meth:`repro.temporal.timedim
.TimeDimension.granules`) into cells holding

* ``samples`` — number of samples inside the polygon per granule;
* ``dwell`` — interpolated time spent inside, from intra-granule
  trajectory segments;
* ``present`` — the exact set of objects with a sample inside (sorted
  ``uint32`` oid codes — distinct-count is *not* summable, so the store
  merges id sets, never adds counters);
* ``passers`` — the exact set of objects whose granule-restricted
  trajectory intersects the polygon (trajectory semantics).

Cells alone cannot answer window queries exactly: a segment between
samples in *adjacent* granules exists in neither granule-restricted
scan.  The store therefore also keeps **spanning records** per polygon —
``(oid, granule_a, granule_b, dwell)`` for every trajectory segment whose
endpoints sit in different granules and which intersects the polygon.  A
window covering granules ``i..j`` then answers exactly as

    ∪ passers[g∈i..j]  ∪  { oid of spanning records with i ≤ a, b ≤ j }

because (all sample instants being registered) samples consecutive in the
window restriction are consecutive in the full history.  Misaligned
windows decompose into the maximal covered granule run plus *slivers* at
the edges; the hybrid answer adds a scan over only the objects touching a
sliver (their full window-restricted history), which is exact because a
window segment not accounted by the store has an endpoint in a sliver.

Incremental maintenance: the MOFT is append-only and versioned, so the
store snapshots ``(version, rows)`` and treats ``rows[built:]`` as the
delta.  In-time-order appends are purely additive (new samples extend
cells and add segments; no prior membership ever becomes wrong).
Out-of-order appends are handled per object: the reordered object's
prior contribution is retracted (counts and intra-granule dwell
subtracted, its oid stripped from the id sets, its spanning records
dropped) and its full history refolded — other objects keep the pure
delta path, so a few late samples no longer force a full rebuild.
Only a Time-dimension edit still rebuilds from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import PreAggError
from repro.geometry.index import UniformGridIndex, index_for_geometries
from repro.geometry.kernels import segments_dwell
from repro.geometry.overlay import geometries_intersect
from repro.geometry.point import BoundingBox, Point
from repro.geometry.polygon import Polygon
from repro.geometry.segment import Segment
from repro.mo.moft import MOFT
from repro.obs import PipelineStats
from repro.parallel.merge import union_sorted_ids
from repro.query.vectorized import polygon_contains_batch
from repro.temporal.timedim import GranulePartition, TimeDimension

#: uint32 oid-code dtype used for every stored id set.
OID_DTYPE = np.uint32

_EMPTY_IDS = np.empty(0, dtype=OID_DTYPE)


@dataclass(frozen=True)
class PreAggStoreStats:
    """Planner-facing summary of one store (see :meth:`PreAggStore.stats`).

    The cost-based planner (:mod:`repro.query.planner`) prices the
    pre-aggregation strategy from these figures without touching cells:
    ``granules`` bounds the lookup work, ``built_rows`` is the table
    coverage, and ``stale`` disqualifies the store outright.
    """

    name: str
    granule_level: str
    granules: int
    geometries: int
    objects: int
    built_rows: int
    stale: bool


@dataclass(frozen=True)
class WindowCoverage:
    """How a time window decomposes against a store's granule partition.

    ``run`` is the maximal covered granule run (None: no whole granule —
    the store cannot serve the window); ``aligned`` whether the window
    sits exactly on granule boundaries; ``sliver_rows`` the number of
    MOFT rows a residual sliver scan would have to touch (0 when
    aligned).  Computed without materializing the sliver subtable, so
    the planner can price the hybrid strategy cheaply.
    """

    run: Optional[Tuple[int, int]]
    aligned: bool
    sliver_rows: int

    @property
    def covered(self) -> bool:
        return self.run is not None


@dataclass(frozen=True)
class PreAggCell:
    """One decoded (geometry, granule) cell — for inspection and cubes."""

    samples: int
    dwell: float
    distinct_objects: frozenset
    passing_objects: frozenset

    @property
    def distinct_count(self) -> int:
        """Number of distinct objects sampled inside (exact, from the set)."""
        return len(self.distinct_objects)


class _GidCells:
    """Per-polygon storage: granule-indexed arrays plus spanning records."""

    __slots__ = (
        "samples",
        "dwell",
        "present",
        "passers",
        "span_oid",
        "span_a",
        "span_b",
        "span_dwell",
    )

    def __init__(self, n_granules: int) -> None:
        self.samples = np.zeros(n_granules, dtype=np.int64)
        self.dwell = np.zeros(n_granules, dtype=float)
        self.present: List[np.ndarray] = [_EMPTY_IDS] * n_granules
        self.passers: List[np.ndarray] = [_EMPTY_IDS] * n_granules
        self.span_oid = np.empty(0, dtype=OID_DTYPE)
        self.span_a = np.empty(0, dtype=np.int64)
        self.span_b = np.empty(0, dtype=np.int64)
        self.span_dwell = np.empty(0, dtype=float)

    def span_mask(self, first: int, last: int) -> np.ndarray:
        """Spanning records fully inside the granule run ``first..last``."""
        return (self.span_a >= first) & (self.span_b <= last)


class _DeltaSets:
    """Python-set staging for id-set additions during build/update."""

    def __init__(self) -> None:
        self.present: Dict[Tuple[Hashable, int], Set[int]] = {}
        self.passers: Dict[Tuple[Hashable, int], Set[int]] = {}
        self.spans: Dict[Hashable, List[Tuple[int, int, int, float]]] = {}

    def add_present(self, gid: Hashable, granule: int, code: int) -> None:
        self.present.setdefault((gid, granule), set()).add(code)
        # A sample inside the polygon proves the granule-restricted
        # trajectory hits it (the adjacent intra-granule segment, or the
        # lone-point probe), so presence implies passing.
        self.passers.setdefault((gid, granule), set()).add(code)

    def add_passer(self, gid: Hashable, granule: int, code: int) -> None:
        self.passers.setdefault((gid, granule), set()).add(code)

    def add_span(
        self, gid: Hashable, code: int, a: int, b: int, dwell: float
    ) -> None:
        self.spans.setdefault(gid, []).append((code, a, b, dwell))


def _as_sorted_ids(codes: Iterable[int]) -> np.ndarray:
    return np.array(sorted(codes), dtype=OID_DTYPE)


class PreAggStore:
    """Materialized per-(geometry-id, time-granule) rollup of one MOFT.

    Parameters
    ----------
    moft:
        The base fact table.  Every sample instant must be a registered
        ``timeId`` member (otherwise :class:`PreAggError` — the store
        could not place the sample in any granule).
    time:
        The Time dimension providing the granule partition.
    granule_level:
        The finest materialized level (e.g. ``"hour"`` or ``"day"``);
        must partition the registered instants into contiguous runs.
    geometries:
        ``geometry id -> Polygon`` — typically a layer's polygon
        partition.  Non-polygon geometries are rejected (cells need
        containment and segment clipping).
    layer, kind:
        Optional provenance tags; the planner matches stores to queries
        by ``(moft identity, layer, kind)``.
    obs:
        Observer receiving ``preagg_build`` / ``preagg_update`` stage
        timings.
    """

    def __init__(
        self,
        moft: MOFT,
        time: TimeDimension,
        granule_level: str,
        geometries: Dict[Hashable, Polygon],
        layer: Optional[str] = None,
        kind: Optional[str] = None,
        name: Optional[str] = None,
        obs: Optional[PipelineStats] = None,
        build: bool = True,
    ) -> None:
        if not geometries:
            raise PreAggError("a pre-aggregation store needs >= 1 polygon")
        for gid, geometry in geometries.items():
            if not isinstance(geometry, Polygon):
                raise PreAggError(
                    f"geometry {gid!r} is {type(geometry).__name__}, not a "
                    f"Polygon; the store needs containment and clipping"
                )
        self.moft = moft
        self.time = time
        self.granule_level = granule_level
        self.geometries = dict(geometries)
        self.layer = layer
        self.kind = kind
        self.name = name if name is not None else f"preagg_{moft.name}"
        self.obs = obs if obs is not None else PipelineStats()
        self.gids: Tuple[Hashable, ...] = tuple(
            sorted(self.geometries, key=repr)
        )
        self._gid_set = set(self.gids)
        self._grid: UniformGridIndex = index_for_geometries(self.geometries)
        # oid interning: code -> value and value -> code.
        self._oid_values: List[Hashable] = []
        self._oid_code: Dict[Hashable, int] = {}
        self._cells: Dict[Hashable, _GidCells] = {}
        # Per-object last appended sample (t, x, y) by oid code — the
        # connecting segment of the next delta batch starts here.
        self._last: Dict[int, Tuple[float, float, float]] = {}
        self.partition: GranulePartition = time.granules(granule_level)
        self._dim_version = time.instance.version
        self._built_version = -1
        self._built_rows = 0
        if build:
            self.refresh()

    # -- construction ---------------------------------------------------------

    def refresh(self) -> None:
        """Rebuild every cell from the current MOFT and Time dimension."""
        with self.obs.stage("preagg_build"):
            self.partition = self.time.granules(self.granule_level)
            self._dim_version = self.time.instance.version
            version, rows = self.moft.version, len(self.moft)
            self._oid_values = []
            self._oid_code = {}
            self._last = {}
            n_granules = len(self.partition)
            self._cells = {gid: _GidCells(n_granules) for gid in self.gids}
            if rows:
                if n_granules == 0:
                    raise PreAggError(
                        f"no {self.granule_level!r} granules exist but the "
                        f"MOFT has {rows} samples"
                    )
                self._build_from_rows(0)
            self._built_version = version
            self._built_rows = rows

    def _intern(self, oid: Hashable) -> int:
        code = self._oid_code.get(oid)
        if code is None:
            code = len(self._oid_values)
            self._oid_code[oid] = code
            self._oid_values.append(oid)
        return code

    def decode(self, codes: np.ndarray) -> Set[Hashable]:
        """Map an oid-code array back to object identifiers."""
        return {self._oid_values[c] for c in codes.tolist()}

    def _granule_codes_checked(self, ts: np.ndarray) -> np.ndarray:
        codes = self.partition.codes_for(ts)
        bad = np.flatnonzero(codes < 0)
        if bad.size:
            raise PreAggError(
                f"sample instant {float(ts[bad[0]])} is not a registered "
                f"timeId member; the store cannot place it in any "
                f"{self.granule_level!r} granule"
            )
        return codes

    def _build_from_rows(self, start_row: int) -> None:
        """Fold rows ``start_row:`` into the cells (build = start_row 0).

        For a full build the per-object segment walk covers whole
        histories; incremental updates instead go through
        :meth:`_apply_delta` which stitches the connecting segment from
        ``self._last``.
        """
        moft = self.moft
        t, x, y = moft.as_arrays()
        oid_col = moft.oid_column()
        codes = self._granule_codes_checked(t)
        row_code = np.empty(len(moft), dtype=np.int64)
        for i, oid in enumerate(oid_col.tolist()):
            row_code[i] = self._intern(oid)
        delta = _DeltaSets()
        # Sample pass: vectorized containment per polygon.
        for gid in self.gids:
            polygon = self.geometries[gid]
            box = polygon.bbox
            rows = np.flatnonzero(
                (x >= box.min_x)
                & (x <= box.max_x)
                & (y >= box.min_y)
                & (y <= box.max_y)
            )
            if rows.size:
                rows = rows[polygon_contains_batch(polygon, x[rows], y[rows])]
            cells = self._cells[gid]
            if rows.size:
                cells.samples += np.bincount(
                    codes[rows], minlength=len(self.partition)
                )
                for g, code in zip(codes[rows].tolist(), row_code[rows].tolist()):
                    delta.add_present(gid, g, code)
        # Segment pass, batched: gather every consecutive-sample segment
        # (object by object in interning order, ascending time within
        # each object) into flat arrays, then answer each polygon over
        # the whole batch with the clip kernel.  Per polygon the hits
        # apply in ascending batch order, which is exactly the order the
        # per-segment walk folded them in — so the float dwell sums and
        # the span-record sequence are unchanged.
        seg_chunks: List[Tuple[np.ndarray, ...]] = []
        for oid, code in self._oid_code.items():
            times, rows = moft._object_order(oid)
            if times.shape[0] < 2:
                if times.shape[0] == 1:
                    row = int(rows[0])
                    self._last[code] = (
                        float(times[0]), float(x[row]), float(y[row])
                    )
                continue
            granules = codes[rows]
            xr, yr = x[rows], y[rows]
            seg_chunks.append(
                (
                    times[:-1], times[1:],
                    xr[:-1], yr[:-1], xr[1:], yr[1:],
                    granules[:-1], granules[1:],
                    np.full(times.shape[0] - 1, code, dtype=np.int64),
                )
            )
            last_row = int(rows[-1])
            self._last[code] = (
                float(times[-1]), float(x[last_row]), float(y[last_row])
            )
        if seg_chunks:
            st0, st1, sx0, sy0, sx1, sy1, sg0, sg1, scode = (
                np.concatenate([chunk[k] for chunk in seg_chunks])
                for k in range(9)
            )
            sdt = st1 - st0
            sminx = np.minimum(sx0, sx1)
            smaxx = np.maximum(sx0, sx1)
            sminy = np.minimum(sy0, sy1)
            smaxy = np.maximum(sy0, sy1)
            for gid in self.gids:
                polygon = self.geometries[gid]
                box = polygon.bbox
                cand = np.flatnonzero(
                    ~(
                        (sminx > box.max_x)
                        | (smaxx < box.min_x)
                        | (sminy > box.max_y)
                        | (smaxy < box.min_y)
                    )
                )
                if not cand.size:
                    continue
                dwell, hits = segments_dwell(
                    polygon,
                    sx0[cand], sy0[cand], sx1[cand], sy1[cand],
                    sdt[cand],
                    obs=self.obs,
                )
                cells = self._cells[gid]
                for pos in np.flatnonzero(hits):
                    i = int(cand[pos])
                    g0, g1 = int(sg0[i]), int(sg1[i])
                    code = int(scode[i])
                    if g0 == g1:
                        cells.dwell[g0] += dwell[pos]
                        delta.add_passer(gid, g0, code)
                    else:
                        delta.add_span(gid, code, g0, g1, dwell[pos])
        self._apply_sets(delta)

    def _fold_segment(
        self,
        delta: _DeltaSets,
        code: int,
        t0: float,
        t1: float,
        x0: float,
        y0: float,
        x1: float,
        y1: float,
        g0: int,
        g1: int,
    ) -> None:
        """Attribute one trajectory segment to cells or spanning records."""
        segment = Segment(Point(x0, y0), Point(x1, y1))
        box = BoundingBox(
            min(x0, x1), min(y0, y1), max(x0, x1), max(y0, y1)
        )
        for gid in self._grid.query_box(box):
            polygon = self.geometries[gid]
            if not geometries_intersect(polygon, segment):
                continue
            dwell = sum(
                (s1 - s0) * (t1 - t0)
                for s0, s1 in polygon.clip_segment(segment)
            )
            if g0 == g1:
                self._cells[gid].dwell[g0] += dwell
                delta.add_passer(gid, g0, code)
            else:
                delta.add_span(gid, code, g0, g1, dwell)

    def _apply_sets(self, delta: _DeltaSets) -> None:
        """Union staged id sets into the sorted uint32 cell arrays."""
        for (gid, granule), codes in delta.present.items():
            cells = self._cells[gid]
            cells.present[granule] = union_sorted_ids(
                [cells.present[granule], _as_sorted_ids(codes)]
            )
        for (gid, granule), codes in delta.passers.items():
            cells = self._cells[gid]
            cells.passers[granule] = union_sorted_ids(
                [cells.passers[granule], _as_sorted_ids(codes)]
            )
        for gid, records in delta.spans.items():
            cells = self._cells[gid]
            cells.span_oid = np.concatenate(
                [cells.span_oid,
                 np.array([r[0] for r in records], dtype=OID_DTYPE)]
            )
            cells.span_a = np.concatenate(
                [cells.span_a, np.array([r[1] for r in records], dtype=np.int64)]
            )
            cells.span_b = np.concatenate(
                [cells.span_b, np.array([r[2] for r in records], dtype=np.int64)]
            )
            cells.span_dwell = np.concatenate(
                [cells.span_dwell, np.array([r[3] for r in records], dtype=float)]
            )

    # -- planner statistics ----------------------------------------------------

    def stats(self) -> PreAggStoreStats:
        """A cheap planner-facing summary (no cell access)."""
        return PreAggStoreStats(
            name=self.name,
            granule_level=self.granule_level,
            granules=len(self.partition),
            geometries=len(self.gids),
            objects=len(self._oid_values),
            built_rows=self._built_rows,
            stale=self.is_stale(),
        )

    # -- staleness and incremental maintenance --------------------------------

    def is_stale(self) -> bool:
        """True when the MOFT or the Time dimension moved past the snapshot."""
        return (
            self.moft.version != self._built_version
            or len(self.moft) != self._built_rows
            or self.time.instance.version != self._dim_version
        )

    def update(self) -> str:
        """Fold appended MOFT rows into the cells.

        Returns ``"fresh"`` (nothing to do), ``"delta"`` (the appended
        rows were applied incrementally — including per-object
        retract-and-refold for objects whose append was out of time
        order) or ``"rebuild"`` (the Time dimension changed, so the
        store fell back to :meth:`refresh`).
        """
        if not self.is_stale():
            return "fresh"
        if self.time.instance.version != self._dim_version:
            self.refresh()
            return "rebuild"
        with self.obs.stage("preagg_update"):
            version, rows = self.moft.version, len(self.moft)
            start = self._built_rows
            t, x, y = self.moft.as_arrays()
            oid_col = self.moft.oid_column()
            codes = self._granule_codes_checked(t[start:])
            # Group delta rows by object, each object's rows time-sorted.
            per_object: Dict[Hashable, List[int]] = {}
            for offset, oid in enumerate(oid_col[start:].tolist()):
                per_object.setdefault(oid, []).append(offset)
            delta = _DeltaSets()
            reordered: List[Hashable] = []
            for oid, offsets in per_object.items():
                offsets.sort(key=lambda o: t[start + o])
                code = self._intern(oid)
                previous = self._last.get(code)
                first_t = float(t[start + offsets[0]])
                if previous is not None and first_t <= previous[0]:
                    # Out-of-order append: the connecting segments already
                    # folded in would change.  Retract this object's
                    # contribution and refold its full history below;
                    # every other object keeps the pure delta path.
                    reordered.append(oid)
                    continue
                for offset in offsets:
                    row = start + offset
                    granule = int(codes[offset])
                    tr = float(t[row])
                    xr, yr = float(x[row]), float(y[row])
                    self._fold_sample(delta, code, granule, xr, yr)
                    if previous is not None:
                        tp, xp, yp = previous
                        self._fold_segment(
                            delta, code, tp, tr, xp, yp, xr, yr,
                            int(self.partition.codes_for(
                                np.array([tp]))[0]),
                            granule,
                        )
                    previous = (tr, xr, yr)
                self._last[code] = previous  # type: ignore[assignment]
            for oid in reordered:
                self._refold_object(delta, oid)
            self._apply_sets(delta)
            self._built_version = version
            self._built_rows = rows
        return "delta"

    def _refold_object(self, delta: _DeltaSets, oid: Hashable) -> None:
        """Retract one object's folded state and refold its full history.

        Used when an append delivered the object a sample at or before
        its last folded instant: connecting segments already attributed
        to cells would change, so the object's entire contribution is
        removed (:meth:`_retract_object`) and rebuilt from its current
        time-sorted history — exactly what a full :meth:`refresh` would
        produce for this object, without touching any other object.
        """
        code = self._oid_code[oid]
        self._retract_object(code)
        t_all, x_all, y_all = self.moft.as_arrays()
        times, rows = self.moft._object_order(oid)
        granules = self._granule_codes_checked(times)
        for i in range(times.shape[0]):
            row = int(rows[i])
            self._fold_sample(
                delta, code, int(granules[i]),
                float(x_all[row]), float(y_all[row]),
            )
        for i in range(times.shape[0] - 1):
            r0, r1 = int(rows[i]), int(rows[i + 1])
            self._fold_segment(
                delta,
                code,
                float(times[i]),
                float(times[i + 1]),
                float(x_all[r0]),
                float(y_all[r0]),
                float(x_all[r1]),
                float(y_all[r1]),
                int(granules[i]),
                int(granules[i + 1]),
            )
        last_row = int(rows[-1])
        self._last[code] = (
            float(times[-1]), float(x_all[last_row]), float(y_all[last_row])
        )

    def _retract_object(self, code: int) -> None:
        """Remove every folded contribution of one object from the cells.

        Recomputes the object's *previously folded* samples and
        intra-granule segments — its rows below the built snapshot, in
        the same stable time order :meth:`_build_from_rows` used — and
        subtracts them; then strips the oid code from every id set and
        drops its spanning records (their dwell lives only in the
        records, so dropping them is the complete retraction).
        """
        oid = self._oid_values[code]
        t_all, x_all, y_all = self.moft.as_arrays()
        all_rows = np.asarray(
            self.moft._object_rows().get(oid, []), dtype=np.intp
        )
        prior = all_rows[all_rows < self._built_rows]
        if prior.size:
            times = t_all[prior]
            order = np.argsort(times, kind="stable")
            prior, times = prior[order], times[order]
            granules = self._granule_codes_checked(times)
            for i in range(prior.size):
                row = int(prior[i])
                point = Point(float(x_all[row]), float(y_all[row]))
                box = BoundingBox(point.x, point.y, point.x, point.y)
                for gid in self._grid.query_box(box):
                    if self.geometries[gid].contains_point(point):
                        self._cells[gid].samples[int(granules[i])] -= 1
            for i in range(prior.size - 1):
                g0, g1 = int(granules[i]), int(granules[i + 1])
                if g0 != g1:
                    continue  # dwell lives in a span record, dropped below
                r0, r1 = int(prior[i]), int(prior[i + 1])
                t0, t1 = float(times[i]), float(times[i + 1])
                x0, y0 = float(x_all[r0]), float(y_all[r0])
                x1, y1 = float(x_all[r1]), float(y_all[r1])
                segment = Segment(Point(x0, y0), Point(x1, y1))
                box = BoundingBox(
                    min(x0, x1), min(y0, y1), max(x0, x1), max(y0, y1)
                )
                for gid in self._grid.query_box(box):
                    polygon = self.geometries[gid]
                    if not geometries_intersect(polygon, segment):
                        continue
                    dwell = sum(
                        (s1 - s0) * (t1 - t0)
                        for s0, s1 in polygon.clip_segment(segment)
                    )
                    self._cells[gid].dwell[g0] -= dwell
        for cells in self._cells.values():
            for g in range(len(self.partition)):
                arr = cells.present[g]
                if arr.size and code in arr:
                    cells.present[g] = arr[arr != code]
                arr = cells.passers[g]
                if arr.size and code in arr:
                    cells.passers[g] = arr[arr != code]
            if cells.span_oid.size:
                keep = cells.span_oid != code
                if not keep.all():
                    cells.span_oid = cells.span_oid[keep]
                    cells.span_a = cells.span_a[keep]
                    cells.span_b = cells.span_b[keep]
                    cells.span_dwell = cells.span_dwell[keep]

    def _fold_sample(
        self,
        delta: _DeltaSets,
        code: int,
        granule: int,
        x: float,
        y: float,
    ) -> None:
        point = Point(x, y)
        for gid in self._grid.query_box(BoundingBox(x, y, x, y)):
            if self.geometries[gid].contains_point(point):
                self._cells[gid].samples[granule] += 1
                delta.add_present(gid, granule, code)

    def clone(self, moft: Optional[MOFT] = None) -> "PreAggStore":
        """Copy-on-write duplicate, optionally repointed at a new MOFT.

        The streaming maintainer (:mod:`repro.ingest`) folds each
        watermark flush into a *clone* bound to the new immutable
        snapshot table, leaving the store readers on older snapshots
        still query untouched.  Only the arrays folds mutate in place
        (``samples``/``dwell``) are copied; the id-set lists and
        spanning-record arrays are rebound on write, never mutated, so
        they share storage until a fold replaces them.

        ``moft`` must extend this store's table as a row prefix (the
        :class:`~repro.ingest.VersionedMoft` publish guarantee); the
        clone keeps the built ``(version, rows)`` snapshot, so a
        subsequent :meth:`update` folds exactly the appended rows.
        """
        out = PreAggStore(
            moft if moft is not None else self.moft,
            self.time,
            self.granule_level,
            self.geometries,
            layer=self.layer,
            kind=self.kind,
            name=self.name,
            obs=self.obs,
            build=False,
        )
        out.partition = self.partition
        out._dim_version = self._dim_version
        out._built_version = self._built_version
        out._built_rows = self._built_rows
        out._oid_values = list(self._oid_values)
        out._oid_code = dict(self._oid_code)
        out._last = dict(self._last)
        out._cells = {}
        for gid, src in self._cells.items():
            dst = _GidCells(0)
            dst.samples = src.samples.copy()
            dst.dwell = src.dwell.copy()
            dst.present = list(src.present)
            dst.passers = list(src.passers)
            dst.span_oid = src.span_oid
            dst.span_a = src.span_a
            dst.span_b = src.span_b
            dst.span_dwell = src.span_dwell
            out._cells[gid] = dst
        return out

    # -- granule-run queries --------------------------------------------------

    def _run_codes(
        self, ids: Iterable[Hashable], first: int, last: int, which: str
    ) -> np.ndarray:
        if not (0 <= first <= last < len(self.partition)):
            raise PreAggError(
                f"granule run {first}..{last} out of range "
                f"0..{len(self.partition) - 1}"
            )
        parts: List[np.ndarray] = []
        for gid in ids:
            cells = self._cells_for(gid)
            per_granule = cells.passers if which == "passers" else cells.present
            parts.extend(per_granule[first:last + 1])
            if which == "passers" and cells.span_oid.size:
                parts.append(cells.span_oid[cells.span_mask(first, last)])
        return union_sorted_ids(parts)

    def _cells_for(self, gid: Hashable) -> _GidCells:
        try:
            return self._cells[gid]
        except KeyError:
            raise PreAggError(
                f"geometry {gid!r} is not materialized in store {self.name!r}"
            ) from None

    def objects_through(
        self, ids: Iterable[Hashable], first: int, last: int
    ) -> Set[Hashable]:
        """Objects whose run-restricted trajectory hits any of ``ids``.

        Exactly equals the serial trajectory scan over the MOFT
        restricted to the instants of granules ``first..last``.
        """
        return self.decode(self._run_codes(ids, first, last, "passers"))

    def distinct_objects(
        self, ids: Iterable[Hashable], first: int, last: int
    ) -> Set[Hashable]:
        """Objects with at least one sample inside (sample semantics)."""
        return self.decode(self._run_codes(ids, first, last, "present"))

    def sample_count(
        self, ids: Iterable[Hashable], first: int, last: int
    ) -> int:
        """Total samples inside the polygons over the granule run."""
        return int(
            sum(
                self._cells_for(gid).samples[first:last + 1].sum()
                for gid in ids
            )
        )

    def dwell_time(
        self, ids: Iterable[Hashable], first: int, last: int
    ) -> float:
        """Interpolated time inside the polygons over the granule run.

        Sums intra-granule cell dwell plus spanning-segment dwell for
        segments fully inside the run.  Overlapping polygons double-count
        (per-polygon dwell is summed), matching the serial per-polygon
        reference.
        """
        total = 0.0
        for gid in ids:
            cells = self._cells_for(gid)
            total += float(cells.dwell[first:last + 1].sum())
            if cells.span_dwell.size:
                total += float(
                    cells.span_dwell[cells.span_mask(first, last)].sum()
                )
        return total

    # -- window decomposition -------------------------------------------------

    def covered_run(
        self, start: float, end: float
    ) -> Optional[Tuple[int, int]]:
        """Maximal granule run inside ``[start, end]`` (None when empty)."""
        return self.partition.covered_run(float(start), float(end))

    def is_aligned(self, start: float, end: float) -> bool:
        """True when the window lands exactly on granule boundaries."""
        return self.partition.aligned_run(float(start), float(end)) is not None

    def _sliver_scan_mask(
        self, start: float, end: float, run: Tuple[int, int]
    ) -> Optional[np.ndarray]:
        """Row mask of the residual scan for a misaligned window.

        Selects the complete window-restricted history of every object
        having at least one sample in a sliver — the part of
        ``[start, end]`` outside the covered granule run — or None when
        the window is fully covered by the run.
        """
        lo, hi = self.partition.span(*run)
        t, _, _ = self.moft.as_arrays()
        window = (t >= float(start)) & (t <= float(end))
        sliver = window & ((t < lo) | (t > hi))
        if not sliver.any():
            return None
        oid_col = self.moft.oid_column()
        sliver_oids = set(oid_col[sliver].tolist())
        mask = np.zeros(len(self.moft), dtype=bool)
        for oid in sliver_oids:
            mask[self.moft._object_rows()[oid]] = True
        mask &= window
        return mask

    def sliver_row_count(
        self, start: float, end: float, run: Tuple[int, int]
    ) -> int:
        """Rows :meth:`sliver_subtable` would hold, without building it.

        The cost-based planner prices the pre-agg hybrid strategy from
        this figure (granule lookups + a scan of this many rows).
        """
        mask = self._sliver_scan_mask(start, end, run)
        return 0 if mask is None else int(mask.sum())

    def sliver_subtable(
        self, start: float, end: float, run: Tuple[int, int]
    ) -> Tuple[Optional[MOFT], int]:
        """The residual scan input for a misaligned window.

        Returns ``(table, rows)`` where the table holds the complete
        window-restricted history of every object having at least one
        sample in a sliver (see :meth:`_sliver_scan_mask`), or
        ``(None, 0)`` when the window is fully covered.  Scanning this
        table and unioning with :meth:`objects_through` over the run
        reproduces the serial window scan exactly: any window segment
        the store has not accounted for has an endpoint in a sliver.
        """
        mask = self._sliver_scan_mask(start, end, run)
        if mask is None:
            return None, 0
        table = self.moft.mask_rows(mask)
        return table, len(table)

    def window_coverage(
        self, start: Optional[float], end: Optional[float]
    ) -> WindowCoverage:
        """Decompose a window (None/None: whole table) for the planner.

        Purely informational — computes the covered run, alignment and
        sliver row count without touching counters or building the
        sliver subtable, so the planner can price the pre-agg strategy
        without perturbing the observable routing outcome.
        """
        if start is None or end is None:
            if len(self.partition) == 0:
                return WindowCoverage(run=None, aligned=True, sliver_rows=0)
            return WindowCoverage(
                run=(0, len(self.partition) - 1), aligned=True, sliver_rows=0
            )
        run = self.covered_run(start, end)
        if run is None:
            return WindowCoverage(run=None, aligned=False, sliver_rows=0)
        aligned = self.is_aligned(start, end)
        rows = 0 if aligned else self.sliver_row_count(start, end, run)
        return WindowCoverage(run=run, aligned=aligned, sliver_rows=rows)

    def window_dwell(
        self, ids: Iterable[Hashable], start: float, end: float
    ) -> float:
        """Exact dwell time for an arbitrary window within coverage.

        Store cells answer the covered granule run; segments with an
        endpoint in a sliver are clipped directly against the polygons
        (there are only ever O(sliver objects) of them).
        """
        ids = list(ids)
        run = self.covered_run(start, end)
        if run is None:
            return self._sliver_dwell(ids, start, end, np.inf, -np.inf)
        lo, hi = self.partition.span(*run)
        total = self.dwell_time(ids, run[0], run[1])
        return total + self._sliver_dwell(ids, start, end, lo, hi)

    def _sliver_dwell(
        self,
        ids: Sequence[Hashable],
        start: float,
        end: float,
        lo: float,
        hi: float,
    ) -> float:
        """Dwell of window segments having an endpoint outside ``[lo, hi]``."""
        wanted = set(ids) & self._gid_set
        if len(wanted) != len(ids):
            missing = set(ids) - self._gid_set
            raise PreAggError(
                f"geometries {sorted(map(repr, missing))} are not "
                f"materialized in store {self.name!r}"
            )
        t, x, y = self.moft.as_arrays()
        window = (t >= float(start)) & (t <= float(end))
        sliver = window & ((t < lo) | (t > hi))
        if not sliver.any():
            return 0.0
        oid_col = self.moft.oid_column()
        total = 0.0
        for oid in set(oid_col[sliver].tolist()):
            times, rows = self.moft._object_order(oid)
            keep = (times >= float(start)) & (times <= float(end))
            w_times, w_rows = times[keep], rows[keep]
            for i in range(w_times.shape[0] - 1):
                t0, t1 = float(w_times[i]), float(w_times[i + 1])
                if lo <= t0 and t1 <= hi:
                    continue  # both endpoints covered: already in cells
                r0, r1 = int(w_rows[i]), int(w_rows[i + 1])
                segment = Segment(
                    Point(float(x[r0]), float(y[r0])),
                    Point(float(x[r1]), float(y[r1])),
                )
                box = BoundingBox(
                    min(x[r0], x[r1]), min(y[r0], y[r1]),
                    max(x[r0], x[r1]), max(y[r0], y[r1]),
                )
                for gid in self._grid.query_box(box):
                    if gid not in wanted:
                        continue
                    total += sum(
                        (s1 - s0) * (t1 - t0)
                        for s0, s1 in self.geometries[gid].clip_segment(
                            segment
                        )
                    )
        return total

    # -- lattice rollup and cube exposure -------------------------------------

    def cell(self, gid: Hashable, member: Hashable) -> PreAggCell:
        """Decode one finest-granule cell."""
        cells = self._cells_for(gid)
        granule = self.partition.code_of(member)
        return PreAggCell(
            samples=int(cells.samples[granule]),
            dwell=float(cells.dwell[granule]),
            distinct_objects=frozenset(self.decode(cells.present[granule])),
            passing_objects=frozenset(self.decode(cells.passers[granule])),
        )

    def rollup_cells(
        self, parent_level: str
    ) -> Dict[Tuple[Hashable, Hashable], PreAggCell]:
        """Derive coarser cells along the granularity lattice.

        Child cells merge into their parent granule: counts and dwell
        add, id sets union, and spanning records whose endpoints fall in
        the *same* parent become intra-parent (their dwell and oid join
        the parent cell — this is what makes the rollup exact rather
        than a lossy counter sum).  Raises
        :class:`~repro.errors.RollupError` when some child granule
        straddles two parents.
        """
        parent, mapping = self.partition.rollup_codes(self.time, parent_level)
        out: Dict[Tuple[Hashable, Hashable], PreAggCell] = {}
        for gid in self.gids:
            cells = self._cells[gid]
            span_pa = mapping[cells.span_a] if cells.span_oid.size else None
            span_pb = mapping[cells.span_b] if cells.span_oid.size else None
            for p, member in enumerate(parent.members):
                children = np.flatnonzero(mapping == p)
                samples = int(cells.samples[children].sum())
                dwell = float(cells.dwell[children].sum())
                present = union_sorted_ids(
                    [cells.present[int(g)] for g in children]
                )
                passer_parts = [cells.passers[int(g)] for g in children]
                if span_pa is not None:
                    intra = (span_pa == p) & (span_pb == p)
                    dwell += float(cells.span_dwell[intra].sum())
                    passer_parts.append(cells.span_oid[intra])
                passers = union_sorted_ids(passer_parts)
                if samples or dwell or present.size or passers.size:
                    out[(gid, member)] = PreAggCell(
                        samples=samples,
                        dwell=dwell,
                        distinct_objects=frozenset(self.decode(present)),
                        passing_objects=frozenset(self.decode(passers)),
                    )
        return out

    def as_cube(self) -> "Cube":
        """Expose the finest-granule cells as an OLAP :class:`Cube`.

        The fact table has one row per non-empty cell with measures
        ``samples``, ``dwell``, ``distinct_objects`` and
        ``passing_objects`` (the id sets surface as exact counts; the
        sets themselves stay queryable through :meth:`cell`).  The time
        attribute binds to the granule level, so cube rollups climb the
        real Time lattice.  Note the cube's cells are *per-granule*
        summaries: segments crossing granule boundaries contribute to
        window queries (:meth:`objects_through`) but to no single cell.
        """
        from repro.olap.cube import Cube

        geometry_dim = f"{self.name}_geometry"
        rows = []
        for gid in self.gids:
            cells = self._cells[gid]
            for granule, member in enumerate(self.partition.members):
                samples = int(cells.samples[granule])
                dwell = float(cells.dwell[granule])
                present = cells.present[granule]
                passers = cells.passers[granule]
                if not (samples or dwell or present.size or passers.size):
                    continue
                rows.append(
                    {
                        "granule": member,
                        "geometry": gid,
                        "samples": samples,
                        "dwell": dwell,
                        "distinct_objects": int(present.size),
                        "passing_objects": int(passers.size),
                    }
                )
        return Cube.from_rows(
            f"{self.name}_cells",
            [
                (
                    "granule",
                    self.time.instance.schema.name,
                    self.granule_level,
                    self.time.instance,
                ),
                ("geometry", geometry_dim, "gid", self._geometry_instance()),
            ],
            ("samples", "dwell", "distinct_objects", "passing_objects"),
            rows,
        )

    def _geometry_instance(self):
        """A two-level gid -> layer dimension for the cube's spatial axis."""
        from repro.olap.dimension import DimensionInstance, DimensionSchema

        schema = DimensionSchema(
            f"{self.name}_geometry", [("gid", "layer")]
        )
        instance = DimensionInstance(schema)
        label = self.layer if self.layer is not None else self.name
        for gid in self.gids:
            instance.set_rollup("gid", gid, "layer", label)
        return instance

    # -- shard merge ----------------------------------------------------------

    @classmethod
    def merge(
        cls,
        stores: Sequence["PreAggStore"],
        moft: MOFT,
        snapshot: Optional[Tuple[int, int]] = None,
    ) -> "PreAggStore":
        """Union per-shard stores built over an object partition of ``moft``.

        Shards must cover disjoint object sets (the
        :meth:`~repro.mo.moft.MOFT.partition_by_objects` guarantee):
        counts and dwell add, id sets union after re-interning each
        shard's oid codes into the merged store.  ``snapshot`` is the
        parent MOFT's ``(version, rows)`` taken before partitioning, so
        the merged store's staleness tracks the parent table.

        When ``snapshot`` is given the merge also verifies *row
        coverage*: the shard stores' built rows must add up to the
        snapshot's row count.  A truncated shard store — one built from
        a corrupt or partially-delivered shard, e.g. after a faulty
        retry — would otherwise fold silently into an under-counting
        store, breaking the Definition 4 summability contract (the sum
        over shards must be the sum over the whole table).
        """
        if not stores:
            raise PreAggError("cannot merge zero pre-aggregation stores")
        if snapshot is not None:
            covered = sum(store._built_rows for store in stores)
            if covered != snapshot[1]:
                raise PreAggError(
                    f"shard stores cover {covered} rows but the parent "
                    f"MOFT snapshot has {snapshot[1]}; a shard is missing "
                    f"or truncated — refusing an under-counting merge"
                )
        head = stores[0]
        for other in stores[1:]:
            if (
                other.granule_level != head.granule_level
                or other.partition.members != head.partition.members
                or set(other.gids) != set(head.gids)
            ):
                raise PreAggError(
                    "shard stores disagree on granules or geometries; "
                    "they were not built from one partitioning"
                )
        merged = cls(
            moft,
            head.time,
            head.granule_level,
            head.geometries,
            layer=head.layer,
            kind=head.kind,
            name=head.name,
            obs=head.obs,
            build=False,
        )
        n_granules = len(merged.partition)
        merged._cells = {gid: _GidCells(n_granules) for gid in merged.gids}
        seen_objects: Set[Hashable] = set()
        for store in stores:
            overlap = seen_objects & set(store._oid_code)
            if overlap:
                raise PreAggError(
                    f"shard stores share objects (e.g. "
                    f"{next(iter(overlap))!r}); merge needs an object "
                    f"partition"
                )
            seen_objects |= set(store._oid_code)
            remap = np.array(
                [merged._intern(oid) for oid in store._oid_values],
                dtype=OID_DTYPE,
            )
            for code, last in store._last.items():
                merged._last[int(remap[code])] = last
            for gid in merged.gids:
                src = store._cells[gid]
                dst = merged._cells[gid]
                dst.samples += src.samples
                dst.dwell += src.dwell
                for g in range(n_granules):
                    if src.present[g].size:
                        dst.present[g] = union_sorted_ids(
                            [dst.present[g], np.sort(remap[src.present[g]])]
                        )
                    if src.passers[g].size:
                        dst.passers[g] = union_sorted_ids(
                            [dst.passers[g], np.sort(remap[src.passers[g]])]
                        )
                if src.span_oid.size:
                    dst.span_oid = np.concatenate(
                        [dst.span_oid, remap[src.span_oid]]
                    )
                    dst.span_a = np.concatenate([dst.span_a, src.span_a])
                    dst.span_b = np.concatenate([dst.span_b, src.span_b])
                    dst.span_dwell = np.concatenate(
                        [dst.span_dwell, src.span_dwell]
                    )
        if snapshot is None:
            snapshot = (moft.version, len(moft))
        merged._built_version, merged._built_rows = snapshot
        return merged

    def __repr__(self) -> str:
        return (
            f"PreAggStore({self.name!r}, level={self.granule_level!r}, "
            f"granules={len(self.partition)}, geometries={len(self.gids)}, "
            f"objects={len(self._oid_values)}, "
            f"stale={self.is_stale()})"
        )


__all__ = [
    "OID_DTYPE",
    "PreAggCell",
    "PreAggStore",
    "PreAggStoreStats",
    "WindowCoverage",
]
