"""Materialized pre-aggregation for moving-object queries.

See :mod:`repro.preagg.store` for the model: per-(geometry, granule)
cells with exact distinct-object sets, boundary-spanning segment
records, incremental maintenance against the append-only MOFT, and
lattice rollup / cube exposure.  The query planner
(:mod:`repro.query.optimizer`) routes eligible aggregates here.
"""

from repro.preagg.store import (
    OID_DTYPE,
    PreAggCell,
    PreAggStore,
    PreAggStoreStats,
    WindowCoverage,
)

__all__ = [
    "OID_DTYPE",
    "PreAggCell",
    "PreAggStore",
    "PreAggStoreStats",
    "WindowCoverage",
]
