"""Plain-text reporting for benchmark outputs.

Benchmarks print the same rows/series the paper's artifacts contain, so a
reader can diff EXPERIMENTS.md against a fresh run.  Everything renders as
monospace tables on stdout — no plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.bench.harness import Series


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render rows as a fixed-width table."""
    materialized: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        materialized.append(
            [
                f"{cell:.4g}" if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(row[i]) for row in materialized)
        for i in range(len(headers))
    ]
    lines = []
    for index, row in enumerate(materialized):
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def print_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> None:
    """Print a titled table."""
    print()
    print(f"== {title} ==")
    print(format_table(headers, rows))


def print_series(title: str, series_list: Sequence[Series]) -> None:
    """Print several series side by side, joined on x."""
    xs: List[object] = []
    for series in series_list:
        for x, _ in series.points:
            if x not in xs:
                xs.append(x)
    headers = ["x"] + [s.name for s in series_list]
    rows = []
    for x in xs:
        row: List[object] = [x]
        for series in series_list:
            match = [y for sx, y in series.points if sx == x]
            row.append(match[0] if match else "-")
        rows.append(row)
    print_table(title, headers, rows)
