"""Plain-text reporting for benchmark outputs.

Benchmarks print the same rows/series the paper's artifacts contain, so a
reader can diff EXPERIMENTS.md against a fresh run.  Everything renders as
monospace tables on stdout — no plotting dependencies.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.bench.harness import Series


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render rows as a fixed-width table."""
    materialized: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        materialized.append(
            [
                f"{cell:.4g}" if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(row[i]) for row in materialized)
        for i in range(len(headers))
    ]
    lines = []
    for index, row in enumerate(materialized):
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def print_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> None:
    """Print a titled table."""
    print()
    print(f"== {title} ==")
    print(format_table(headers, rows))


def write_bench_json(
    name: str,
    payload: Dict,
    directory: Optional[Union[str, Path]] = None,
) -> Optional[Path]:
    """Persist a benchmark's measurements as a JSON artifact.

    ``directory`` defaults to the ``REPRO_BENCH_JSON_DIR`` environment
    variable; when neither is set the call is a no-op returning ``None``,
    so benchmarks can always emit artifacts without configuring local
    runs.  CI points ``REPRO_BENCH_JSON_DIR`` at an upload directory and
    collects one ``<name>.json`` file per benchmark, each carrying the
    measured numbers (seconds, speedups, ``bytes_serialized``, peak shard
    payload sizes, ...) for trend tracking across commits.
    """
    if directory is None:
        directory = os.environ.get("REPRO_BENCH_JSON_DIR")
    if not directory:
        return None
    target_dir = Path(directory)
    target_dir.mkdir(parents=True, exist_ok=True)
    target = target_dir / f"{name}.json"
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target


def print_series(title: str, series_list: Sequence[Series]) -> None:
    """Print several series side by side, joined on x."""
    xs: List[object] = []
    for series in series_list:
        for x, _ in series.points:
            if x not in xs:
                xs.append(x)
    headers = ["x"] + [s.name for s in series_list]
    rows = []
    for x in xs:
        row: List[object] = [x]
        for series in series_list:
            match = [y for sx, y in series.points if sx == x]
            row.append(match[0] if match else "-")
        rows.append(row)
    print_table(title, headers, rows)
