"""Benchmark harness utilities shared by the ``benchmarks/`` suite."""

from repro.bench.harness import (
    SCALES,
    Series,
    WorldScale,
    build_world,
    context_for,
    timed,
)
from repro.bench.reporting import format_table, print_series, print_table

__all__ = [
    "SCALES",
    "Series",
    "WorldScale",
    "build_world",
    "context_for",
    "timed",
    "format_table",
    "print_series",
    "print_table",
]
