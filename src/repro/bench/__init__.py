"""Benchmark harness utilities shared by the ``benchmarks/`` suite."""

from repro.bench.harness import (
    SCALES,
    Series,
    WorldScale,
    build_world,
    context_for,
    large_moft,
    merge_row_counts,
    shard_row_counts,
    stage_rows,
    timed,
)
from repro.bench.reporting import (
    format_table,
    print_series,
    print_table,
    write_bench_json,
)

__all__ = [
    "SCALES",
    "Series",
    "WorldScale",
    "build_world",
    "context_for",
    "large_moft",
    "merge_row_counts",
    "shard_row_counts",
    "stage_rows",
    "timed",
    "format_table",
    "print_series",
    "print_table",
    "write_bench_json",
]
