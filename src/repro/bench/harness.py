"""Shared utilities for the benchmark suite.

The benchmarks under ``benchmarks/`` regenerate every table/figure-level
artifact of the paper (see DESIGN.md's experiment index).  This module
provides the common pieces: deterministic world construction at several
scales, a tiny timing helper independent of pytest-benchmark for sweeps,
and series containers the reporting module renders.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.geometry.point import BoundingBox
from repro.mo.moft import MOFT
from repro.query.region import EvaluationContext
from repro.synth.city import CityConfig, SyntheticCity, build_city
from repro.synth.movement import random_waypoint_moft
from repro.temporal.calendar import hourly
from repro.temporal.timedim import TimeDimension


@dataclass(frozen=True)
class WorldScale:
    """One point of a scaling sweep."""

    name: str
    city_blocks: int
    n_objects: int
    n_instants: int


#: The default scale ladder used by the sweep benchmarks.
SCALES: Tuple[WorldScale, ...] = (
    WorldScale("small", 4, 20, 12),
    WorldScale("medium", 6, 60, 24),
    WorldScale("large", 8, 150, 24),
)


def build_world(
    scale: WorldScale, seed: int = 23
) -> Tuple[SyntheticCity, MOFT, TimeDimension]:
    """Build a deterministic (city, MOFT, time dimension) triple."""
    city = build_city(
        CityConfig(cols=scale.city_blocks, rows=scale.city_blocks, seed=seed)
    )
    moft = random_waypoint_moft(
        city.bounding_box,
        n_objects=scale.n_objects,
        n_instants=scale.n_instants,
        speed=city.config.block_size / 2,
        seed=seed,
    )
    from datetime import datetime

    time_dim = TimeDimension.from_mapping(
        hourly(datetime(2006, 1, 9, 0, 0)), range(scale.n_instants)
    )
    return city, moft, time_dim


def context_for(
    city: SyntheticCity,
    moft: MOFT,
    time_dim: TimeDimension,
    use_overlay: bool = True,
) -> EvaluationContext:
    """Wrap a generated world into an evaluation context."""
    return EvaluationContext(city.gis, time_dim, moft, use_overlay=use_overlay)


def timed(fn: Callable[[], object], repeat: int = 3) -> Tuple[float, object]:
    """Run ``fn`` ``repeat`` times; return (best wall seconds, last result)."""
    best = float("inf")
    result: object = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def large_moft(
    n_objects: int = 500, n_instants: int = 200, seed: int = 23
) -> MOFT:
    """A big synthetic MOFT (default 100k samples) for storage benchmarks.

    Built directly from columns — constructing it row by row at this size
    is exactly the overhead the columnar engine exists to avoid.
    """
    box = BoundingBox(0.0, 0.0, 100.0, 100.0)
    return random_waypoint_moft(
        box,
        n_objects=n_objects,
        n_instants=n_instants,
        speed=5.0,
        seed=seed,
    )


def shard_row_counts(shard: MOFT) -> Dict[str, int]:
    """Per-shard row/object tally — a picklable fn for executor fan-outs.

    Benchmarks pass this to ``ShardedExecutor.aggregate_moft`` so the
    measured payload is the executor's own serialization (descriptor or
    pickled shard), not the cost of an elaborate aggregate.
    """
    return {"rows": len(shard), "objects": len(shard.objects())}


def merge_row_counts(parts: Sequence[Dict[str, int]]) -> Dict[str, int]:
    """Sum the tallies produced by :func:`shard_row_counts`."""
    total = {"rows": 0, "objects": 0}
    for part in parts:
        total["rows"] += part["rows"]
        total["objects"] += part["objects"]
    return total


def stage_rows(stats: "object") -> List[Tuple[object, ...]]:
    """Flatten a :class:`repro.obs.PipelineStats` into printable rows.

    Counters come first (count in the second column), stages after
    (calls, seconds).
    """
    rows: List[Tuple[object, ...]] = []
    for name in sorted(stats.counters):
        rows.append((name, stats.counters[name], ""))
    for name in sorted(stats.stages):
        timer = stats.stages[name]
        rows.append((name, timer.calls, f"{timer.seconds:.6f}s"))
    return rows


@dataclass
class Series:
    """A named series of (x, y) measurements for reporting."""

    name: str
    points: List[Tuple[object, float]] = field(default_factory=list)

    def add(self, x: object, y: float) -> None:
        """Append one measurement."""
        self.points.append((x, y))
