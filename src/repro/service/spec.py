"""Serializable query specifications and canonical result payloads.

A job queue that survives process death must store *descriptions* of
queries, not closures: a :class:`QuerySpec` is the JSON-serializable
description of one analytical query in either of the engine's two
vocabularies —

* ``kind="through"`` — the builder-API Section 5 pipeline: count the
  objects passing through the target geometries satisfying the
  constraints, optionally restricted to a time window (executed through
  the cost-based planner, so the stored EXPLAIN plan records which
  strategy ran);
* ``kind="pietql"`` — a Piet-QL query string, executed through
  :class:`~repro.parallel.ShardedPietQLExecutor`;
* ``kind="ingest"`` — a batch of GPS samples for a streaming world's
  :class:`~repro.ingest.StreamingIngestor` (``samples`` is a list of
  ``[oid, t, x, y]`` rows); the result payload is the per-batch
  accounting (submitted/ingested/late/buffered, watermark, version).

Results are persisted as *canonical JSON* (:func:`canonical_json`:
sorted keys, no whitespace), so "the service answer equals the direct
executor answer" is a byte-for-byte string comparison — the form the
differential suite (``tests/service``) asserts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ServiceError

#: The query vocabularies a spec can carry.
SPEC_KINDS: Tuple[str, ...] = ("through", "pietql", "ingest")


@dataclass(frozen=True)
class QuerySpec:
    """One submitted query, in storable form.

    Use the :meth:`through` / :meth:`pietql` constructors; the raw
    constructor validates but does not normalize.
    """

    kind: str
    text: Optional[str] = None
    moft_name: str = "FM"
    target: Optional[Tuple[str, str]] = None
    constraints: Tuple[Tuple[str, Tuple[str, str]], ...] = ()
    window: Optional[Tuple[float, float]] = None
    samples: Tuple[Tuple[str, float, float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in SPEC_KINDS:
            raise ServiceError(
                f"unknown query spec kind {self.kind!r}; "
                f"expected one of {SPEC_KINDS}"
            )
        if self.kind == "pietql":
            if not self.text or not str(self.text).strip():
                raise ServiceError("a pietql spec needs non-empty query text")
        elif self.kind == "ingest":
            if not self.samples:
                raise ServiceError("an ingest spec needs >= 1 sample")
            for sample in self.samples:
                if len(sample) != 4:
                    raise ServiceError(
                        f"each ingest sample must be (oid, t, x, y), "
                        f"got {sample!r}"
                    )
        else:
            if self.target is None or len(self.target) != 2:
                raise ServiceError(
                    "a through spec needs a (layer, kind) target, got "
                    f"{self.target!r}"
                )
            for constraint in self.constraints:
                if (
                    len(constraint) != 2
                    or not isinstance(constraint[0], str)
                    or len(constraint[1]) != 2
                ):
                    raise ServiceError(
                        "each constraint must be (relation, (layer, kind)), "
                        f"got {constraint!r}"
                    )
            if self.window is not None and len(self.window) != 2:
                raise ServiceError(
                    f"window must be (start, end), got {self.window!r}"
                )

    # -- constructors --------------------------------------------------------

    @classmethod
    def through(
        cls,
        target: Tuple[str, str],
        constraints=(),
        moft_name: str = "FM",
        window: Optional[Tuple[float, float]] = None,
    ) -> "QuerySpec":
        """A builder-API count-objects-through query."""
        return cls(
            kind="through",
            moft_name=moft_name,
            target=(str(target[0]), str(target[1])),
            constraints=tuple(
                (str(rel), (str(ref[0]), str(ref[1])))
                for rel, ref in constraints
            ),
            window=(
                None
                if window is None
                else (float(window[0]), float(window[1]))
            ),
        )

    @classmethod
    def pietql(cls, text: str) -> "QuerySpec":
        """A Piet-QL query string."""
        return cls(kind="pietql", text=str(text))

    @classmethod
    def ingest(cls, samples) -> "QuerySpec":
        """A batch of ``(oid, t, x, y)`` samples for a streaming world."""
        return cls(
            kind="ingest",
            samples=tuple(
                (str(s[0]), float(s[1]), float(s[2]), float(s[3]))
                for s in samples
            ),
        )

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        """Canonical JSON form (what the queue stores)."""
        payload: Dict[str, object] = {"kind": self.kind}
        if self.kind == "pietql":
            payload["text"] = self.text
        elif self.kind == "ingest":
            payload["samples"] = [list(sample) for sample in self.samples]
        else:
            payload["moft_name"] = self.moft_name
            payload["target"] = list(self.target)
            payload["constraints"] = [
                [rel, list(ref)] for rel, ref in self.constraints
            ]
            if self.window is not None:
                payload["window"] = list(self.window)
        return canonical_json(payload)

    @classmethod
    def from_json(cls, text: str) -> "QuerySpec":
        """Parse a stored spec; malformed input raises :class:`ServiceError`."""
        try:
            payload = json.loads(text)
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"malformed query spec JSON: {exc}") from exc
        if not isinstance(payload, dict) or "kind" not in payload:
            raise ServiceError(
                f"query spec JSON must be an object with a 'kind', "
                f"got {payload!r}"
            )
        kind = payload["kind"]
        try:
            if kind == "pietql":
                return cls.pietql(payload["text"])
            if kind == "ingest":
                return cls.ingest(payload["samples"])
            if kind == "through":
                return cls.through(
                    tuple(payload["target"]),
                    [
                        (rel, tuple(ref))
                        for rel, ref in payload.get("constraints", [])
                    ],
                    moft_name=payload.get("moft_name", "FM"),
                    window=(
                        tuple(payload["window"])
                        if payload.get("window") is not None
                        else None
                    ),
                )
        except ServiceError:
            raise
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise ServiceError(f"malformed query spec JSON: {exc}") from exc
        raise ServiceError(
            f"unknown query spec kind {kind!r}; expected one of {SPEC_KINDS}"
        )

    def describe(self) -> str:
        """One-line human summary (CLI status output)."""
        if self.kind == "pietql":
            text = str(self.text)
            return text if len(text) <= 72 else text[:69] + "..."
        if self.kind == "ingest":
            ts = [s[1] for s in self.samples]
            return (
                f"ingest {len(self.samples)} sample(s) "
                f"[t={min(ts):g}..{max(ts):g}]"
            )
        parts = [f"through {self.target[0]}:{self.target[1]}"]
        for rel, ref in self.constraints:
            parts.append(f"{rel} {ref[0]}:{ref[1]}")
        label = ", ".join(parts) + f" [moft={self.moft_name}]"
        if self.window is not None:
            label += f" [window={self.window[0]:g}..{self.window[1]:g}]"
        return label


def canonical_json(payload: object) -> str:
    """Deterministic JSON text: sorted keys, compact separators.

    Every result and spec the queue persists goes through this one door,
    so equal answers are equal *strings* — the chaos-recovery suite's
    "byte-identical to the serial oracle" check is a plain ``==``.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _sorted_ids(ids) -> list:
    """Id collections as sorted lists (order-insensitive, JSON-safe)."""
    return sorted((_plain(i) for i in ids), key=repr)


def _plain(value):
    """Coerce numpy scalars and tuples to JSON-representable values."""
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def result_payload(kind: str, outcome) -> Dict[str, object]:
    """Project one execution outcome into a JSON-safe result dict.

    ``through`` outcomes are plain counts; ``pietql`` outcomes are
    :class:`~repro.pietql.executor.PietQLResult` instances, projected
    the same way the differential oracle fingerprints them (sorted id
    collections, sorted OLAP items) so that any two exact-equal results
    serialize identically.
    """
    if kind == "through":
        return {"kind": "through", "count": int(outcome)}
    if kind == "ingest":
        # outcome is a repro.ingest.IngestReport.
        return {
            "kind": "ingest",
            "submitted": int(outcome.submitted),
            "ingested": int(outcome.ingested),
            "late": int(outcome.late),
            "buffered": int(outcome.buffered),
            "watermark": float(outcome.watermark),
            "version": int(outcome.ordinal),
            "rows": int(outcome.rows),
        }
    payload: Dict[str, object] = {
        "kind": "pietql",
        "geometry_ids": _sorted_ids(outcome.geometry_ids),
        "count": _plain(outcome.count),
        "matched_objects": (
            None
            if outcome.matched_objects is None
            else _sorted_ids(outcome.matched_objects)
        ),
        "olap_result": (
            None
            if outcome.olap_result is None
            else sorted(
                ([_plain(k), _plain(v)] for k, v in outcome.olap_result.items()),
                key=repr,
            )
        ),
    }
    return payload


__all__ = [
    "SPEC_KINDS",
    "QuerySpec",
    "canonical_json",
    "result_payload",
]
