"""Named evaluation worlds a service instance binds to.

A job stores *what* to compute; the service process decides *against
which data*.  A :class:`ServiceWorld` bundles the evaluation context
with the Piet-QL layer bindings queries resolve against, and
:func:`load_world` builds the two canonical worlds by name:

* ``fig1`` — the paper's exact Figure 1 / Table 1 instance (MOFT
  ``FMbus``; tiny, answers checkable by eye) — the default for the CLI;
* ``synth`` — the 6×6-block synthetic city with the 10,000-sample
  random-waypoint MOFT the differential suites use, generated from
  fixed seeds so every process that loads it sees the same bits.

Streaming worlds: ``load_world(name, streaming=True)`` builds the same
GIS and Time dimensions but replaces the batch-loaded MOFT with an
empty :class:`~repro.ingest.StreamingIngestor` (plus an hour-granule
pre-agg store over the neighborhood polygons).  Query jobs then execute
against :meth:`ServiceWorld.query_context` — the *pinned current
snapshot* of the ingestor — so workers serve consistent answers while
``ingest`` jobs stream samples in concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, Optional, Tuple

from repro.errors import ServiceError
from repro.pietql.executor import LayerBinding
from repro.query.region import EvaluationContext

#: World names :func:`load_world` accepts.
WORLD_NAMES: Tuple[str, ...] = ("fig1", "synth")

#: Piet-QL layer bindings of the Figure 1 instance.
FIG1_BINDINGS: Dict[str, LayerBinding] = {
    "neighborhoods": LayerBinding("Ln", "polygon"),
    "rivers": LayerBinding("Lr", "polyline"),
    "schools": LayerBinding("Ls", "node"),
}

#: Piet-QL layer bindings of the synthetic city.
SYNTH_BINDINGS: Dict[str, LayerBinding] = {
    "cities": LayerBinding("Lc", "polygon"),
    "neighborhoods": LayerBinding("Ln", "polygon"),
    "rivers": LayerBinding("Lr", "polyline"),
    "stores": LayerBinding("Lsto", "node"),
    "schools": LayerBinding("Ls", "node"),
}


@dataclass
class ServiceWorld:
    """An evaluation context plus the bindings queries resolve against.

    When ``ingestor`` is set the world is *streaming*: ``ingest`` jobs
    feed the ingestor, and query jobs must evaluate against
    :meth:`query_context` — the context of the ingestor's current
    published snapshot — rather than the static ``context``.
    """

    name: str
    context: EvaluationContext
    bindings: Dict[str, LayerBinding] = field(default_factory=dict)
    ingestor: Optional[object] = None

    def query_context(self) -> EvaluationContext:
        """The context queries should run against *right now*.

        Streaming worlds pin the ingestor's current snapshot (readers
        of an already-obtained context keep their version; this returns
        the newest).  Batch worlds return the static context.
        """
        if self.ingestor is not None:
            return self.ingestor.snapshot().context()
        return self.context


def _streaming(name, gis, time_dim, moft_name, bindings, granule) -> ServiceWorld:
    from repro.gis import POLYGON
    from repro.ingest import StoreSpec, StreamingIngestor

    ingestor = StreamingIngestor(
        gis,
        time_dim,
        moft_name=moft_name,
        store_specs=[StoreSpec(granule, "Ln", POLYGON)],
    )
    return ServiceWorld(
        name=name,
        context=ingestor.snapshot().context(),
        bindings=bindings,
        ingestor=ingestor,
    )


def load_world(name: str = "fig1", streaming: bool = False) -> ServiceWorld:
    """Build one of the named worlds (deterministic per name).

    With ``streaming=True`` the MOFT starts empty behind a
    :class:`~repro.ingest.StreamingIngestor` (default config: zero
    allowed lateness, compaction every 8 segments) instead of being
    batch-loaded; samples arrive via ``ingest`` jobs or direct
    ``submit`` calls on the ingestor.
    """
    if name == "fig1":
        from repro.synth import figure1_instance

        instance = figure1_instance()
        context = instance.context()
        if streaming:
            return _streaming(
                "fig1", context.gis, context.time, "FMbus",
                dict(FIG1_BINDINGS), "hour",
            )
        return ServiceWorld(
            name="fig1",
            context=context,
            bindings=dict(FIG1_BINDINGS),
        )
    if name == "synth":
        import numpy as np

        from repro.synth import CityConfig, build_city
        from repro.synth.movement import random_waypoint_moft
        from repro.temporal.calendar import hourly
        from repro.temporal.timedim import TimeDimension

        city = build_city(
            CityConfig(cols=6, rows=6), rng=np.random.default_rng(20060109)
        )
        n_instants = 100
        time_dim = TimeDimension.from_mapping(
            hourly(datetime(2006, 1, 9, 0, 0)), range(n_instants)
        )
        if streaming:
            # Hour-of-day granules wrap after 24 hourly instants, so the
            # 100-instant stream maintains day granules instead.
            return _streaming(
                "synth", city.gis, time_dim, "FM", dict(SYNTH_BINDINGS),
                "day",
            )
        moft = random_waypoint_moft(
            city.bounding_box,
            n_objects=100,
            n_instants=n_instants,
            speed=city.config.block_size / 2,
            rng=np.random.default_rng(42),
        )
        return ServiceWorld(
            name="synth",
            context=EvaluationContext(city.gis, time_dim, moft),
            bindings=dict(SYNTH_BINDINGS),
        )
    raise ServiceError(
        f"unknown world {name!r}; expected one of {WORLD_NAMES}"
    )


__all__ = [
    "FIG1_BINDINGS",
    "SYNTH_BINDINGS",
    "WORLD_NAMES",
    "ServiceWorld",
    "load_world",
]
