"""Named evaluation worlds a service instance binds to.

A job stores *what* to compute; the service process decides *against
which data*.  A :class:`ServiceWorld` bundles the evaluation context
with the Piet-QL layer bindings queries resolve against, and
:func:`load_world` builds the two canonical worlds by name:

* ``fig1`` — the paper's exact Figure 1 / Table 1 instance (MOFT
  ``FMbus``; tiny, answers checkable by eye) — the default for the CLI;
* ``synth`` — the 6×6-block synthetic city with the 10,000-sample
  random-waypoint MOFT the differential suites use, generated from
  fixed seeds so every process that loads it sees the same bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Dict, Tuple

from repro.errors import ServiceError
from repro.pietql.executor import LayerBinding
from repro.query.region import EvaluationContext

#: World names :func:`load_world` accepts.
WORLD_NAMES: Tuple[str, ...] = ("fig1", "synth")

#: Piet-QL layer bindings of the Figure 1 instance.
FIG1_BINDINGS: Dict[str, LayerBinding] = {
    "neighborhoods": LayerBinding("Ln", "polygon"),
    "rivers": LayerBinding("Lr", "polyline"),
    "schools": LayerBinding("Ls", "node"),
}

#: Piet-QL layer bindings of the synthetic city.
SYNTH_BINDINGS: Dict[str, LayerBinding] = {
    "cities": LayerBinding("Lc", "polygon"),
    "neighborhoods": LayerBinding("Ln", "polygon"),
    "rivers": LayerBinding("Lr", "polyline"),
    "stores": LayerBinding("Lsto", "node"),
    "schools": LayerBinding("Ls", "node"),
}


@dataclass
class ServiceWorld:
    """An evaluation context plus the bindings queries resolve against."""

    name: str
    context: EvaluationContext
    bindings: Dict[str, LayerBinding] = field(default_factory=dict)


def load_world(name: str = "fig1") -> ServiceWorld:
    """Build one of the named worlds (deterministic per name)."""
    if name == "fig1":
        from repro.synth import figure1_instance

        return ServiceWorld(
            name="fig1",
            context=figure1_instance().context(),
            bindings=dict(FIG1_BINDINGS),
        )
    if name == "synth":
        import numpy as np

        from repro.synth import CityConfig, build_city
        from repro.synth.movement import random_waypoint_moft
        from repro.temporal.calendar import hourly
        from repro.temporal.timedim import TimeDimension

        city = build_city(
            CityConfig(cols=6, rows=6), rng=np.random.default_rng(20060109)
        )
        n_instants = 100
        moft = random_waypoint_moft(
            city.bounding_box,
            n_objects=100,
            n_instants=n_instants,
            speed=city.config.block_size / 2,
            rng=np.random.default_rng(42),
        )
        time_dim = TimeDimension.from_mapping(
            hourly(datetime(2006, 1, 9, 0, 0)), range(n_instants)
        )
        return ServiceWorld(
            name="synth",
            context=EvaluationContext(city.gis, time_dim, moft),
            bindings=dict(SYNTH_BINDINGS),
        )
    raise ServiceError(
        f"unknown world {name!r}; expected one of {WORLD_NAMES}"
    )


__all__ = [
    "FIG1_BINDINGS",
    "SYNTH_BINDINGS",
    "WORLD_NAMES",
    "ServiceWorld",
    "load_world",
]
