"""Workers: claim → execute → record, plus the lease reaper.

A :class:`Worker` drains the queue one claim at a time: parse the
stored spec, execute it through the cost-based planner and a
:class:`~repro.parallel.ShardedExecutor`, persist the canonical result
JSON, the EXPLAIN plan and a per-job metrics snapshot, and mark the job
``done`` — or report the failure, letting the queue's retry bookkeeping
decide between re-queue, ``failed`` and ``dead``.

Error classification: *semantic* errors (malformed Piet-QL, unknown
layers, bad windows — retrying cannot change the outcome) are
non-retryable and land the job in ``failed`` on the first attempt;
*infrastructure* errors (injected faults, shard-execution failures,
anything unexpected) are retryable.

Fault injection composes with :class:`~repro.faults.FaultPlan`: the
worker consults the plan per ``(job.seq - 1, job.attempts - 1)`` — the
same *(task, attempt)* coordinates the resilient fan-out uses, with
submission order numbering the tasks.  Kinds map onto service
semantics:

* ``drop`` / ``truncate`` — the worker *crashes* mid-job: the fault is
  recorded on the job's trace, then the worker abandons the claim
  without reporting.  Nothing happens until the lease expires and the
  reaper re-queues the job — the crash-recovery path under test in
  ``tests/service/test_chaos_recovery.py``;
* ``raise`` — execution raises :class:`~repro.faults.FaultInjected`
  (a retryable failure: the queue re-queues or kills the job);
* ``latency`` — the attempt sleeps ``latency_s`` before executing,
  deterministically exercising lease expiry when ``latency_s`` exceeds
  the lease.

:class:`WorkerPool` runs N workers as threads plus a reaper thread
periodically calling :meth:`~repro.service.queue.JobQueue
.release_expired`; :meth:`WorkerPool.drain` blocks until the queue has
no active jobs (the ``serve --drain`` CLI mode).
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Callable, List, Optional, Tuple

from repro.errors import (
    IngestError,
    LeaseLostError,
    PietQLError,
    QueryError,
    ReproError,
    SchemaError,
    ServiceError,
)
from repro.obs import PipelineStats
from repro.service.queue import Job, JobQueue
from repro.service.spec import QuerySpec, canonical_json, result_payload
from repro.service.worlds import ServiceWorld

#: Error types whose jobs go straight to ``failed`` (no retry can help).
NON_RETRYABLE = (QueryError, PietQLError, SchemaError, ServiceError, IngestError)


def execute_spec(
    spec: QuerySpec,
    world: ServiceWorld,
    backend: str = "serial",
    n_shards: Optional[int] = None,
    obs: Optional[PipelineStats] = None,
) -> Tuple[str, Optional[str]]:
    """Execute one spec; return ``(canonical result JSON, explain text)``.

    ``through`` specs run through
    :func:`~repro.query.planner.planned_count_objects_through` with a
    sharded executor as the fan-out candidate, so the persisted EXPLAIN
    plan records the strategy the cost model actually picked; ``pietql``
    specs run through :class:`~repro.parallel.ShardedPietQLExecutor`.

    Query kinds evaluate against :meth:`~repro.service.worlds
    .ServiceWorld.query_context` — on a streaming world that pins the
    ingestor's current snapshot for the whole execution, so an
    ``ingest`` job landing on another worker mid-query can never tear
    this one's view.  ``ingest`` specs feed the world's ingestor and
    return the per-batch accounting as their result payload.
    """
    from repro.parallel import ShardedExecutor, ShardedPietQLExecutor
    from repro.query.planner import planned_count_objects_through

    if spec.kind == "ingest":
        if world.ingestor is None:
            raise ServiceError(
                f"world {world.name!r} is not streaming; ingest jobs need "
                f"load_world(..., streaming=True)"
            )
        report = world.ingestor.submit(
            [s[0] for s in spec.samples],
            [s[1] for s in spec.samples],
            [s[2] for s in spec.samples],
            [s[3] for s in spec.samples],
        )
        return canonical_json(result_payload("ingest", report)), None
    context = world.query_context()
    observer = obs if obs is not None else context.obs
    executor = ShardedExecutor(
        backend=backend, n_shards=n_shards, obs=observer
    )
    if spec.kind == "through":
        count, plan = planned_count_objects_through(
            context,
            spec.target,
            list(spec.constraints),
            moft_name=spec.moft_name,
            window=spec.window,
            executor=executor,
        )
        return (
            canonical_json(result_payload("through", count)),
            plan.render(),
        )
    result = ShardedPietQLExecutor(
        context, world.bindings, sharded=executor
    ).execute(spec.text)
    explain = result.plan.render() if result.plan is not None else None
    return canonical_json(result_payload("pietql", result)), explain


def _job_metrics(job: Job, run_seconds: float) -> str:
    """The per-job metrics snapshot persisted onto the job record."""
    queue_wait = (
        max(0.0, job.claimed_at - job.submitted_at)
        if job.claimed_at is not None
        else 0.0
    )
    return canonical_json({
        "attempts": job.attempts,
        "retries": job.retries,
        "queue_wait_s": queue_wait,
        "run_s": run_seconds,
        "worker_id": job.worker_id,
    })


class Worker:
    """Claims and executes jobs; drive it via :meth:`step` or a thread.

    Parameters
    ----------
    queue / world:
        Where jobs come from and what they run against.
    worker_id:
        Stable identity used for lease ownership checks.
    lease_s:
        Visibility timeout requested with each claim.  Must comfortably
        exceed a query's execution time; a slow job can
        :meth:`~repro.service.queue.JobQueue.extend_lease` (not done
        automatically — queries here are short).
    backend / n_shards:
        The sharded-executor configuration jobs execute with.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` injecting worker
        crashes and failures (testing only); see the module docstring
        for the coordinate convention.
    obs:
        Service-level observer (counters + stage timers).
    """

    def __init__(
        self,
        queue: JobQueue,
        world: ServiceWorld,
        worker_id: str = "worker-0",
        lease_s: float = 30.0,
        backend: str = "serial",
        n_shards: Optional[int] = None,
        fault_plan: Optional[object] = None,
        obs: Optional[PipelineStats] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.queue = queue
        self.world = world
        self.worker_id = str(worker_id)
        self.lease_s = float(lease_s)
        self.backend = backend
        self.n_shards = n_shards
        self.fault_plan = fault_plan
        self.obs = obs if obs is not None else queue.obs
        self.clock = clock

    # -- fault-plan consultation ---------------------------------------------

    def _scheduled_fault(self, job: Job):
        if self.fault_plan is None:
            return None
        return self.fault_plan.fault_for(job.seq - 1, job.attempts - 1)

    def _fire(self, job: Job, fault) -> None:
        self.fault_plan.record(fault)
        self.obs.incr("fault_injected")
        self.queue.record_fault(job.job_id, fault.describe())

    # -- one unit of work ----------------------------------------------------

    def step(self) -> Optional[Job]:
        """Claim and process at most one job; None when queue was empty.

        Returns the job's record as this worker last saw it — or, for a
        simulated crash, the abandoned (still-claimed) record the reaper
        will later release.
        """
        job = self.queue.claim(self.worker_id, lease_s=self.lease_s)
        if job is None:
            return None
        return self.process(job)

    def process(self, job: Job) -> Job:
        """Execute one claimed job through to a reported outcome."""
        fault = self._scheduled_fault(job)
        if fault is not None and fault.kind in ("drop", "truncate"):
            # Simulated worker death: record the fault for the trace,
            # then vanish without reporting.  The job stays claimed; the
            # lease must expire before anyone can touch it again.
            self._fire(job, fault)
            self.obs.incr("worker_crashes")
            return self.queue.get(job.job_id)
        started = self.clock()
        self.obs.incr("workers_busy")
        try:
            job = self.queue.start(job.job_id, self.worker_id)
            if fault is not None:
                from repro.faults import FaultInjected

                self._fire(job, fault)
                if fault.kind == "raise":
                    raise FaultInjected(
                        f"injected fault: {fault.describe()}"
                    )
                time.sleep(fault.latency_s)  # latency fault
            result_json, explain = execute_spec(
                job.spec,
                self.world,
                backend=self.backend,
                n_shards=self.n_shards,
                obs=self.obs,
            )
            run_seconds = self.clock() - started
            self.obs.record("service_run", run_seconds)
            return self.queue.complete(
                job.job_id,
                self.worker_id,
                result_json,
                explain=explain,
                metrics_json=_job_metrics(job, run_seconds),
            )
        except LeaseLostError:
            # The reaper re-queued this job under us (e.g. a latency
            # fault outlived the lease); another claim owns it now and
            # our outcome must not be recorded.
            return self.queue.get(job.job_id)
        except ReproError as exc:
            run_seconds = self.clock() - started
            self.obs.record("service_run", run_seconds)
            retryable = not isinstance(exc, NON_RETRYABLE)
            try:
                return self.queue.fail(
                    job.job_id,
                    self.worker_id,
                    f"{type(exc).__name__}: {exc}",
                    retryable=retryable,
                    metrics_json=_job_metrics(job, run_seconds),
                )
            except LeaseLostError:
                return self.queue.get(job.job_id)
        except Exception as exc:  # unexpected: retryable infrastructure
            run_seconds = self.clock() - started
            self.obs.record("service_run", run_seconds)
            detail = "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip()
            try:
                return self.queue.fail(
                    job.job_id,
                    self.worker_id,
                    detail,
                    retryable=True,
                    metrics_json=_job_metrics(job, run_seconds),
                )
            except LeaseLostError:
                return self.queue.get(job.job_id)
        finally:
            self.obs.incr("workers_busy", -1)

    # -- thread loop ---------------------------------------------------------

    def run_loop(
        self, stop: threading.Event, poll_s: float = 0.02
    ) -> None:
        """Drain the queue until ``stop`` is set; idle-sleep between polls."""
        while not stop.is_set():
            if self.step() is None:
                idle_start = self.clock()
                stop.wait(poll_s)
                self.obs.record("worker_idle", self.clock() - idle_start)


class WorkerPool:
    """N worker threads plus the lease reaper, start/stop managed."""

    def __init__(
        self,
        queue: JobQueue,
        world: ServiceWorld,
        n_workers: int = 2,
        lease_s: float = 30.0,
        backend: str = "serial",
        n_shards: Optional[int] = None,
        fault_plan: Optional[object] = None,
        obs: Optional[PipelineStats] = None,
        poll_s: float = 0.02,
        reap_interval_s: float = 0.05,
    ) -> None:
        if n_workers < 1:
            raise ServiceError(f"n_workers must be >= 1, got {n_workers}")
        self.queue = queue
        self.world = world
        self.obs = obs if obs is not None else queue.obs
        self.poll_s = float(poll_s)
        self.reap_interval_s = float(reap_interval_s)
        self.workers: List[Worker] = [
            Worker(
                queue,
                world,
                worker_id=f"worker-{i}",
                lease_s=lease_s,
                backend=backend,
                n_shards=n_shards,
                fault_plan=fault_plan,
                obs=self.obs,
            )
            for i in range(n_workers)
        ]
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []

    @property
    def running(self) -> bool:
        return bool(self._threads)

    def start(self) -> "WorkerPool":
        """Spawn the worker threads and the reaper (idempotent)."""
        if self._threads:
            return self
        self._stop.clear()
        for worker in self.workers:
            thread = threading.Thread(
                target=worker.run_loop,
                args=(self._stop, self.poll_s),
                name=f"repro-{worker.worker_id}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        reaper = threading.Thread(
            target=self._reap_loop, name="repro-lease-reaper", daemon=True
        )
        reaper.start()
        self._threads.append(reaper)
        return self

    def _reap_loop(self) -> None:
        while not self._stop.is_set():
            self.queue.release_expired()
            self._stop.wait(self.reap_interval_s)

    def stop(self, timeout: float = 10.0) -> None:
        """Signal every thread and join them."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    def drain(self, timeout: float = 60.0) -> None:
        """Block until no job is queued, claimed or running.

        The pool must be started; raises :class:`ServiceError` on
        timeout (with the stuck state counts in the message).
        """
        if not self._threads:
            raise ServiceError("worker pool is not started; call start()")
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.queue.active() == 0:
                return
            time.sleep(min(self.poll_s, 0.02))
        raise ServiceError(
            f"drain timed out after {timeout:g}s with active jobs: "
            f"{self.queue.counts()}"
        )

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = ["NON_RETRYABLE", "Worker", "WorkerPool", "execute_spec"]
