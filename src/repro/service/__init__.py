"""The query service layer: durable jobs over the sharded engine.

The engine below this package is a library — every query runs
synchronously in the caller's process.  :mod:`repro.service` turns it
into a long-running service front:

* :mod:`~repro.service.spec` — serializable query specs (builder-API
  ``through`` counts and Piet-QL strings) plus canonical result JSON;
* :mod:`~repro.service.queue` — the durable job queue
  (:class:`SQLiteJobQueue`, with :class:`MemoryJobQueue` as the
  in-process fallback): states ``queued → claimed → running →
  done | failed | dead``, lease-based claiming with visibility
  timeouts, bounded retries;
* :mod:`~repro.service.admission` — queue-depth and per-client
  in-flight caps with typed rejections;
* :mod:`~repro.service.worker` — workers that claim jobs, execute them
  through the cost-based planner and
  :class:`~repro.parallel.ShardedExecutor`, and persist results plus
  EXPLAIN plans; the lease reaper that re-queues crashed workers' jobs;
* :mod:`~repro.service.service` — the :class:`QueryService` facade
  (``submit`` / ``status`` / ``result`` / ``cancel``) the CLI verbs
  ``python -m repro serve|submit|status|result`` are built on;
* :mod:`~repro.service.worlds` — named evaluation worlds
  (``fig1`` / ``synth``) a service instance binds to.

See ``docs/service.md`` for queue states, lease/retry semantics and the
metrics glossary.
"""

from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.queue import (
    JOB_STATES,
    TERMINAL_STATES,
    Job,
    JobQueue,
    MemoryJobQueue,
    SQLiteJobQueue,
)
from repro.service.service import QueryService
from repro.service.spec import QuerySpec, canonical_json, result_payload
from repro.service.worker import Worker, WorkerPool, execute_spec
from repro.service.worlds import ServiceWorld, load_world

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "AdmissionController",
    "AdmissionPolicy",
    "Job",
    "JobQueue",
    "MemoryJobQueue",
    "QueryService",
    "QuerySpec",
    "SQLiteJobQueue",
    "ServiceWorld",
    "Worker",
    "WorkerPool",
    "canonical_json",
    "execute_spec",
    "load_world",
    "result_payload",
]
