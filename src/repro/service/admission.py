"""Admission control: bounded queues, typed rejections.

A service that accepts every submission melts under sustained overload;
admission control bounces work *before* it consumes queue space.  Two
caps, both checked at submit time:

* **queue depth** — the queue may hold at most ``max_queue_depth``
  queued jobs; past that, submissions raise
  :class:`~repro.errors.QueueFullError` (global backpressure);
* **per-client in-flight** — one client may have at most
  ``max_in_flight_per_client`` jobs in a non-terminal state; past that,
  :class:`~repro.errors.ClientThrottledError` (fairness: one greedy
  client cannot starve the rest).

Rejections are typed (both derive from
:class:`~repro.errors.AdmissionError`) and counted on the observer
(``jobs_rejected``), and the CLI maps them to exit status 2.  The
depth check is advisory under cross-process races (two submitters can
both pass at depth cap−1); :class:`~repro.service.service.QueryService`
closes the in-process race by admitting and enqueuing under one lock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ClientThrottledError, QueueFullError, ServiceError
from repro.obs import PipelineStats
from repro.service.queue import JobQueue


@dataclass(frozen=True)
class AdmissionPolicy:
    """The two caps an :class:`AdmissionController` enforces."""

    max_queue_depth: int = 1024
    max_in_flight_per_client: int = 64

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ServiceError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.max_in_flight_per_client < 1:
            raise ServiceError(
                f"max_in_flight_per_client must be >= 1, got "
                f"{self.max_in_flight_per_client}"
            )


class AdmissionController:
    """Checks a submission against the policy before it is enqueued."""

    def __init__(
        self,
        policy: Optional[AdmissionPolicy] = None,
        obs: Optional[PipelineStats] = None,
    ) -> None:
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.obs = obs if obs is not None else PipelineStats()

    def admit(self, queue: JobQueue, client_id: str) -> None:
        """Raise a typed :class:`AdmissionError` if either cap is hit."""
        depth = queue.depth()
        if depth >= self.policy.max_queue_depth:
            self.obs.incr("jobs_rejected")
            raise QueueFullError(
                f"queue is full ({depth} queued >= cap "
                f"{self.policy.max_queue_depth}); retry later"
            )
        in_flight = queue.in_flight(client_id)
        if in_flight >= self.policy.max_in_flight_per_client:
            self.obs.incr("jobs_rejected")
            raise ClientThrottledError(
                f"client {client_id!r} has {in_flight} jobs in flight "
                f">= cap {self.policy.max_in_flight_per_client}; "
                f"wait for results before submitting more"
            )


__all__ = ["AdmissionController", "AdmissionPolicy"]
