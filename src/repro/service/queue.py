"""The durable job queue: states, leases, retries.

One job = one submitted :class:`~repro.service.spec.QuerySpec` plus its
lifecycle record.  The state machine::

                      submit
                        │
                        ▼
        ┌───────────► queued ──cancel──► cancelled
        │               │
        │             claim (lease granted)
        │               │
        │               ▼
   lease expired ◄── claimed ──start──► running
   or retryable         │                  │
   failure, with        └───── outcome ────┤
   attempts left                           │
        ▲                                  ▼
        │                  done (result + EXPLAIN + metrics persisted)
        │                  failed (non-retryable error)
        └───────────────── dead (retries exhausted / lease budget spent)

Claiming is *lease-based*: a claim hands the worker a visibility
timeout (``lease_until``).  A worker that crashes mid-job never reports
back; once the lease expires, :meth:`JobQueue.release_expired` (the
reaper) puts the job back on the queue — or moves it to ``dead`` when
its attempt budget is spent.  Late writes from a superseded worker are
rejected with :class:`~repro.errors.LeaseLostError` (ownership is
checked on every outcome), which is what makes double-execution
impossible to *record* even when it happens to *run*.

Retry bookkeeping mirrors the engine's
:class:`~repro.parallel.backends.RetryPolicy` vocabulary:
``max_retries`` is the number of *extra* claims a job may consume after
its first, so a job is re-queued while ``attempts <= max_retries`` and
goes to ``dead`` on the attempt after that.

Two implementations, one contract (``tests/service/test_queue.py`` runs
the same suite over both):

* :class:`MemoryJobQueue` — dicts under one lock; the in-process
  fallback and the stress-test substrate;
* :class:`SQLiteJobQueue` — one ``jobs`` table; survives process death
  and is shared across processes (the CLI ``submit`` verb enqueues into
  the file a ``serve`` process drains).

Both accept an injectable ``clock`` (defaults to :func:`time.time`) so
lease expiry is testable without sleeping, and an optional
:class:`~repro.obs.PipelineStats` observer that receives the service
counters and the ``queue_depth`` / ``jobs_in_flight`` gauges.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import (
    JobNotFoundError,
    JobStateError,
    LeaseLostError,
    ServiceError,
)
from repro.obs import PipelineStats
from repro.service.spec import QuerySpec

#: Every job state, in lifecycle order.
JOB_STATES: Tuple[str, ...] = (
    "queued", "claimed", "running", "done", "failed", "dead", "cancelled",
)

#: States a job never leaves.
TERMINAL_STATES: Tuple[str, ...] = ("done", "failed", "dead", "cancelled")

#: States that count against a client's in-flight cap.
ACTIVE_STATES: Tuple[str, ...] = ("queued", "claimed", "running")


@dataclass(frozen=True)
class Job:
    """One job record — an immutable snapshot of the queue's row."""

    job_id: str
    seq: int
    client_id: str
    spec_json: str
    state: str
    attempts: int
    max_retries: int
    submitted_at: float
    claimed_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    lease_until: Optional[float] = None
    worker_id: Optional[str] = None
    result_json: Optional[str] = None
    explain: Optional[str] = None
    error: Optional[str] = None
    fault_trace: Optional[str] = None
    metrics_json: Optional[str] = None

    @property
    def spec(self) -> QuerySpec:
        """The parsed query spec."""
        return QuerySpec.from_json(self.spec_json)

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def retries(self) -> int:
        """Claims consumed beyond the first."""
        return max(0, self.attempts - 1)

    def describe(self) -> str:
        label = f"{self.job_id} [{self.state}] attempts={self.attempts}"
        if self.error:
            label += f" error={self.error!r}"
        return label


_COLUMNS = (
    "job_id", "seq", "client_id", "spec_json", "state", "attempts",
    "max_retries", "submitted_at", "claimed_at", "started_at",
    "finished_at", "lease_until", "worker_id", "result_json", "explain",
    "error", "fault_trace", "metrics_json",
)


class JobQueue:
    """The queue contract both implementations satisfy.

    Concrete subclasses implement the storage primitives (`_load`,
    `_store`, `_next_seq`, `_select_queued`, `_select_active`,
    `_select_leased`, `_counts`); the state machine itself — claim
    ownership, retry budgets, lease expiry — lives here so the two
    backends cannot drift.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.time,
        obs: Optional[PipelineStats] = None,
    ) -> None:
        self.clock = clock
        self.obs = obs if obs is not None else PipelineStats()
        self._lock = threading.RLock()

    # -- storage primitives (subclass responsibility) ------------------------

    def _load(self, job_id: str) -> Optional[Job]:
        raise NotImplementedError

    def _store(self, job: Job) -> None:
        raise NotImplementedError

    def _next_seq(self) -> int:
        raise NotImplementedError

    def _select_queued(self) -> Optional[Job]:
        """The oldest queued job (by seq), or None."""
        raise NotImplementedError

    def _select_leased(self) -> List[Job]:
        """Every claimed/running job (lease holders)."""
        raise NotImplementedError

    def _counts(self) -> Dict[str, int]:
        """Job count per state (absent states may be omitted)."""
        raise NotImplementedError

    def _active_for(self, client_id: str) -> int:
        """Number of this client's jobs in an active state."""
        raise NotImplementedError

    # -- shared gauge upkeep -------------------------------------------------

    def _refresh_gauges(self) -> None:
        counts = self._counts()
        self.obs.gauge("queue_depth", counts.get("queued", 0))
        self.obs.gauge(
            "jobs_in_flight",
            sum(counts.get(state, 0) for state in ACTIVE_STATES),
        )

    # -- the state machine ---------------------------------------------------

    def enqueue(
        self,
        spec: QuerySpec,
        client_id: str = "anonymous",
        max_retries: int = 2,
    ) -> Job:
        """Append a job in state ``queued``; returns the stored record."""
        if max_retries < 0:
            raise ServiceError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        with self._lock:
            seq = self._next_seq()
            job = Job(
                job_id=f"J{seq:06d}",
                seq=seq,
                client_id=str(client_id),
                spec_json=spec.to_json(),
                state="queued",
                attempts=0,
                max_retries=int(max_retries),
                submitted_at=self.clock(),
            )
            self._store(job)
            self.obs.incr("jobs_submitted")
            self._refresh_gauges()
            return job

    def claim(self, worker_id: str, lease_s: float = 30.0) -> Optional[Job]:
        """Atomically hand the oldest queued job to ``worker_id``.

        The job moves to ``claimed`` with a lease expiring ``lease_s``
        seconds from now; its attempt counter advances.  Returns None
        when nothing is queued.  Claim uniqueness holds under thread
        *and* process contention: the memory queue claims under its
        lock, the SQLite queue inside an immediate transaction.
        """
        if lease_s <= 0:
            raise ServiceError(f"lease_s must be positive, got {lease_s}")
        with self._lock:
            job = self._select_queued()
            if job is None:
                return None
            now = self.clock()
            claimed = replace(
                job,
                state="claimed",
                attempts=job.attempts + 1,
                claimed_at=now,
                lease_until=now + float(lease_s),
                worker_id=str(worker_id),
            )
            self._store(claimed)
            self.obs.incr("jobs_claimed")
            self.obs.record(
                "service_queue_wait", max(0.0, now - job.submitted_at)
            )
            self._refresh_gauges()
            return claimed

    def _owned(self, job_id: str, worker_id: str) -> Job:
        job = self.get(job_id)
        if job.state not in ("claimed", "running") or (
            job.worker_id != worker_id
        ):
            raise LeaseLostError(
                f"worker {worker_id!r} no longer holds the lease on "
                f"{job_id} (state={job.state!r}, "
                f"holder={job.worker_id!r})"
            )
        return job

    def start(self, job_id: str, worker_id: str) -> Job:
        """Mark a claimed job ``running`` (ownership checked)."""
        with self._lock:
            job = self._owned(job_id, worker_id)
            started = replace(
                job, state="running", started_at=self.clock()
            )
            self._store(started)
            return started

    def extend_lease(
        self, job_id: str, worker_id: str, lease_s: float
    ) -> Job:
        """Heartbeat: push the owned job's visibility timeout forward."""
        with self._lock:
            job = self._owned(job_id, worker_id)
            extended = replace(
                job, lease_until=self.clock() + float(lease_s)
            )
            self._store(extended)
            return extended

    def record_fault(self, job_id: str, description: str) -> Job:
        """Append one injected-fault description to the job's trace.

        Written by workers *before* a simulated crash, so a job that
        later lands in ``dead`` still carries the full fault history.
        """
        with self._lock:
            job = self.get(job_id)
            trace = (
                description
                if not job.fault_trace
                else f"{job.fault_trace}; {description}"
            )
            updated = replace(job, fault_trace=trace)
            self._store(updated)
            return updated

    def complete(
        self,
        job_id: str,
        worker_id: str,
        result_json: str,
        explain: Optional[str] = None,
        metrics_json: Optional[str] = None,
    ) -> Job:
        """Record a successful outcome; the job becomes ``done``."""
        with self._lock:
            job = self._owned(job_id, worker_id)
            now = self.clock()
            done = replace(
                job,
                state="done",
                finished_at=now,
                lease_until=None,
                result_json=result_json,
                explain=explain,
                metrics_json=metrics_json,
            )
            self._store(done)
            self.obs.incr("jobs_completed")
            self._refresh_gauges()
            return done

    def fail(
        self,
        job_id: str,
        worker_id: str,
        error: str,
        retryable: bool = True,
        metrics_json: Optional[str] = None,
    ) -> Job:
        """Record a failed attempt.

        Non-retryable errors (malformed queries — retrying cannot help)
        move the job straight to ``failed``.  Retryable ones re-queue it
        while the attempt budget lasts, then move it to ``dead``.
        """
        with self._lock:
            job = self._owned(job_id, worker_id)
            now = self.clock()
            if not retryable:
                outcome = replace(
                    job,
                    state="failed",
                    finished_at=now,
                    lease_until=None,
                    error=str(error),
                    metrics_json=metrics_json,
                )
                self.obs.incr("jobs_failed")
            elif job.attempts <= job.max_retries:
                outcome = replace(
                    job,
                    state="queued",
                    lease_until=None,
                    worker_id=None,
                    error=str(error),
                    metrics_json=metrics_json,
                )
                self.obs.incr("jobs_requeued")
            else:
                outcome = replace(
                    job,
                    state="dead",
                    finished_at=now,
                    lease_until=None,
                    error=str(error),
                    metrics_json=metrics_json,
                )
                self.obs.incr("jobs_dead")
            self._store(outcome)
            self._refresh_gauges()
            return outcome

    def release_expired(self, now: Optional[float] = None) -> List[Job]:
        """The reaper: re-queue (or kill) jobs whose lease expired.

        A claimed/running job past its ``lease_until`` was abandoned by
        a crashed or wedged worker.  With attempt budget left it goes
        back to ``queued`` (a later claim re-runs it from the stored
        spec); otherwise it is ``dead`` with a lease-expiry error.
        Returns the released records, oldest first.
        """
        released: List[Job] = []
        with self._lock:
            now = self.clock() if now is None else float(now)
            for job in sorted(self._select_leased(), key=lambda j: j.seq):
                if job.lease_until is None or job.lease_until > now:
                    continue
                error = (
                    f"lease expired after attempt {job.attempts} "
                    f"(worker {job.worker_id!r} presumed dead)"
                )
                if job.attempts <= job.max_retries:
                    outcome = replace(
                        job,
                        state="queued",
                        lease_until=None,
                        worker_id=None,
                        error=error,
                    )
                    self.obs.incr("jobs_reclaimed")
                else:
                    outcome = replace(
                        job,
                        state="dead",
                        finished_at=now,
                        lease_until=None,
                        error=error,
                    )
                    self.obs.incr("jobs_reclaimed")
                    self.obs.incr("jobs_dead")
                self._store(outcome)
                released.append(outcome)
            if released:
                self._refresh_gauges()
        return released

    def cancel(self, job_id: str) -> Job:
        """Cancel a still-queued job; anything further along refuses."""
        with self._lock:
            job = self.get(job_id)
            if job.state != "queued":
                raise JobStateError(
                    f"cannot cancel {job_id}: state is {job.state!r} "
                    f"(only queued jobs are cancellable)"
                )
            cancelled = replace(
                job, state="cancelled", finished_at=self.clock()
            )
            self._store(cancelled)
            self.obs.incr("jobs_cancelled")
            self._refresh_gauges()
            return cancelled

    # -- introspection -------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """The job record, or :class:`JobNotFoundError`."""
        job = self._load(job_id)
        if job is None:
            raise JobNotFoundError(f"no job with id {job_id!r}")
        return job

    def depth(self) -> int:
        """Number of currently queued jobs."""
        return self._counts().get("queued", 0)

    def in_flight(self, client_id: str) -> int:
        """This client's jobs in an active (non-terminal) state."""
        return self._active_for(str(client_id))

    def counts(self) -> Dict[str, int]:
        """Job count per state (every state present, zeros included)."""
        counts = self._counts()
        return {state: counts.get(state, 0) for state in JOB_STATES}

    def active(self) -> int:
        """Jobs anywhere between submission and a terminal state."""
        counts = self._counts()
        return sum(counts.get(state, 0) for state in ACTIVE_STATES)


class MemoryJobQueue(JobQueue):
    """Dict-backed queue: the in-process fallback (no durability)."""

    def __init__(
        self,
        clock: Callable[[], float] = time.time,
        obs: Optional[PipelineStats] = None,
    ) -> None:
        super().__init__(clock=clock, obs=obs)
        self._jobs: Dict[str, Job] = {}
        self._seq = 0

    def _load(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def _store(self, job: Job) -> None:
        with self._lock:
            self._jobs[job.job_id] = job

    def _next_seq(self) -> int:
        with self._lock:
            self._seq += 1
            return self._seq

    def _select_queued(self) -> Optional[Job]:
        with self._lock:
            queued = [j for j in self._jobs.values() if j.state == "queued"]
            return min(queued, key=lambda j: j.seq) if queued else None

    def _select_leased(self) -> List[Job]:
        with self._lock:
            return [
                j for j in self._jobs.values()
                if j.state in ("claimed", "running")
            ]

    def _counts(self) -> Dict[str, int]:
        with self._lock:
            counts: Dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return counts

    def _active_for(self, client_id: str) -> int:
        with self._lock:
            return sum(
                1
                for j in self._jobs.values()
                if j.client_id == client_id and j.state in ACTIVE_STATES
            )


_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id       TEXT PRIMARY KEY,
    seq          INTEGER NOT NULL,
    client_id    TEXT NOT NULL,
    spec_json    TEXT NOT NULL,
    state        TEXT NOT NULL,
    attempts     INTEGER NOT NULL,
    max_retries  INTEGER NOT NULL,
    submitted_at REAL NOT NULL,
    claimed_at   REAL,
    started_at   REAL,
    finished_at  REAL,
    lease_until  REAL,
    worker_id    TEXT,
    result_json  TEXT,
    "explain"    TEXT,
    error        TEXT,
    fault_trace  TEXT,
    metrics_json TEXT
);
CREATE INDEX IF NOT EXISTS jobs_state_seq ON jobs (state, seq);
CREATE TABLE IF NOT EXISTS job_seq (value INTEGER NOT NULL);
"""


class SQLiteJobQueue(JobQueue):
    """SQLite-backed queue: durable across process death, multi-process.

    One writer connection per queue instance (``check_same_thread``
    off, every access under the instance lock); cross-process claims
    serialize through ``BEGIN IMMEDIATE`` transactions, so a job file
    shared by a ``submit`` CLI process and a ``serve`` worker pool
    behaves like one queue.
    """

    def __init__(
        self,
        path: str,
        clock: Callable[[], float] = time.time,
        obs: Optional[PipelineStats] = None,
    ) -> None:
        super().__init__(clock=clock, obs=obs)
        self.path = str(path)
        try:
            self._conn = sqlite3.connect(
                self.path, check_same_thread=False, timeout=30.0
            )
        except sqlite3.Error as exc:
            raise ServiceError(
                f"cannot open job queue database {self.path!r}: {exc}"
            ) from exc
        self._conn.row_factory = sqlite3.Row
        with self._lock, self._conn:
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute("SELECT value FROM job_seq").fetchone()
            if row is None:
                self._conn.execute("INSERT INTO job_seq VALUES (0)")

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- row mapping ---------------------------------------------------------

    @staticmethod
    def _row_to_job(row: sqlite3.Row) -> Job:
        return Job(**{name: row[name] for name in _COLUMNS})

    def _store(self, job: Job) -> None:
        values = [getattr(job, name) for name in _COLUMNS]
        placeholders = ", ".join("?" for _ in _COLUMNS)
        quoted = ", ".join(f'"{name}"' for name in _COLUMNS)
        with self._lock, self._conn:
            self._conn.execute(
                f"INSERT OR REPLACE INTO jobs ({quoted}) "
                f"VALUES ({placeholders})",
                values,
            )

    def _load(self, job_id: str) -> Optional[Job]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
        return self._row_to_job(row) if row is not None else None

    def _next_seq(self) -> int:
        with self._lock, self._conn:
            self._conn.execute("UPDATE job_seq SET value = value + 1")
            return self._conn.execute(
                "SELECT value FROM job_seq"
            ).fetchone()[0]

    def _select_queued(self) -> Optional[Job]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE state = 'queued' "
                "ORDER BY seq LIMIT 1"
            ).fetchone()
        return self._row_to_job(row) if row is not None else None

    def _select_leased(self) -> List[Job]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE state IN ('claimed', 'running')"
            ).fetchall()
        return [self._row_to_job(row) for row in rows]

    def _counts(self) -> Dict[str, int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        return {row["state"]: row["n"] for row in rows}

    def _active_for(self, client_id: str) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM jobs WHERE client_id = ? "
                "AND state IN ('queued', 'claimed', 'running')",
                (client_id,),
            ).fetchone()
        return int(row["n"])

    # -- cross-process claim atomicity ---------------------------------------

    def claim(self, worker_id: str, lease_s: float = 30.0) -> Optional[Job]:
        """Claim inside an immediate transaction (multi-process safe).

        The guarded ``UPDATE ... WHERE state = 'queued'`` re-checks the
        state under the write lock; a row another process claimed since
        our SELECT updates zero rows, and we retry on the next candidate.
        """
        if lease_s <= 0:
            raise ServiceError(f"lease_s must be positive, got {lease_s}")
        with self._lock:
            while True:
                candidate = self._select_queued()
                if candidate is None:
                    return None
                now = self.clock()
                with self._conn:
                    self._conn.execute("BEGIN IMMEDIATE")
                    cursor = self._conn.execute(
                        "UPDATE jobs SET state = 'claimed', "
                        "attempts = attempts + 1, claimed_at = ?, "
                        "lease_until = ?, worker_id = ? "
                        "WHERE job_id = ? AND state = 'queued'",
                        (
                            now,
                            now + float(lease_s),
                            str(worker_id),
                            candidate.job_id,
                        ),
                    )
                    if cursor.rowcount != 1:
                        continue  # lost the race; try the next candidate
                claimed = self.get(candidate.job_id)
                self.obs.incr("jobs_claimed")
                self.obs.record(
                    "service_queue_wait",
                    max(0.0, now - claimed.submitted_at),
                )
                self._refresh_gauges()
                return claimed


__all__ = [
    "ACTIVE_STATES",
    "JOB_STATES",
    "TERMINAL_STATES",
    "Job",
    "JobQueue",
    "MemoryJobQueue",
    "SQLiteJobQueue",
]
