"""The service facade: submit / status / result / cancel.

:class:`QueryService` wires one world, one queue, admission control and
a worker pool into the four-call API the CLI verbs mirror:

* :meth:`~QueryService.submit` — admission-checked enqueue; accepts a
  :class:`~repro.service.spec.QuerySpec` or a raw Piet-QL string;
* :meth:`~QueryService.status` — the job's current record (state,
  attempts, error, fault trace, per-job metrics snapshot);
* :meth:`~QueryService.result` — the canonical result dict of a
  ``done`` job; pending jobs raise
  :class:`~repro.errors.JobStateError`, ``failed``/``dead`` jobs raise
  :class:`~repro.errors.JobFailedError` carrying the failure record
  and the injected-fault trace;
* :meth:`~QueryService.cancel` — withdraw a still-queued job.

Use it as a context manager (starts/stops the worker pool), or leave
the pool stopped and drive workers manually — the differential and
chaos suites do the latter for determinism.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Optional, Union

from repro.errors import (
    JobFailedError,
    JobStateError,
    ServiceError,
)
from repro.obs import PipelineStats
from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.queue import Job, JobQueue, MemoryJobQueue
from repro.service.spec import QuerySpec
from repro.service.worker import WorkerPool
from repro.service.worlds import ServiceWorld


class QueryService:
    """Admission-controlled durable query execution over one world.

    Parameters
    ----------
    world:
        The :class:`~repro.service.worlds.ServiceWorld` queries run
        against.
    queue:
        A :class:`~repro.service.queue.JobQueue`; defaults to an
        in-process :class:`~repro.service.queue.MemoryJobQueue` wired to
        this service's observer.  Pass a
        :class:`~repro.service.queue.SQLiteJobQueue` for durability.
    policy:
        The :class:`~repro.service.admission.AdmissionPolicy` caps.
    n_workers / lease_s / max_retries / backend / n_shards / fault_plan:
        Worker-pool and retry configuration (see
        :class:`~repro.service.worker.WorkerPool` and
        :class:`~repro.service.queue.JobQueue`).
    obs:
        The service observer; a fresh
        :class:`~repro.obs.PipelineStats` when omitted.
    """

    def __init__(
        self,
        world: ServiceWorld,
        queue: Optional[JobQueue] = None,
        policy: Optional[AdmissionPolicy] = None,
        n_workers: int = 2,
        lease_s: float = 30.0,
        max_retries: int = 2,
        backend: str = "serial",
        n_shards: Optional[int] = None,
        fault_plan: Optional[object] = None,
        obs: Optional[PipelineStats] = None,
        poll_s: float = 0.02,
        reap_interval_s: float = 0.05,
    ) -> None:
        if max_retries < 0:
            raise ServiceError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        self.world = world
        self.obs = obs if obs is not None else PipelineStats()
        self.queue = (
            queue if queue is not None else MemoryJobQueue(obs=self.obs)
        )
        if queue is not None and queue.obs is not self.obs:
            # One observer for queue + workers + service, so gauges and
            # counters tell one coherent story.
            self.queue.obs = self.obs
        self.admission = AdmissionController(policy, obs=self.obs)
        self.max_retries = int(max_retries)
        self.pool = WorkerPool(
            self.queue,
            world,
            n_workers=n_workers,
            lease_s=lease_s,
            backend=backend,
            n_shards=n_shards,
            fault_plan=fault_plan,
            obs=self.obs,
            poll_s=poll_s,
            reap_interval_s=reap_interval_s,
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "QueryService":
        """Start the worker pool (idempotent)."""
        self.pool.start()
        return self

    def stop(self) -> None:
        self.pool.stop()

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def drain(self, timeout: float = 60.0) -> None:
        """Block until every submitted job reached a terminal state."""
        self.pool.drain(timeout=timeout)

    # -- the API -------------------------------------------------------------

    def submit(
        self,
        query: Union[QuerySpec, str],
        client_id: str = "anonymous",
    ) -> str:
        """Admit and enqueue one query; returns the job id.

        A raw string is treated as Piet-QL.  Raises a typed
        :class:`~repro.errors.AdmissionError` subclass when a cap is
        hit — the submission is *not* enqueued.  Admission and enqueue
        run under the queue's lock-equivalent only for in-process
        queues; cross-process depth caps are best-effort (documented in
        :mod:`repro.service.admission`).
        """
        spec = (
            query
            if isinstance(query, QuerySpec)
            else QuerySpec.pietql(query)
        )
        with self.queue._lock:
            self.admission.admit(self.queue, client_id)
            job = self.queue.enqueue(
                spec, client_id=client_id, max_retries=self.max_retries
            )
        return job.job_id

    def status(self, job_id: str) -> Job:
        """The job's current record (:class:`JobNotFoundError` if absent)."""
        return self.queue.get(job_id)

    def result(self, job_id: str) -> Dict[str, object]:
        """The result dict of a ``done`` job.

        ``failed`` / ``dead`` jobs raise
        :class:`~repro.errors.JobFailedError` carrying the recorded
        error and the injected-fault trace; non-terminal jobs raise
        :class:`~repro.errors.JobStateError`.
        """
        job = self.queue.get(job_id)
        if job.state == "done":
            return json.loads(job.result_json)
        if job.state in ("failed", "dead"):
            faults = (
                tuple(part.strip() for part in job.fault_trace.split(";"))
                if job.fault_trace
                else ()
            )
            raise JobFailedError(
                f"job {job_id} is {job.state}: {job.error}",
                error=job.error,
                faults=faults,
            )
        raise JobStateError(
            f"job {job_id} has no result yet (state={job.state!r})"
        )

    def explain(self, job_id: str) -> Optional[str]:
        """The persisted EXPLAIN plan of a finished job (None if absent)."""
        return self.queue.get(job_id).explain

    def cancel(self, job_id: str) -> Job:
        """Cancel a still-queued job (typed errors otherwise)."""
        return self.queue.cancel(job_id)

    def wait(self, job_id: str, timeout: float = 60.0) -> Job:
        """Poll until the job reaches a terminal state; returns it.

        Raises :class:`ServiceError` on timeout.  The worker pool (or a
        manual driver) must be making progress, or this can only time
        out.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.queue.get(job_id)
            if job.is_terminal:
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout:g}s waiting for {job_id} "
                    f"(state={job.state!r})"
                )
            time.sleep(0.005)

    # -- metrics -------------------------------------------------------------

    def metrics(self) -> Dict[str, float]:
        """One flat report: obs counters/stages + state counts + utilization.

        Queue-state counts are reported as ``state_<state>`` — a prefix
        of their own, because the event counters already use ``jobs_``
        names (``jobs_claimed`` counts claim *events*; ``state_claimed``
        counts jobs *currently* claimed).  ``worker_utilization`` is
        busy wall time over busy+idle wall time (0.0 before any work
        happens).
        """
        report: Dict[str, float] = self.obs.as_dict()
        for state, count in self.queue.counts().items():
            report[f"state_{state}"] = count
        busy = self.obs.seconds("service_run")
        idle = self.obs.seconds("worker_idle")
        report["worker_utilization"] = (
            busy / (busy + idle) if (busy + idle) > 0 else 0.0
        )
        return report


__all__ = ["QueryService"]
