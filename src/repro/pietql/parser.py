"""Recursive-descent parser for Piet-QL.

Grammar (keywords case-insensitive, semicolons optional)::

    query       := [ EXPLAIN ] geo_part [ '|' mo_part ]
    geo_part    := SELECT layer_ref (',' layer_ref)* [';']
                   FROM IDENT [';']
                   [ WHERE condition (AND condition)* [';'] ]
    layer_ref   := LAYER '.' IDENT
    condition   := prefix_cond | infix_cond
    prefix_cond := IDENT '(' layer_ref ',' layer_ref [',' sublevel] ')'
    infix_cond  := '(' layer_ref ')' IDENT
                   '(' layer_ref ',' layer_ref [',' sublevel] ')'
    sublevel    := SUBLEVEL '.' IDENT
    mo_part     := COUNT (OBJECTS | SAMPLES) FROM IDENT
                   [ THROUGH RESULT ]
                   ( DURING IDENT '=' (STRING | IDENT | NUMBER) )*
    poi_part    := (VISITS | DISTINCT VISITORS | DWELL | TOP NUMBER)
                   FROM IDENT AT layer_ref BY IDENT [ MINDWELL NUMBER ]

The infix form mirrors the paper's
``(layer.usa_cities) CONTAINS (layer.usa_cities, layer.usa_stores, …)``
syntax; the redundant repetition of the subject inside the argument list is
accepted and ignored, exactly as in the paper's example.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import PietQLSyntaxError
from repro.pietql import ast
from repro.pietql.lexer import Token, TokenType, tokenize


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ---------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> PietQLSyntaxError:
        token = self._peek()
        return PietQLSyntaxError(
            f"{message} (got {token.value!r})", token.line, token.column
        )

    def _expect(self, token_type: TokenType) -> Token:
        if self._peek().type is not token_type:
            raise self._error(f"expected {token_type.value}")
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        if not self._peek().is_keyword(word):
            raise self._error(f"expected {word}")
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _skip_semicolons(self) -> None:
        while self._peek().type is TokenType.SEMICOLON:
            self._advance()

    def _ident(self) -> str:
        token = self._peek()
        # Keywords double as identifiers where unambiguous (e.g. a MOFT
        # named "result" would clash; plain idents are the common case).
        if token.type is TokenType.IDENT:
            return self._advance().value
        raise self._error("expected identifier")

    # -- grammar ------------------------------------------------------------------

    def parse_query(self) -> ast.PietQLQuery:
        explain = self._accept_keyword("EXPLAIN")
        geometric = self._geo_part()
        olap: Optional[ast.OlapQuery] = None
        moving: Optional[ast.MovingObjectQuery] = None
        poi: Optional[ast.PoiAggQuery] = None
        if self._peek().type is TokenType.PIPE:
            self._advance()
            if self._peek().is_keyword("AGGREGATE"):
                olap = self._olap_part()
                if self._peek().type is TokenType.PIPE:
                    self._advance()
                    if self._at_poi_part():
                        poi = self._poi_part()
                    else:
                        moving = self._mo_part()
            elif self._at_poi_part():
                poi = self._poi_part()
            else:
                moving = self._mo_part()
        self._skip_semicolons()
        if self._peek().type is not TokenType.EOF:
            raise self._error("unexpected trailing input")
        return ast.PietQLQuery(geometric, moving, olap, explain, poi)

    def _olap_part(self) -> ast.OlapQuery:
        self._expect_keyword("AGGREGATE")
        token = self._peek()
        if token.type is TokenType.IDENT:
            function = self._advance().value.lower()
        elif token.is_keyword("COUNT"):
            self._advance()
            function = "count"
        else:
            raise self._error("expected an aggregate function")
        self._expect(TokenType.LPAREN)
        value_name = self._ident()
        self._expect(TokenType.RPAREN)
        by_level: Optional[str] = None
        if self._accept_keyword("BY"):
            by_level = self._ident()
        self._skip_semicolons()
        return ast.OlapQuery(function, value_name, by_level)

    def _geo_part(self) -> ast.GeometricQuery:
        self._expect_keyword("SELECT")
        select = [self._layer_ref()]
        while self._peek().type is TokenType.COMMA:
            self._advance()
            select.append(self._layer_ref())
        self._skip_semicolons()
        self._expect_keyword("FROM")
        schema_name = self._ident()
        self._skip_semicolons()
        conditions: List[ast.GeoCondition] = []
        if self._accept_keyword("WHERE"):
            conditions.append(self._condition())
            while self._accept_keyword("AND"):
                conditions.append(self._condition())
            self._skip_semicolons()
        return ast.GeometricQuery(tuple(select), schema_name, tuple(conditions))

    def _layer_ref(self) -> ast.LayerRef:
        self._expect_keyword("LAYER")
        self._expect(TokenType.DOT)
        return ast.LayerRef(self._ident())

    def _sublevel(self) -> str:
        self._expect_keyword("SUBLEVEL")
        self._expect(TokenType.DOT)
        return self._ident().lower()

    def _condition(self) -> ast.GeoCondition:
        if self._peek().type is TokenType.LPAREN:
            # Infix form: ( layer.a ) PRED ( layer.x, layer.y [, sublevel] ).
            self._advance()
            subject = self._layer_ref()
            self._expect(TokenType.RPAREN)
            predicate = self._ident().lower()
            left, right, sublevel = self._argument_list()
            # The paper repeats the subject as the first argument; accept
            # either order, normalizing the subject to the left operand.
            if left != subject and right == subject:
                left, right = subject, left
            elif left == subject:
                pass
            else:
                left, right = subject, left if left != subject else right
            return ast.GeoCondition(predicate, left, right, sublevel)
        predicate = self._ident().lower()
        left, right, sublevel = self._argument_list()
        return ast.GeoCondition(predicate, left, right, sublevel)

    def _argument_list(
        self,
    ) -> Tuple[ast.LayerRef, ast.LayerRef, Optional[str]]:
        self._expect(TokenType.LPAREN)
        refs: List[ast.LayerRef] = [self._layer_ref()]
        sublevel: Optional[str] = None
        while self._peek().type is TokenType.COMMA:
            self._advance()
            if self._peek().is_keyword("SUBLEVEL"):
                sublevel = self._sublevel()
                break
            refs.append(self._layer_ref())
        self._expect(TokenType.RPAREN)
        if len(refs) == 2:
            return refs[0], refs[1], sublevel
        if len(refs) == 3:
            # Paper style: the subject is repeated as the first argument
            # ("CONTAINS(layer.usa_cities, layer.usa_cities, ...)"); keep
            # the last two operands.
            return refs[1], refs[2], sublevel
        raise self._error("geometric condition needs two layer arguments")

    def _at_poi_part(self) -> bool:
        token = self._peek()
        return any(
            token.is_keyword(word)
            for word in ("VISITS", "DISTINCT", "DWELL", "TOP")
        )

    def _poi_part(self) -> ast.PoiAggQuery:
        k: Optional[int] = None
        if self._accept_keyword("VISITS"):
            measure = "visits"
        elif self._accept_keyword("DISTINCT"):
            self._expect_keyword("VISITORS")
            measure = "visitors"
        elif self._accept_keyword("DWELL"):
            measure = "dwell"
        else:
            self._expect_keyword("TOP")
            token = self._expect(TokenType.NUMBER)
            try:
                k = int(token.value)
            except ValueError:
                raise PietQLSyntaxError(
                    f"TOP expects an integer, got {token.value!r}",
                    token.line,
                    token.column,
                ) from None
            measure = "topk"
        self._expect_keyword("FROM")
        moft_name = self._ident()
        self._expect_keyword("AT")
        at = self._layer_ref()
        self._expect_keyword("BY")
        by_level = self._ident()
        min_dwell = 0.0
        if self._accept_keyword("MINDWELL"):
            token = self._expect(TokenType.NUMBER)
            min_dwell = float(token.value)
        self._skip_semicolons()
        return ast.PoiAggQuery(measure, moft_name, at, by_level, k, min_dwell)

    def _mo_part(self) -> ast.MovingObjectQuery:
        self._expect_keyword("COUNT")
        if self._accept_keyword("OBJECTS"):
            count_what = "OBJECTS"
        elif self._accept_keyword("SAMPLES"):
            count_what = "SAMPLES"
        else:
            raise self._error("expected OBJECTS or SAMPLES after COUNT")
        self._expect_keyword("FROM")
        moft_name = self._ident()
        through = False
        during: List[ast.DuringClause] = []
        while True:
            if self._accept_keyword("THROUGH"):
                self._expect_keyword("RESULT")
                through = True
                continue
            if self._accept_keyword("DURING"):
                level = self._ident()
                self._expect(TokenType.EQUALS)
                token = self._peek()
                if token.type in (TokenType.STRING, TokenType.IDENT):
                    member = self._advance().value
                elif token.type is TokenType.NUMBER:
                    member = self._advance().value
                else:
                    raise self._error("expected a member value after '='")
                during.append(ast.DuringClause(level, member))
                continue
            break
        return ast.MovingObjectQuery(
            count_what, moft_name, through, tuple(during)
        )


def parse(text: str) -> ast.PietQLQuery:
    """Parse Piet-QL text into a query AST."""
    return _Parser(tokenize(text)).parse_query()
