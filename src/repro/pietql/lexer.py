"""Tokenizer for Piet-QL.

Piet-QL (Section 5) is the query language of the Piet implementation: a
geometric part (SQL-like, with layer references and geometric predicates),
then — separated by a pipe — an aggregation part over moving objects.
The token set is small: keywords, identifiers, dotted references,
punctuation, numbers and quoted strings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import PietQLSyntaxError

#: Keywords, uppercased.  ``layer`` and ``sublevel`` are reference prefixes.
KEYWORDS = {
    "EXPLAIN",
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "COUNT",
    "OBJECTS",
    "SAMPLES",
    "DISTINCT",
    "THROUGH",
    "RESULT",
    "DURING",
    "LAYER",
    "SUBLEVEL",
    "AGGREGATE",
    "BY",
    # POI aggregation part (follow-up paper's places-of-interest workload).
    "VISITS",
    "VISITORS",
    "DWELL",
    "TOP",
    "AT",
    "MINDWELL",
}


class TokenType(enum.Enum):
    """Lexical token categories."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    DOT = "."
    COMMA = ","
    SEMICOLON = ";"
    PIPE = "|"
    LPAREN = "("
    RPAREN = ")"
    EQUALS = "="
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        """True when this token is the given keyword."""
        return self.type is TokenType.KEYWORD and self.value == word.upper()


_PUNCT = {
    ".": TokenType.DOT,
    ",": TokenType.COMMA,
    ";": TokenType.SEMICOLON,
    "|": TokenType.PIPE,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "=": TokenType.EQUALS,
}


def tokenize(text: str) -> List[Token]:
    """Tokenize Piet-QL text; raises :class:`PietQLSyntaxError` on junk."""
    tokens: List[Token] = []
    line = 1
    column = 0
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 0
            i += 1
            continue
        if ch.isspace():
            column += 1
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, line, column))
            column += 1
            i += 1
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\n":
                    raise PietQLSyntaxError(
                        "unterminated string literal", line, column
                    )
                j += 1
            if j >= n:
                raise PietQLSyntaxError(
                    "unterminated string literal", line, column
                )
            tokens.append(
                Token(TokenType.STRING, text[i + 1 : j], line, column)
            )
            column += j - i + 1
            i = j + 1
            continue
        if ch.isdigit() or (
            ch == "-" and i + 1 < n and text[i + 1].isdigit()
        ):
            j = i + 1
            seen_dot = False
            while j < n and (
                text[j].isdigit() or (text[j] == "." and not seen_dot)
            ):
                if text[j] == ".":
                    # A dot not followed by a digit belongs to a reference.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token(TokenType.NUMBER, text[i:j], line, column))
            column += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, line, column))
            else:
                tokens.append(Token(TokenType.IDENT, word, line, column))
            column += j - i
            i = j
            continue
        raise PietQLSyntaxError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens
