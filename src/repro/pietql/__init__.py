"""Piet-QL: the query language of the Piet implementation (Section 5)."""

from repro.pietql import ast
from repro.pietql.lexer import Token, TokenType, tokenize
from repro.pietql.parser import parse
from repro.pietql.executor import (
    LayerBinding,
    PietQLExecutor,
    PietQLResult,
    run,
)
from repro.pietql.format import format_query

__all__ = [
    "ast",
    "Token",
    "TokenType",
    "tokenize",
    "parse",
    "LayerBinding",
    "PietQLExecutor",
    "PietQLResult",
    "run",
    "format_query",
]
