"""Abstract syntax of Piet-QL queries.

A query has a **geometric part** and an optional **moving-objects part**
after a pipe, following the structure of Section 5::

    SELECT layer.cities, layer.rivers, layer.stores
    FROM CitySchema
    WHERE intersection(layer.rivers, layer.cities, sublevel.polyline)
      AND contains(layer.cities, layer.stores, sublevel.node)
    | COUNT OBJECTS FROM FM THROUGH RESULT DURING timeOfDay = 'Morning'

The first ``layer.<name>`` in the SELECT list is the *target*: the
geometric part evaluates to the ids of its elements that satisfy all WHERE
conditions.  The moving-objects part aggregates a MOFT, optionally
restricted to objects whose trajectories pass ``THROUGH RESULT`` (the
target ids) and to instants matching ``DURING`` rollup constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import PietQLError

#: Geometric predicates accepted in WHERE conditions (paper: intersection,
#: CONTAINS; ``within`` is the natural converse).
GEO_PREDICATES = ("intersection", "contains", "within")


@dataclass(frozen=True)
class LayerRef:
    """A ``layer.<name>`` reference; the name is resolved by the executor."""

    name: str

    def __str__(self) -> str:
        return f"layer.{self.name}"


@dataclass(frozen=True)
class GeoCondition:
    """One WHERE condition: ``predicate(left, right [, sublevel.kind])``.

    The optional sublevel names the geometry kind at which the relation is
    evaluated (the paper's ``subplevel.Linestring`` / ``subplevel.Point``);
    it applies to the non-target operand and overrides binding inference.
    """

    predicate: str
    left: LayerRef
    right: LayerRef
    sublevel: Optional[str] = None

    def __post_init__(self) -> None:
        if self.predicate not in GEO_PREDICATES:
            raise PietQLError(
                f"unknown geometric predicate {self.predicate!r}; expected "
                f"one of {GEO_PREDICATES}"
            )

    def involves(self, ref: LayerRef) -> bool:
        """True when either operand is the given layer reference."""
        return self.left == ref or self.right == ref


@dataclass(frozen=True)
class GeometricQuery:
    """The geometric part: target + auxiliary layers + conditions."""

    select: Tuple[LayerRef, ...]
    schema_name: str
    conditions: Tuple[GeoCondition, ...] = ()

    def __post_init__(self) -> None:
        if not self.select:
            raise PietQLError("SELECT needs at least one layer reference")
        self.target  # validates

    @property
    def target(self) -> LayerRef:
        """The layer whose element ids the geometric part returns.

        The paper's example selects rivers, cities and stores but "returns
        the identifiers of the geometric objects (in this case, the
        cities)": the target is the selected layer that every WHERE
        condition involves.  Without conditions it is the first selected
        layer; with conditions that share no selected layer the query is
        rejected.
        """
        if not self.conditions:
            return self.select[0]
        for ref in self.select:
            if all(condition.involves(ref) for condition in self.conditions):
                return ref
        raise PietQLError(
            "no selected layer is involved in every WHERE condition; "
            "cannot determine the query target"
        )


@dataclass(frozen=True)
class DuringClause:
    """A temporal restriction: ``DURING <level> = <member>``."""

    level: str
    member: str


@dataclass(frozen=True)
class MovingObjectQuery:
    """The moving-objects part after the pipe.

    ``COUNT OBJECTS`` counts distinct object ids; ``COUNT SAMPLES`` counts
    MOFT rows.  ``THROUGH RESULT`` keeps only objects whose interpolated
    trajectories intersect the geometric result; ``DURING`` clauses
    restrict the instants considered.
    """

    count_what: str  # "OBJECTS" | "SAMPLES"
    moft_name: str
    through_result: bool = False
    during: Tuple[DuringClause, ...] = ()

    def __post_init__(self) -> None:
        if self.count_what not in ("OBJECTS", "SAMPLES"):
            raise PietQLError(
                f"COUNT expects OBJECTS or SAMPLES, got {self.count_what!r}"
            )


#: Aggregate function names accepted in the OLAP part.
OLAP_FUNCTIONS = ("sum", "min", "max", "avg", "count")


@dataclass(frozen=True)
class OlapQuery:
    """The OLAP part: aggregate application-part values of the result.

    ``AGGREGATE SUM(population) BY city`` folds the named member value of
    every application member whose geometry is in the geometric result,
    grouped by their rollup at ``by_level`` in the member's application
    dimension.  This stands in for the MDX dialect of the original Piet
    (substitution documented in DESIGN.md).
    """

    function: str
    value_name: str
    by_level: Optional[str] = None

    def __post_init__(self) -> None:
        if self.function not in OLAP_FUNCTIONS:
            raise PietQLError(
                f"unknown aggregate {self.function!r}; expected one of "
                f"{OLAP_FUNCTIONS}"
            )


#: Measures accepted in the POI aggregation part.
POI_MEASURES = ("visits", "visitors", "dwell", "topk")


@dataclass(frozen=True)
class PoiAggQuery:
    """The POI aggregation part: stop/move aggregates at a POI layer.

    Grammar (an alternative pipe-part)::

        (VISITS | DISTINCT VISITORS | DWELL | TOP <k>)
        FROM <moft> AT layer.<places> BY <granule> [MINDWELL <seconds>]

    ``VISITS`` counts stop episodes per (POI, granule); ``DISTINCT
    VISITORS`` lists the objects that stopped or dwelled there; ``DWELL``
    sums clipped dwell seconds; ``TOP k`` ranks POIs by distinct
    visitors per granule.  ``AT`` names the place-of-interest layer (the
    executor rejects bindings whose kind is not ``poi`` with a typed
    error), ``BY`` the Time granule level, and ``MINDWELL`` the minimum
    stop duration in seconds.
    """

    measure: str  # one of POI_MEASURES
    moft_name: str
    at: LayerRef
    by_level: str
    k: Optional[int] = None
    min_dwell: float = 0.0

    def __post_init__(self) -> None:
        if self.measure not in POI_MEASURES:
            raise PietQLError(
                f"unknown POI measure {self.measure!r}; expected one of "
                f"{POI_MEASURES}"
            )
        if self.measure == "topk":
            if self.k is None or self.k < 1:
                raise PietQLError(
                    f"TOP needs a positive k, got {self.k!r}"
                )
        elif self.k is not None:
            raise PietQLError(
                f"measure {self.measure!r} does not take a k"
            )
        if not self.min_dwell >= 0.0:  # also rejects NaN
            raise PietQLError(
                f"MINDWELL must be >= 0, got {self.min_dwell!r}"
            )


@dataclass(frozen=True)
class PietQLQuery:
    """A complete parsed query: geometric [| olap] [| moving objects | poi].

    ``explain`` marks an ``EXPLAIN``-prefixed query: it executes
    normally, and the executor additionally attaches a costed plan tree
    (estimates from the :mod:`repro.query.planner` cost model, actuals
    from the :mod:`repro.obs` counters) to the result.
    """

    geometric: GeometricQuery
    moving_objects: Optional[MovingObjectQuery] = None
    olap: Optional[OlapQuery] = None
    explain: bool = False
    poi: Optional[PoiAggQuery] = None
