"""Formatting parsed Piet-QL back to canonical text.

``format_query(parse(text))`` normalizes whitespace and keyword case; the
formatter and parser are mutually inverse (``parse(format_query(q)) == q``
for canonical queries), which the round-trip property tests exercise.
"""

from __future__ import annotations

from repro.pietql import ast


def format_layer_ref(ref: ast.LayerRef) -> str:
    """Render a layer reference."""
    return f"layer.{ref.name}"


def format_condition(condition: ast.GeoCondition) -> str:
    """Render one WHERE condition (prefix form)."""
    parts = [
        format_layer_ref(condition.left),
        format_layer_ref(condition.right),
    ]
    if condition.sublevel is not None:
        parts.append(f"sublevel.{condition.sublevel}")
    return f"{condition.predicate}({', '.join(parts)})"


def format_geometric(geo: ast.GeometricQuery) -> str:
    """Render the geometric part."""
    text = (
        "SELECT "
        + ", ".join(format_layer_ref(ref) for ref in geo.select)
        + f" FROM {geo.schema_name}"
    )
    if geo.conditions:
        text += " WHERE " + " AND ".join(
            format_condition(c) for c in geo.conditions
        )
    return text


def format_olap(olap: ast.OlapQuery) -> str:
    """Render the OLAP part."""
    text = f"AGGREGATE {olap.function}({olap.value_name})"
    if olap.by_level is not None:
        text += f" BY {olap.by_level}"
    return text


def format_moving(mo: ast.MovingObjectQuery) -> str:
    """Render the moving-objects part."""
    text = f"COUNT {mo.count_what} FROM {mo.moft_name}"
    if mo.through_result:
        text += " THROUGH RESULT"
    for clause in mo.during:
        text += f" DURING {clause.level} = '{clause.member}'"
    return text


def format_poi(poi: ast.PoiAggQuery) -> str:
    """Render the POI aggregation part."""
    if poi.measure == "visits":
        head = "VISITS"
    elif poi.measure == "visitors":
        head = "DISTINCT VISITORS"
    elif poi.measure == "dwell":
        head = "DWELL"
    else:
        head = f"TOP {poi.k}"
    text = (
        f"{head} FROM {poi.moft_name} "
        f"AT {format_layer_ref(poi.at)} BY {poi.by_level}"
    )
    if poi.min_dwell > 0.0:
        text += f" MINDWELL {poi.min_dwell!r}"
    return text


def format_query(query: ast.PietQLQuery) -> str:
    """Render a full query in canonical one-line form."""
    parts = [format_geometric(query.geometric)]
    if query.olap is not None:
        parts.append(format_olap(query.olap))
    if query.moving_objects is not None:
        parts.append(format_moving(query.moving_objects))
    if query.poi is not None:
        parts.append(format_poi(query.poi))
    text = " | ".join(parts)
    if query.explain:
        text = "EXPLAIN " + text
    return text
