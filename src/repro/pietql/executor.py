"""Execution of parsed Piet-QL queries.

The geometric part evaluates to the ids of the target layer's elements
satisfying every WHERE condition — answered against the precomputed
overlay (or naive scans, per the context's strategy).  The moving-objects
part then restricts a MOFT by ``DURING`` rollups and, with ``THROUGH
RESULT``, by trajectory intersection against the answer geometries —
exactly the two-stage pipeline of Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional, Set, Tuple

import numpy as np

from repro.errors import PietQLExecutionError
from repro.mo.moft import MOFT
from repro.pietql import ast
from repro.pietql.parser import parse
from repro.query.evaluator import (
    EvaluationStats,
    TrajectoryIntersectionCounter,
)
from repro.query.region import EvaluationContext


@dataclass(frozen=True)
class LayerBinding:
    """Resolution of a Piet-QL layer name to a GIS (layer, kind)."""

    layer: str
    kind: str


@dataclass(frozen=True)
class PietQLResult:
    """The outcome of executing a query."""

    geometry_ids: frozenset
    count: Optional[float] = None
    matched_objects: Optional[frozenset] = None
    olap_result: Optional[Mapping[Hashable, float]] = None


class PietQLExecutor:
    """Executes Piet-QL queries against an evaluation context.

    Parameters
    ----------
    context:
        GIS + Time + MOFTs, with the overlay strategy flag.
    bindings:
        Mapping from the language's layer names (``layer.cities``) to GIS
        ``(layer, kind)`` pairs.  Names not bound explicitly are resolved
        against the GIS directly when a layer of that name has exactly one
        populated kind.
    """

    def __init__(
        self,
        context: EvaluationContext,
        bindings: Mapping[str, LayerBinding] | None = None,
    ) -> None:
        self.context = context
        self.bindings: Dict[str, LayerBinding] = dict(bindings or {})

    # -- binding resolution ------------------------------------------------------

    def resolve(
        self, ref: ast.LayerRef, sublevel: Optional[str] = None
    ) -> LayerBinding:
        """Resolve a layer reference, honoring an explicit sublevel kind."""
        if ref.name in self.bindings:
            binding = self.bindings[ref.name]
            if sublevel is not None and sublevel != binding.kind:
                try:
                    kinds = self.context.gis.layer(binding.layer).kinds()
                except Exception:
                    raise PietQLExecutionError(
                        f"binding {ref.name!r} points at unknown layer "
                        f"{binding.layer!r}"
                    ) from None
                if sublevel not in kinds:
                    raise PietQLExecutionError(
                        f"layer {binding.layer!r} (bound as {ref.name!r}) "
                        f"has no elements of kind {sublevel!r}; "
                        f"available: {sorted(kinds)}"
                    )
                return LayerBinding(binding.layer, sublevel)
            return binding
        try:
            layer = self.context.gis.layer(ref.name)
        except Exception:
            raise PietQLExecutionError(
                f"unknown layer {ref.name!r}: bind it or use a GIS layer name"
            ) from None
        kinds = sorted(layer.kinds())
        if sublevel is not None:
            if sublevel not in kinds:
                raise PietQLExecutionError(
                    f"layer {ref.name!r} has no elements of kind {sublevel!r}"
                )
            return LayerBinding(ref.name, sublevel)
        if len(kinds) != 1:
            raise PietQLExecutionError(
                f"layer {ref.name!r} stores kinds {kinds}; "
                f"disambiguate with sublevel.<kind> or a binding"
            )
        return LayerBinding(ref.name, kinds[0])

    # -- execution -----------------------------------------------------------------

    def execute(self, query: "ast.PietQLQuery | str") -> PietQLResult:
        """Execute a parsed query (or Piet-QL text)."""
        if isinstance(query, str):
            query = parse(query)
        geometry_ids = self.execute_geometric(query.geometric)
        olap_result = None
        if query.olap is not None:
            olap_result = self._execute_olap(
                query.olap, query.geometric, geometry_ids
            )
        if query.moving_objects is None:
            return PietQLResult(
                frozenset(geometry_ids), olap_result=olap_result
            )
        count, matched = self._execute_moving(
            query.moving_objects, query.geometric, geometry_ids
        )
        return PietQLResult(
            frozenset(geometry_ids), count, frozenset(matched), olap_result
        )

    def _execute_olap(
        self,
        olap: "ast.OlapQuery",
        geo: "ast.GeometricQuery",
        geometry_ids: Set[Hashable],
    ) -> Dict[Hashable, float]:
        """Aggregate application-part values of the result members.

        The target's (layer, kind) determines the application attribute
        through the schema placements; result ids map to members via
        α-inverse, member values named ``olap.value_name`` are folded with
        the aggregate function, grouped by the ``BY`` level's rollup when
        present (the group key is the rolled-up member; ungrouped results
        use the single key ``"all"``).
        """
        from repro.olap.aggregation import AggregateFunction

        binding = self.resolve(geo.target)
        schema = self.context.gis.schema
        attribute = None
        for candidate in schema.attributes:
            placement = schema.placement(candidate)
            if (placement.layer, placement.kind) == (
                binding.layer,
                binding.kind,
            ):
                attribute = candidate
                break
        if attribute is None:
            raise PietQLExecutionError(
                f"no application attribute is placed on "
                f"{binding.layer}:{binding.kind}; cannot aggregate"
            )
        members = []
        for gid in geometry_ids:
            members.extend(self.context.gis.alpha_inverse(attribute, gid))
        if not members:
            return {}
        groups: Dict[Hashable, list] = {}
        dimension = schema.dimension_for_attribute(attribute)
        for member in members:
            value = self.context.gis.member_value(
                attribute, member, olap.value_name
            )
            if olap.by_level is None:
                key: Hashable = "all"
            else:
                if dimension is None:
                    raise PietQLExecutionError(
                        f"attribute {attribute!r} has no application "
                        f"dimension; cannot roll up to {olap.by_level!r}"
                    )
                instance = self.context.gis.application_instance(
                    dimension.name
                )
                key = instance.rollup(member, attribute, olap.by_level)
            groups.setdefault(key, []).append(value)
        function = AggregateFunction.parse(olap.function)
        return {key: function.apply(values) for key, values in groups.items()}

    def execute_geometric(self, geo: ast.GeometricQuery) -> Set[Hashable]:
        """Evaluate the geometric part to target-element ids."""
        with self.context.obs.stage("geometric_subquery"):
            return self._execute_geometric(geo)

    def _execute_geometric(self, geo: ast.GeometricQuery) -> Set[Hashable]:
        target_ref = geo.target
        result: Optional[Set[Hashable]] = None
        for condition in geo.conditions:
            ids = self._condition_ids(condition, target_ref)
            result = ids if result is None else result & ids
            if not result:
                return set()
        if result is None:
            binding = self.resolve(target_ref)
            return set(
                self.context.gis.layer(binding.layer).elements(binding.kind)
            )
        return result

    def _condition_ids(
        self, condition: ast.GeoCondition, target_ref: ast.LayerRef
    ) -> Set[Hashable]:
        """Target ids satisfying one condition (other operand existential)."""
        if condition.left == target_ref:
            other_ref, target_is_left = condition.right, True
        else:
            other_ref, target_is_left = condition.left, False
        target = self.resolve(target_ref)
        other = self.resolve(other_ref, condition.sublevel)
        predicate = condition.predicate
        if predicate == "intersection":
            predicate = "intersects"
        if target_is_left:
            pairs = self.context.geometry_pairs(
                target.layer, target.kind, predicate, other.layer, other.kind
            )
            return {a for a, _ in pairs}
        pairs = self.context.geometry_pairs(
            other.layer, other.kind, predicate, target.layer, target.kind
        )
        return {b for _, b in pairs}

    def _through_result_counter(
        self, binding: LayerBinding, geometry_ids: Set[Hashable]
    ) -> TrajectoryIntersectionCounter:
        """Build the trajectory counter over the geometric answer.

        Shared by the serial scan below and the sharded executor in
        :mod:`repro.parallel`, so both paths test against identical
        geometries and the same cached grid index.
        """
        elements = self.context.gis.layer(binding.layer).elements(
            binding.kind
        )
        return TrajectoryIntersectionCounter(
            {gid: elements[gid] for gid in geometry_ids},
            index=self.context.geometry_index(
                binding.layer, binding.kind, geometry_ids
            ),
            vectorized_prefilter=True,
        )

    def _scan_through_result(
        self,
        moft: MOFT,
        binding: LayerBinding,
        geometry_ids: Set[Hashable],
    ) -> Set[Hashable]:
        """THROUGH RESULT: objects whose trajectories hit the answer.

        The single-core seed path; :class:`repro.parallel
        .ShardedPietQLExecutor` overrides this with a sharded scan.
        """
        counter = self._through_result_counter(binding, geometry_ids)
        stats = EvaluationStats()
        matched = counter.matching_objects(moft, stats)
        self.context.obs.merge(stats)
        return matched

    def _preagg_through_result(
        self,
        base_moft: MOFT,
        allowed: Optional[Set[float]],
        binding: LayerBinding,
        geometry_ids: Set[Hashable],
    ) -> Optional[Set[Hashable]]:
        """Route THROUGH RESULT through a registered pre-aggregation store.

        Fires when a fresh :class:`~repro.preagg.PreAggStore` over
        exactly this MOFT materializes every answer geometry and the
        DURING-restricted instant set equals the instants of one granule
        run (``allowed=None`` — no DURING — is the full run).  Then the
        scan is replaced by the store's cells + spanning records, which
        the differential suite proves identical.  Returns None on any
        mismatch, counting a ``preagg_miss`` when stores are registered.
        """
        context = self.context
        store = context.preagg_for(
            base_moft, binding.layer, binding.kind, geometry_ids
        )

        def miss() -> None:
            if context.has_preagg:
                context.obs.incr("preagg_misses")
            return None

        if store is None or store.is_stale():
            return miss()
        with context.obs.stage("preagg_lookup"):
            partition = store.partition
            if len(partition) == 0:
                return miss()
            if allowed is None:
                run = (0, len(partition) - 1)
            else:
                wanted = np.sort(np.array(sorted(allowed), dtype=float))
                codes = partition.codes_for(wanted)
                if codes.size == 0 or (codes < 0).any():
                    return miss()
                first, last = int(codes.min()), int(codes.max())
                covered = partition.instants[
                    (partition.codes >= first) & (partition.codes <= last)
                ]
                if not np.array_equal(wanted, covered):
                    # The instant set cuts through a granule; serving it
                    # from whole-granule cells would over-count.
                    return miss()
                run = (first, last)
            matched = store.objects_through(geometry_ids, *run)
        context.obs.incr("preagg_hits")
        return matched

    def _execute_moving(
        self,
        mo: ast.MovingObjectQuery,
        geo: ast.GeometricQuery,
        geometry_ids: Set[Hashable],
    ) -> Tuple[float, Set[Hashable]]:
        obs = self.context.obs
        base_moft = self.context.moft(mo.moft_name)
        moft = base_moft
        allowed: Optional[Set[float]] = None
        with obs.stage("during_restriction"):
            for clause in mo.during:
                member: Hashable = clause.member
                instants = self.context.time.instants_where(
                    clause.level, member
                )
                if not instants and clause.member.replace(".", "", 1).isdigit():
                    # Numeric members may be stored as numbers.
                    instants = self.context.time.instants_where(
                        clause.level, float(clause.member)
                    ) | self.context.time.instants_where(
                        clause.level, int(float(clause.member))
                    )
                clause_instants = {float(t) for t in instants}
                allowed = (
                    clause_instants
                    if allowed is None
                    else allowed & clause_instants
                )
            if allowed is not None:
                moft = moft.restrict_instants(allowed)
        if mo.through_result:
            if not geometry_ids or len(moft) == 0:
                return 0.0, set()
            binding = self.resolve(geo.target)
            matched = self._preagg_through_result(
                base_moft, allowed, binding, geometry_ids
            )
            if matched is None:
                matched = self._scan_through_result(
                    moft, binding, geometry_ids
                )
        else:
            matched = moft.objects()
        if mo.count_what == "OBJECTS":
            return float(len(matched)), matched
        if mo.through_result:
            samples = sum(moft.sample_count(oid) for oid in matched)
        else:
            samples = len(moft)
        return float(samples), matched


def run(
    text: str,
    context: EvaluationContext,
    bindings: Mapping[str, LayerBinding] | None = None,
) -> PietQLResult:
    """Parse and execute Piet-QL text in one call."""
    return PietQLExecutor(context, bindings).execute(text)
