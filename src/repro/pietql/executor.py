"""Execution of parsed Piet-QL queries.

The geometric part evaluates to the ids of the target layer's elements
satisfying every WHERE condition — answered against the precomputed
overlay (or naive scans, per the context's strategy).  The moving-objects
part then restricts a MOFT by ``DURING`` rollups and, with ``THROUGH
RESULT``, by trajectory intersection against the answer geometries —
exactly the two-stage pipeline of Section 5.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, Hashable, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.errors import PietQLExecutionError
from repro.mo.moft import MOFT
from repro.pietql import ast
from repro.pietql.parser import parse
from repro.query.evaluator import (
    EvaluationStats,
    TrajectoryIntersectionCounter,
)
from repro.query.planner import (
    CostModel,
    GeometryStatistics,
    PlanNode,
    QueryPlan,
    TableStatistics,
    geometry_statistics,
    table_statistics,
)
from repro.query.region import EvaluationContext


@dataclass(frozen=True)
class LayerBinding:
    """Resolution of a Piet-QL layer name to a GIS (layer, kind)."""

    layer: str
    kind: str


@dataclass(frozen=True)
class PietQLResult:
    """The outcome of executing a query.

    ``plan`` is populated only for ``EXPLAIN``-prefixed queries: a
    :class:`~repro.query.planner.QueryPlan` whose tree carries cost-model
    estimates next to the actual rows and stage seconds observed while
    the query ran (``result.plan.render()`` is the EXPLAIN text).
    """

    geometry_ids: frozenset
    count: Optional[float] = None
    matched_objects: Optional[frozenset] = None
    olap_result: Optional[Mapping[Hashable, float]] = None
    plan: Optional[QueryPlan] = None
    poi_result: Optional[Mapping] = None


class PietQLExecutor:
    """Executes Piet-QL queries against an evaluation context.

    Parameters
    ----------
    context:
        GIS + Time + MOFTs, with the overlay strategy flag.
    bindings:
        Mapping from the language's layer names (``layer.cities``) to GIS
        ``(layer, kind)`` pairs.  Names not bound explicitly are resolved
        against the GIS directly when a layer of that name has exactly one
        populated kind.
    """

    def __init__(
        self,
        context: EvaluationContext,
        bindings: Mapping[str, LayerBinding] | None = None,
    ) -> None:
        self.context = context
        self.bindings: Dict[str, LayerBinding] = dict(bindings or {})

    # -- binding resolution ------------------------------------------------------

    def resolve(
        self, ref: ast.LayerRef, sublevel: Optional[str] = None
    ) -> LayerBinding:
        """Resolve a layer reference, honoring an explicit sublevel kind."""
        if ref.name in self.bindings:
            binding = self.bindings[ref.name]
            if sublevel is not None and sublevel != binding.kind:
                try:
                    kinds = self.context.gis.layer(binding.layer).kinds()
                except Exception:
                    raise PietQLExecutionError(
                        f"binding {ref.name!r} points at unknown layer "
                        f"{binding.layer!r}"
                    ) from None
                if sublevel not in kinds:
                    raise PietQLExecutionError(
                        f"layer {binding.layer!r} (bound as {ref.name!r}) "
                        f"has no elements of kind {sublevel!r}; "
                        f"available: {sorted(kinds)}"
                    )
                return LayerBinding(binding.layer, sublevel)
            return binding
        try:
            layer = self.context.gis.layer(ref.name)
        except Exception:
            raise PietQLExecutionError(
                f"unknown layer {ref.name!r}: bind it or use a GIS layer name"
            ) from None
        kinds = sorted(layer.kinds())
        if sublevel is not None:
            if sublevel not in kinds:
                raise PietQLExecutionError(
                    f"layer {ref.name!r} has no elements of kind {sublevel!r}"
                )
            return LayerBinding(ref.name, sublevel)
        if len(kinds) != 1:
            raise PietQLExecutionError(
                f"layer {ref.name!r} stores kinds {kinds}; "
                f"disambiguate with sublevel.<kind> or a binding"
            )
        return LayerBinding(ref.name, kinds[0])

    # -- execution -----------------------------------------------------------------

    def execute(self, query: "ast.PietQLQuery | str") -> PietQLResult:
        """Execute a parsed query (or Piet-QL text).

        ``EXPLAIN``-prefixed queries execute normally; the result
        additionally carries a plan tree with cost-model estimates and
        the actuals observed during this very execution (rows from the
        ``scan_rows`` / ``sliver_scan_rows`` counters, seconds from the
        stage timers), bracketed via the context observer's
        :meth:`~repro.obs.PipelineStats.snapshot` /
        :meth:`~repro.obs.PipelineStats.since`.
        """
        if isinstance(query, str):
            query = parse(query)
        if not query.explain:
            return self._execute(query)
        before = self.context.obs.snapshot()
        started = time.perf_counter()
        result = self._execute(query)
        elapsed = time.perf_counter() - started
        delta = self.context.obs.since(before)
        if query.poi is not None:
            # The POI part planned itself through plan_poi_aggregate; its
            # costed tree is already attached.
            return result
        return replace(
            result, plan=self._build_plan(query, result, delta, elapsed)
        )

    def _execute(self, query: ast.PietQLQuery) -> PietQLResult:
        geometry_ids = self.execute_geometric(query.geometric)
        olap_result = None
        if query.olap is not None:
            olap_result = self._execute_olap(
                query.olap, query.geometric, geometry_ids
            )
        poi_result = None
        poi_plan: Optional[QueryPlan] = None
        if query.poi is not None:
            poi_result, poi_plan = self._execute_poi(
                query.poi, explain=query.explain
            )
        if query.moving_objects is None:
            return PietQLResult(
                frozenset(geometry_ids),
                olap_result=olap_result,
                plan=poi_plan,
                poi_result=poi_result,
            )
        count, matched = self._execute_moving(
            query.moving_objects, query.geometric, geometry_ids
        )
        return PietQLResult(
            frozenset(geometry_ids),
            count,
            frozenset(matched),
            olap_result,
            poi_plan,
            poi_result,
        )

    def _execute_poi(
        self, poi: "ast.PoiAggQuery", explain: bool = False
    ) -> Tuple[Mapping, Optional[QueryPlan]]:
        """Run the POI aggregation part through the cost-based planner.

        The ``AT`` reference must resolve to a place-of-interest layer:
        a binding of any other geometry kind is a typed execution error
        (the language keeps discs and, say, polygon layers apart).  The
        measure is dispatched through :func:`repro.query.planner
        .plan_poi_aggregate` so EXPLAIN shows the routed strategy.
        """
        from repro.gis import geometries as gk
        from repro.query.planner import execute_poi_plan, plan_poi_aggregate

        binding = self.resolve(poi.at)
        if binding.kind != gk.POI:
            raise PietQLExecutionError(
                f"AT expects a place-of-interest layer; layer.{poi.at.name} "
                f"is bound to {binding.layer!r} kind {binding.kind!r}, "
                f"not {gk.POI!r}"
            )
        options = dict(
            min_dwell=poi.min_dwell,
            moft_name=poi.moft_name,
            measure=poi.measure,
            k=poi.k,
        )
        try:
            plan = plan_poi_aggregate(
                self.context, binding.layer, poi.by_level, **options
            )
            result = execute_poi_plan(
                plan, self.context, binding.layer, poi.by_level, **options
            )
        except PietQLExecutionError:
            raise
        except Exception as exc:
            raise PietQLExecutionError(str(exc)) from exc
        return result, (plan if explain else None)

    def _build_plan(
        self,
        query: ast.PietQLQuery,
        result: PietQLResult,
        delta: Mapping[str, float],
        elapsed: float,
    ) -> QueryPlan:
        """Reconstruct the executed pipeline as a costed plan tree.

        Unlike :func:`repro.query.planner.plan_count_objects_through`,
        Piet-QL's moving part is route-first (pre-agg when a registered
        store can serve the DURING run, else the grid-indexed scan), so
        the plan documents the route that *did* run: estimates come
        from the :class:`~repro.query.planner.CostModel` over table and
        geometry statistics, actuals from this execution's observer
        delta.  The rejected line still prices the road not taken when
        both routes were available.
        """
        model = CostModel()
        geo = query.geometric
        n_ids = len(result.geometry_ids)
        children: List[PlanNode] = [
            PlanNode(
                op="GeometricSubquery",
                detail=(
                    f"schema={geo.schema_name}, "
                    f"conditions={len(geo.conditions)}"
                ),
                actual_rows=n_ids,
                actual_seconds=delta.get("geometric_subquery_seconds", 0.0),
            )
        ]
        if query.olap is not None:
            label = f"{query.olap.function}({query.olap.value_name})"
            if query.olap.by_level is not None:
                label += f" BY {query.olap.by_level}"
            children.append(
                PlanNode(
                    op="OlapAggregate",
                    detail=label,
                    actual_rows=(
                        len(result.olap_result)
                        if result.olap_result is not None
                        else 0
                    ),
                )
            )
        mo = query.moving_objects
        if mo is None:
            root = PlanNode(
                op="Aggregate",
                detail="geometric result",
                est_rows=n_ids,
                est_cost=0.0,
                children=tuple(children),
                actual_rows=n_ids,
                actual_seconds=elapsed,
            )
            return QueryPlan(
                strategy="geometric",
                root=root,
                est_cost=0.0,
                alternatives=(),
                table=TableStatistics("", 0, 0, None, None),
                geometry=GeometryStatistics(n_ids, 0.0),
                executed=True,
                result_count=n_ids,
            )

        moft = self.context.moft(mo.moft_name)
        table = table_statistics(moft)
        binding = self.resolve(geo.target)
        geometry = geometry_statistics(
            self.context,
            (binding.layer, binding.kind),
            set(result.geometry_ids),
            moft,
        )
        n_geoms = geometry.count
        if mo.during:
            children.append(
                PlanNode(
                    op="DuringRestriction",
                    detail=", ".join(
                        f"{clause.level}={clause.member!r}"
                        for clause in mo.during
                    ),
                    actual_seconds=delta.get(
                        "during_restriction_seconds", 0.0
                    ),
                )
            )
        matched = (
            len(result.matched_objects)
            if result.matched_objects is not None
            else 0
        )
        if not mo.through_result:
            strategy = "count"
            costs = {strategy: table.rows * model.row_cost}
            body = PlanNode(
                op="CountRows",
                detail=f"moft={mo.moft_name}",
                est_rows=table.rows,
                est_cost=costs[strategy],
                actual_rows=matched,
            )
        else:
            scan_est = (
                model.scan_cost(
                    table.rows, n_geoms, geometry.coverage, indexed=True
                )
                if n_geoms
                else 0.0
            )
            costs = {"grid": scan_est}
            store = (
                self.context.preagg_for(
                    moft, binding.layer, binding.kind, result.geometry_ids
                )
                if n_geoms
                else None
            )
            if store is not None and not store.is_stale():
                costs["preagg"] = model.preagg_cost(
                    len(store.partition), n_geoms, 0, geometry.coverage
                )
            strategy = (
                "preagg" if delta.get("preagg_hits", 0) >= 1 else "grid"
            )
            if strategy == "preagg":
                body = PlanNode(
                    op="PreAggLookup",
                    detail=(
                        f"store={store.name if store is not None else '?'}"
                    ),
                    est_cost=costs.get("preagg"),
                    actual_rows=matched,
                    actual_seconds=delta.get("preagg_lookup_seconds", 0.0),
                )
            else:
                body = PlanNode(
                    op="GridScan",
                    detail=(
                        f"moft={mo.moft_name}, geoms={n_geoms}, "
                        f"coverage={geometry.coverage:.3f}"
                    ),
                    est_rows=table.rows,
                    est_cost=scan_est,
                    actual_rows=int(delta.get("scan_rows", 0)),
                    actual_seconds=delta.get("segment_scan_seconds", 0.0),
                )
        root = PlanNode(
            op="Aggregate",
            detail=(
                f"count_{mo.count_what.lower()}, moft={mo.moft_name}, "
                f"strategy={strategy}"
            ),
            est_rows=1,
            est_cost=costs[strategy],
            children=tuple(children) + (body,),
            actual_rows=matched,
            actual_seconds=elapsed,
        )
        alternatives = tuple(
            sorted(
                (
                    (name, cost)
                    for name, cost in costs.items()
                    if name != strategy
                ),
                key=lambda pair: pair[1],
            )
        )
        return QueryPlan(
            strategy=strategy,
            root=root,
            est_cost=costs[strategy],
            alternatives=alternatives,
            table=table,
            geometry=geometry,
            executed=True,
            result_count=(
                int(result.count) if result.count is not None else None
            ),
        )

    def _execute_olap(
        self,
        olap: "ast.OlapQuery",
        geo: "ast.GeometricQuery",
        geometry_ids: Set[Hashable],
    ) -> Dict[Hashable, float]:
        """Aggregate application-part values of the result members.

        The target's (layer, kind) determines the application attribute
        through the schema placements; result ids map to members via
        α-inverse, member values named ``olap.value_name`` are folded with
        the aggregate function, grouped by the ``BY`` level's rollup when
        present (the group key is the rolled-up member; ungrouped results
        use the single key ``"all"``).
        """
        from repro.olap.aggregation import AggregateFunction

        binding = self.resolve(geo.target)
        schema = self.context.gis.schema
        attribute = None
        for candidate in schema.attributes:
            placement = schema.placement(candidate)
            if (placement.layer, placement.kind) == (
                binding.layer,
                binding.kind,
            ):
                attribute = candidate
                break
        if attribute is None:
            raise PietQLExecutionError(
                f"no application attribute is placed on "
                f"{binding.layer}:{binding.kind}; cannot aggregate"
            )
        members = []
        for gid in geometry_ids:
            members.extend(self.context.gis.alpha_inverse(attribute, gid))
        if not members:
            return {}
        groups: Dict[Hashable, list] = {}
        dimension = schema.dimension_for_attribute(attribute)
        for member in members:
            value = self.context.gis.member_value(
                attribute, member, olap.value_name
            )
            if olap.by_level is None:
                key: Hashable = "all"
            else:
                if dimension is None:
                    raise PietQLExecutionError(
                        f"attribute {attribute!r} has no application "
                        f"dimension; cannot roll up to {olap.by_level!r}"
                    )
                instance = self.context.gis.application_instance(
                    dimension.name
                )
                key = instance.rollup(member, attribute, olap.by_level)
            groups.setdefault(key, []).append(value)
        function = AggregateFunction.parse(olap.function)
        return {key: function.apply(values) for key, values in groups.items()}

    def execute_geometric(self, geo: ast.GeometricQuery) -> Set[Hashable]:
        """Evaluate the geometric part to target-element ids."""
        with self.context.obs.stage("geometric_subquery"):
            return self._execute_geometric(geo)

    def _execute_geometric(self, geo: ast.GeometricQuery) -> Set[Hashable]:
        target_ref = geo.target
        result: Optional[Set[Hashable]] = None
        for condition in geo.conditions:
            ids = self._condition_ids(condition, target_ref)
            result = ids if result is None else result & ids
            if not result:
                return set()
        if result is None:
            binding = self.resolve(target_ref)
            return set(
                self.context.gis.layer(binding.layer).elements(binding.kind)
            )
        return result

    def _condition_ids(
        self, condition: ast.GeoCondition, target_ref: ast.LayerRef
    ) -> Set[Hashable]:
        """Target ids satisfying one condition (other operand existential)."""
        if condition.left == target_ref:
            other_ref, target_is_left = condition.right, True
        else:
            other_ref, target_is_left = condition.left, False
        target = self.resolve(target_ref)
        other = self.resolve(other_ref, condition.sublevel)
        predicate = condition.predicate
        if predicate == "intersection":
            predicate = "intersects"
        if target_is_left:
            pairs = self.context.geometry_pairs(
                target.layer, target.kind, predicate, other.layer, other.kind
            )
            return {a for a, _ in pairs}
        pairs = self.context.geometry_pairs(
            other.layer, other.kind, predicate, target.layer, target.kind
        )
        return {b for _, b in pairs}

    def _through_result_counter(
        self, binding: LayerBinding, geometry_ids: Set[Hashable]
    ) -> TrajectoryIntersectionCounter:
        """Build the trajectory counter over the geometric answer.

        Shared by the serial scan below and the sharded executor in
        :mod:`repro.parallel`, so both paths test against identical
        geometries and the same cached grid index.
        """
        elements = self.context.gis.layer(binding.layer).elements(
            binding.kind
        )
        return TrajectoryIntersectionCounter(
            {gid: elements[gid] for gid in geometry_ids},
            index=self.context.geometry_index(
                binding.layer, binding.kind, geometry_ids
            ),
            vectorized_prefilter=True,
        )

    def _scan_through_result(
        self,
        moft: MOFT,
        binding: LayerBinding,
        geometry_ids: Set[Hashable],
    ) -> Set[Hashable]:
        """THROUGH RESULT: objects whose trajectories hit the answer.

        The single-core seed path; :class:`repro.parallel
        .ShardedPietQLExecutor` overrides this with a sharded scan.
        """
        counter = self._through_result_counter(binding, geometry_ids)
        stats = EvaluationStats()
        matched = counter.matching_objects(moft, stats)
        self.context.obs.merge(stats)
        return matched

    def _preagg_through_result(
        self,
        base_moft: MOFT,
        allowed: Optional[Set[float]],
        binding: LayerBinding,
        geometry_ids: Set[Hashable],
    ) -> Optional[Set[Hashable]]:
        """Route THROUGH RESULT through a registered pre-aggregation store.

        Fires when a fresh :class:`~repro.preagg.PreAggStore` over
        exactly this MOFT materializes every answer geometry and the
        DURING-restricted instant set equals the instants of one granule
        run (``allowed=None`` — no DURING — is the full run).  Then the
        scan is replaced by the store's cells + spanning records, which
        the differential suite proves identical.  Returns None on any
        mismatch, counting a ``preagg_miss`` when stores are registered.
        """
        context = self.context
        store = context.preagg_for(
            base_moft, binding.layer, binding.kind, geometry_ids
        )

        def miss() -> None:
            if context.has_preagg:
                context.obs.incr("preagg_misses")
            return None

        if store is None or store.is_stale():
            return miss()
        with context.obs.stage("preagg_lookup"):
            partition = store.partition
            if len(partition) == 0:
                return miss()
            if allowed is None:
                run = (0, len(partition) - 1)
            else:
                wanted = np.sort(np.array(sorted(allowed), dtype=float))
                codes = partition.codes_for(wanted)
                if codes.size == 0 or (codes < 0).any():
                    return miss()
                first, last = int(codes.min()), int(codes.max())
                covered = partition.instants[
                    (partition.codes >= first) & (partition.codes <= last)
                ]
                if not np.array_equal(wanted, covered):
                    # The instant set cuts through a granule; serving it
                    # from whole-granule cells would over-count.
                    return miss()
                run = (first, last)
            matched = store.objects_through(geometry_ids, *run)
        context.obs.incr("preagg_hits")
        return matched

    def _execute_moving(
        self,
        mo: ast.MovingObjectQuery,
        geo: ast.GeometricQuery,
        geometry_ids: Set[Hashable],
    ) -> Tuple[float, Set[Hashable]]:
        obs = self.context.obs
        base_moft = self.context.moft(mo.moft_name)
        moft = base_moft
        allowed: Optional[Set[float]] = None
        with obs.stage("during_restriction"):
            for clause in mo.during:
                member: Hashable = clause.member
                instants = self.context.time.instants_where(
                    clause.level, member
                )
                if not instants and clause.member.replace(".", "", 1).isdigit():
                    # Numeric members may be stored as numbers.
                    instants = self.context.time.instants_where(
                        clause.level, float(clause.member)
                    ) | self.context.time.instants_where(
                        clause.level, int(float(clause.member))
                    )
                clause_instants = {float(t) for t in instants}
                allowed = (
                    clause_instants
                    if allowed is None
                    else allowed & clause_instants
                )
            if allowed is not None:
                moft = moft.restrict_instants(allowed)
        if mo.through_result:
            if not geometry_ids or len(moft) == 0:
                return 0.0, set()
            binding = self.resolve(geo.target)
            matched = self._preagg_through_result(
                base_moft, allowed, binding, geometry_ids
            )
            if matched is None:
                matched = self._scan_through_result(
                    moft, binding, geometry_ids
                )
        else:
            matched = moft.objects()
        if mo.count_what == "OBJECTS":
            return float(len(matched)), matched
        if mo.through_result:
            samples = sum(moft.sample_count(oid) for oid in matched)
        else:
            samples = len(moft)
        return float(samples), matched


def run(
    text: str,
    context: EvaluationContext,
    bindings: Mapping[str, LayerBinding] | None = None,
) -> PietQLResult:
    """Parse and execute Piet-QL text in one call."""
    return PietQLExecutor(context, bindings).execute(text)
