"""Spatial OLAP: roll-up and drill-down over per-(geometry, granule) cells.

The paper's aggregation walks the *temporal* hierarchy (hour → day → …);
the POI workload adds the symmetric *spatial* walk: fold per-place cells
up a geometric containment mapping (place → neighborhood → city) and
drill an aggregated group back down to the contributing places.  Cells
here are the canonical dicts the stores emit — ``{(gid, granule_code):
value}`` — so the same functions roll up visit counts (numbers), dwell
seconds (floats) and distinct-visitor sets (tuples) without caring which
store produced them.

The mapping itself usually comes from geometry:
:func:`poi_parent_mapping` locates every disc's center inside a parent
layer's polygons, which is the α-composed rollup of Definition 3 made
concrete for discs.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Tuple

from repro.errors import RollupError

__all__ = [
    "poi_parent_mapping",
    "spatial_drilldown",
    "spatial_rollup",
]

#: A cell key: (geometry id, granule code).
CellKey = Tuple[Hashable, int]


def _combine(existing, value):
    """Merge two cell values: numbers add, id collections union."""
    if isinstance(existing, (tuple, frozenset, set)):
        merged = set(existing)
        merged.update(value)
        return tuple(sorted(merged, key=repr))
    return existing + value


def spatial_rollup(
    cells: Mapping[CellKey, object],
    mapping: Mapping[Hashable, Hashable],
) -> Dict[CellKey, object]:
    """Fold cells along a gid → parent mapping, granule by granule.

    Numeric values (visits, dwell) are summed; collection values
    (distinct-visitor tuples) are unioned and re-canonicalized (sorted
    by ``repr``).  Every gid appearing in ``cells`` must be mapped — a
    hole in the containment mapping raises :class:`RollupError` rather
    than silently dropping a place's contribution.
    """
    out: Dict[CellKey, object] = {}
    for (gid, code), value in cells.items():
        if gid not in mapping:
            raise RollupError(
                f"geometry {gid!r} has no spatial parent in the mapping; "
                "cannot roll up without dropping its cells"
            )
        key = (mapping[gid], code)
        if key in out:
            out[key] = _combine(out[key], value)
        elif isinstance(value, (tuple, frozenset, set)):
            out[key] = tuple(sorted(value, key=repr))
        else:
            out[key] = value
    return dict(sorted(out.items(), key=lambda item: (repr(item[0][0]), item[0][1])))


def spatial_drilldown(
    cells: Mapping[CellKey, object],
    mapping: Mapping[Hashable, Hashable],
    parent: Hashable,
) -> Dict[CellKey, object]:
    """The fine cells contributing to one rolled-up parent.

    Drill-down cannot invent detail an aggregate destroyed, so it is
    answered against the *base* cells: the sub-dict whose gids map to
    ``parent``, in the cells' canonical order.  An unknown parent raises
    :class:`RollupError` (a typo should not read as "no activity").
    """
    if parent not in set(mapping.values()):
        raise RollupError(
            f"unknown spatial parent {parent!r}; known parents: "
            f"{sorted(set(mapping.values()), key=repr)}"
        )
    return {
        key: value
        for key, value in cells.items()
        if mapping.get(key[0]) == parent
    }


def poi_parent_mapping(
    gis,
    poi_layer: str,
    parent_layer: str,
    parent_kind: str = "polygon",
) -> Dict[Hashable, Hashable]:
    """Map each POI gid to the parent geometry containing its center.

    The disc's center point decides membership (a disc straddling a
    boundary belongs where its center lies, matching how the synthetic
    city assigns nodes to blocks).  POIs whose center no parent contains
    raise :class:`RollupError` — spatial rollup needs a partition, and a
    gap would silently lose visits.
    """
    from repro.geometry.overlay import geometry_contains
    from repro.gis import geometries as gk

    pois = gis.layer(poi_layer).elements(gk.POI)
    parents = gis.layer(parent_layer).elements(parent_kind)
    mapping: Dict[Hashable, Hashable] = {}
    for gid in sorted(pois, key=repr):
        center = pois[gid].center
        for parent_gid in sorted(parents, key=repr):
            if geometry_contains(parents[parent_gid], center):
                mapping[gid] = parent_gid
                break
        else:
            raise RollupError(
                f"POI {gid!r} center {center!r} lies in no "
                f"{parent_layer!r}:{parent_kind!r} geometry"
            )
    return mapping
