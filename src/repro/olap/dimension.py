"""Classical OLAP dimensions in the Hurtado–Mendelzon–Vaisman style.

The application part of the paper's GIS dimension schema (Definition 1) is
"a set of dimension schemas D defined as in [7]" — i.e. the dimension model
of Hurtado, Mendelzon & Vaisman (ICDE'99): a dimension is a name, a set of
levels (categories) with a partial order, and instances carry *rollup
functions* ``RUP`` between the members of comparable levels.  This module
implements that model, including the consistency condition that rollups
composed along different paths agree.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

import networkx as nx

from repro.errors import RollupError, SchemaError

#: The distinguished top level present in every dimension.
ALL_LEVEL = "All"
#: The single member of the top level.
ALL_MEMBER = "all"


class DimensionSchema:
    """A dimension schema: levels plus a parent/child partial order.

    Parameters
    ----------
    name:
        The dimension's name (``dname`` in Definition 1).
    edges:
        Pairs ``(child_level, parent_level)`` meaning the child rolls up to
        the parent (the paper's ``child → parent``).  The transitive partial
        order is derived from these edges.  The top level ``All`` is added
        automatically above every maximal level if absent.

    The schema must be a DAG with exactly one bottom level (a level with no
    incoming edge) from which every level is reachable.
    """

    def __init__(self, name: str, edges: Iterable[Tuple[str, str]]) -> None:
        if not name:
            raise SchemaError("dimension name must be non-empty")
        self.name = name
        graph = nx.DiGraph()
        for child, parent in edges:
            if child == parent:
                raise SchemaError(f"self rollup on level {child!r}")
            graph.add_edge(child, parent)
        if len(graph) == 0:
            raise SchemaError("dimension schema needs at least one rollup edge")
        # Add the distinguished All level above every maximal level.
        maximal = [
            node
            for node in list(graph.nodes)
            if node != ALL_LEVEL and graph.out_degree(node) == 0
        ]
        for node in maximal:
            graph.add_edge(node, ALL_LEVEL)
        if not nx.is_directed_acyclic_graph(graph):
            raise SchemaError(f"dimension {name!r} has a rollup cycle")
        bottoms = [node for node in graph.nodes if graph.in_degree(node) == 0]
        if len(bottoms) != 1:
            raise SchemaError(
                f"dimension {name!r} must have exactly one bottom level, "
                f"found {sorted(bottoms)}"
            )
        self._graph = graph
        self._bottom = bottoms[0]
        reachable = nx.descendants(graph, self._bottom) | {self._bottom}
        if reachable != set(graph.nodes):
            unreachable = sorted(set(graph.nodes) - reachable)
            raise SchemaError(
                f"levels {unreachable} unreachable from bottom level "
                f"{self._bottom!r} in dimension {name!r}"
            )

    # -- structure ----------------------------------------------------------

    @property
    def levels(self) -> Set[str]:
        """All level names, including ``All``."""
        return set(self._graph.nodes)

    @property
    def bottom_level(self) -> str:
        """The unique finest level."""
        return self._bottom

    def parents(self, level: str) -> Set[str]:
        """Direct parents of ``level`` in the rollup order."""
        self._check_level(level)
        return set(self._graph.successors(level))

    def children(self, level: str) -> Set[str]:
        """Direct children of ``level``."""
        self._check_level(level)
        return set(self._graph.predecessors(level))

    def edges(self) -> List[Tuple[str, str]]:
        """All direct (child, parent) pairs."""
        return list(self._graph.edges)

    def rolls_up_to(self, lower: str, upper: str) -> bool:
        """True when ``lower`` ⪯ ``upper`` in the transitive order."""
        self._check_level(lower)
        self._check_level(upper)
        return lower == upper or nx.has_path(self._graph, lower, upper)

    def path(self, lower: str, upper: str) -> List[str]:
        """Return one rollup path from ``lower`` to ``upper`` (inclusive)."""
        self._check_level(lower)
        self._check_level(upper)
        if not self.rolls_up_to(lower, upper):
            raise SchemaError(
                f"level {lower!r} does not roll up to {upper!r} "
                f"in dimension {self.name!r}"
            )
        return nx.shortest_path(self._graph, lower, upper)

    def all_paths(self, lower: str, upper: str) -> List[List[str]]:
        """Return every rollup path between two comparable levels."""
        self._check_level(lower)
        self._check_level(upper)
        if lower == upper:
            return [[lower]]
        return [list(p) for p in nx.all_simple_paths(self._graph, lower, upper)]

    def _check_level(self, level: str) -> None:
        if level not in self._graph:
            raise SchemaError(
                f"unknown level {level!r} in dimension {self.name!r}"
            )

    def __repr__(self) -> str:
        return f"DimensionSchema({self.name!r}, levels={sorted(self.levels)})"


class DimensionInstance:
    """Members and rollup functions for a dimension schema.

    The instance stores, for each direct edge ``(child, parent)`` of the
    schema, a total function from child members to parent members — the
    ``RUP`` functions of Definition 2.  Composed rollups between arbitrary
    comparable levels are derived; :meth:`check_consistency` verifies the
    HMV condition that all paths between two levels compose to the same
    function.
    """

    def __init__(self, schema: DimensionSchema) -> None:
        self.schema = schema
        self._members: Dict[str, Set[Hashable]] = {
            level: set() for level in schema.levels
        }
        self._members[ALL_LEVEL] = {ALL_MEMBER}
        self._rollups: Dict[Tuple[str, str], Dict[Hashable, Hashable]] = {
            edge: {} for edge in schema.edges()
        }
        # Mutation counter: bumped by every population call so derived
        # caches (e.g. TimeDimension granule partitions) can detect that
        # their snapshot went stale without hashing the whole instance.
        self._version = 0

    @property
    def version(self) -> int:
        """Monotone mutation counter (see population methods)."""
        return self._version

    # -- population ---------------------------------------------------------

    def add_member(self, level: str, member: Hashable) -> None:
        """Register a member at a level (idempotent)."""
        self.schema._check_level(level)
        if level == ALL_LEVEL and member != ALL_MEMBER:
            raise RollupError("the All level has the single member 'all'")
        if member not in self._members[level]:
            self._members[level].add(member)
            self._version += 1

    def set_rollup(
        self, child_level: str, child: Hashable, parent_level: str, parent: Hashable
    ) -> None:
        """Record that ``child`` (at child_level) rolls up to ``parent``.

        Both members are registered implicitly.  ``(child_level,
        parent_level)`` must be a direct schema edge.
        """
        edge = (child_level, parent_level)
        if edge not in self._rollups:
            raise RollupError(
                f"({child_level!r}, {parent_level!r}) is not a direct edge "
                f"of dimension {self.schema.name!r}"
            )
        self.add_member(child_level, child)
        self.add_member(parent_level, parent)
        existing = self._rollups[edge].get(child)
        if existing is not None and existing != parent:
            raise RollupError(
                f"member {child!r} of level {child_level!r} already rolls up "
                f"to {existing!r}, cannot remap to {parent!r}"
            )
        if existing is None:
            self._rollups[edge][child] = parent
            self._version += 1

    def add_members(self, level: str, members: Iterable[Hashable]) -> None:
        """Register many members at once."""
        for member in members:
            self.add_member(level, member)

    # -- access --------------------------------------------------------------

    def members(self, level: str) -> Set[Hashable]:
        """Return all members of a level."""
        self.schema._check_level(level)
        return set(self._members[level])

    def rollup(self, member: Hashable, from_level: str, to_level: str) -> Hashable:
        """Return the ancestor of ``member`` at ``to_level``.

        This is the paper's ``R^{to}_{from}(member)`` notation, e.g.
        ``R^{timeOfDay}_{timeId}(t)``.  Raises :class:`RollupError` when a
        link is missing.
        """
        if to_level == ALL_LEVEL:
            # Everything rolls up to 'all'; the member need not be registered
            # along a full path for this universal fact.
            return ALL_MEMBER
        path = self.schema.path(from_level, to_level)
        current = member
        for child_level, parent_level in zip(path, path[1:]):
            mapping = self._rollups[(child_level, parent_level)]
            if current not in mapping:
                raise RollupError(
                    f"no rollup for member {current!r} from level "
                    f"{child_level!r} to {parent_level!r} in dimension "
                    f"{self.schema.name!r}"
                )
            current = mapping[current]
        return current

    def try_rollup(
        self, member: Hashable, from_level: str, to_level: str
    ) -> Optional[Hashable]:
        """Like :meth:`rollup` but returns None on missing links."""
        try:
            return self.rollup(member, from_level, to_level)
        except RollupError:
            return None

    def descendants(
        self, member: Hashable, level: str, at_level: str
    ) -> Set[Hashable]:
        """Return the members of ``at_level`` that roll up to ``member``."""
        self.schema._check_level(at_level)
        if not self.schema.rolls_up_to(at_level, level):
            raise RollupError(
                f"level {at_level!r} does not roll up to {level!r}"
            )
        return {
            candidate
            for candidate in self._members[at_level]
            if self.try_rollup(candidate, at_level, level) == member
        }

    # -- validation ------------------------------------------------------------

    def check_consistency(self) -> None:
        """Verify totality and path-independence of the rollup functions.

        Raises :class:`RollupError` when some member lacks a rollup along a
        schema edge, or when two different paths between the same pair of
        levels map a member to different ancestors (the HMV consistency
        condition).
        """
        for (child_level, parent_level), mapping in self._rollups.items():
            if parent_level == ALL_LEVEL:
                continue  # handled universally
            for member in self._members[child_level]:
                if member not in mapping:
                    raise RollupError(
                        f"member {member!r} of level {child_level!r} has no "
                        f"rollup to {parent_level!r}"
                    )
        for lower in self.schema.levels:
            for upper in self.schema.levels:
                if lower == upper or upper == ALL_LEVEL:
                    continue
                paths = self.schema.all_paths(lower, upper)
                if len(paths) < 2:
                    continue
                for member in self._members[lower]:
                    images = set()
                    for path in paths:
                        current: Optional[Hashable] = member
                        for a, b in zip(path, path[1:]):
                            current = self._rollups[(a, b)].get(current)
                            if current is None:
                                break
                        if current is not None:
                            images.add(current)
                    if len(images) > 1:
                        raise RollupError(
                            f"member {member!r} rolls up from {lower!r} to "
                            f"{upper!r} ambiguously: {sorted(map(str, images))}"
                        )

    def __repr__(self) -> str:
        sizes = {
            level: len(members)
            for level, members in self._members.items()
            if members
        }
        return f"DimensionInstance({self.schema.name!r}, members={sizes})"
