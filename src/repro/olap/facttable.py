"""Fact tables over OLAP dimensions.

A fact table schema names its dimension attributes (each tied to a
dimension and a level of that dimension) and its measures; instances are
in-memory relations with a row API plus a columnar view for bulk
aggregation.  The classical fact tables of the paper's application part
("economic information based on these dimensions",
``(neighborhood, Year, Population)``) live here; the *GIS* and *moving
object* fact tables of Definitions 3 and Section 3 are built on top in
:mod:`repro.gis.facts` and :mod:`repro.mo.moft`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AggregationError, SchemaError
from repro.olap.aggregation import AggregateFunction, aggregate
from repro.olap.dimension import DimensionInstance


@dataclass(frozen=True)
class DimensionAttribute:
    """A fact-table column bound to a dimension level."""

    name: str
    dimension: str
    level: str


@dataclass(frozen=True)
class FactTableSchema:
    """Schema of a fact table: dimension attributes plus measures."""

    name: str
    dimension_attributes: Tuple[DimensionAttribute, ...]
    measures: Tuple[str, ...]

    def __init__(
        self,
        name: str,
        dimension_attributes: Sequence[DimensionAttribute],
        measures: Sequence[str],
    ) -> None:
        if not name:
            raise SchemaError("fact table name must be non-empty")
        attrs = tuple(dimension_attributes)
        meas = tuple(measures)
        names = [a.name for a in attrs] + list(meas)
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate column names in fact table {name!r}")
        if not attrs and not meas:
            raise SchemaError(f"fact table {name!r} has no columns")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "dimension_attributes", attrs)
        object.__setattr__(self, "measures", meas)

    @property
    def columns(self) -> List[str]:
        """All column names, dimension attributes first."""
        return [a.name for a in self.dimension_attributes] + list(self.measures)

    def attribute(self, name: str) -> DimensionAttribute:
        """Look up a dimension attribute by column name."""
        for attr in self.dimension_attributes:
            if attr.name == name:
                return attr
        raise SchemaError(
            f"no dimension attribute {name!r} in fact table {self.name!r}"
        )


class FactTable:
    """An in-memory relation conforming to a :class:`FactTableSchema`."""

    def __init__(self, schema: FactTableSchema) -> None:
        self.schema = schema
        self._columns: Dict[str, List[Hashable]] = {
            column: [] for column in schema.columns
        }
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- loading ----------------------------------------------------------------

    def insert(self, row: Mapping[str, Hashable]) -> None:
        """Append one row; all schema columns must be present."""
        missing = [c for c in self.schema.columns if c not in row]
        if missing:
            raise SchemaError(
                f"row missing columns {missing} for fact table "
                f"{self.schema.name!r}"
            )
        for column in self.schema.columns:
            self._columns[column].append(row[column])
        self._size += 1

    def insert_many(self, rows: Iterable[Mapping[str, Hashable]]) -> None:
        """Append many rows."""
        for row in rows:
            self.insert(row)

    # -- row access ---------------------------------------------------------------

    def rows(self) -> Iterator[Dict[str, Hashable]]:
        """Iterate over rows as dictionaries."""
        for i in range(self._size):
            yield {
                column: values[i] for column, values in self._columns.items()
            }

    def column(self, name: str) -> List[Hashable]:
        """Return a copy of one column."""
        try:
            return list(self._columns[name])
        except KeyError:
            raise SchemaError(
                f"no column {name!r} in fact table {self.schema.name!r}"
            ) from None

    def measure_array(self, name: str) -> np.ndarray:
        """Return a measure column as a NumPy array (bulk aggregation path)."""
        if name not in self.schema.measures:
            raise SchemaError(
                f"{name!r} is not a measure of fact table {self.schema.name!r}"
            )
        return np.asarray(self._columns[name], dtype=float)

    # -- relational operations ------------------------------------------------------

    def select(self, predicate) -> "FactTable":
        """Return a new fact table with the rows satisfying ``predicate``."""
        result = FactTable(self.schema)
        result.insert_many(row for row in self.rows() if predicate(row))
        return result

    def aggregate(
        self,
        function: AggregateFunction | str,
        measure: Optional[str] = None,
        group_by: Sequence[str] = (),
    ) -> Dict[Tuple[Hashable, ...], float]:
        """Apply ``γ_{f measure(group_by)}`` to this table."""
        if measure is not None and measure not in self.schema.columns:
            raise AggregationError(
                f"no column {measure!r} in fact table {self.schema.name!r}"
            )
        for attr in group_by:
            if attr not in self.schema.columns:
                raise AggregationError(
                    f"no column {attr!r} in fact table {self.schema.name!r}"
                )
        return aggregate(self.rows(), function, measure, group_by)

    def rolled_up(
        self,
        dimensions: Mapping[str, DimensionInstance],
        attribute_name: str,
        to_level: str,
    ) -> "FactTable":
        """Return a copy with ``attribute_name`` mapped to a coarser level.

        Every value of the attribute column is replaced by its ancestor at
        ``to_level`` using the rollup functions of the attribute's
        dimension; the schema of the result binds the column to the new
        level.  This is the classical OLAP ROLLUP along one dimension.
        """
        attr = self.schema.attribute(attribute_name)
        try:
            instance = dimensions[attr.dimension]
        except KeyError:
            raise SchemaError(
                f"no dimension instance provided for {attr.dimension!r}"
            ) from None
        new_attrs = tuple(
            DimensionAttribute(a.name, a.dimension, to_level)
            if a.name == attribute_name
            else a
            for a in self.schema.dimension_attributes
        )
        new_schema = FactTableSchema(
            self.schema.name, new_attrs, self.schema.measures
        )
        result = FactTable(new_schema)
        for row in self.rows():
            new_row = dict(row)
            new_row[attribute_name] = instance.rollup(
                row[attribute_name], attr.level, to_level
            )
            result.insert(new_row)
        return result
