"""Classical OLAP substrate: dimensions, fact tables, γ-aggregation, cubes.

Implements the application part of the paper's model — Hurtado–Mendelzon–
Vaisman dimensions with rollup functions, fact tables over them, the
aggregate operation of Definition 7 and a data-cube view.
"""

from repro.olap.dimension import (
    ALL_LEVEL,
    ALL_MEMBER,
    DimensionInstance,
    DimensionSchema,
)
from repro.olap.aggregation import (
    AggregateFunction,
    aggregate,
    aggregate_single,
    distinct_count,
)
from repro.olap.facttable import (
    DimensionAttribute,
    FactTable,
    FactTableSchema,
)
from repro.olap.cube import Cube
from repro.olap.solap import (
    poi_parent_mapping,
    spatial_drilldown,
    spatial_rollup,
)

__all__ = [
    "ALL_LEVEL",
    "ALL_MEMBER",
    "DimensionInstance",
    "DimensionSchema",
    "AggregateFunction",
    "aggregate",
    "aggregate_single",
    "distinct_count",
    "DimensionAttribute",
    "FactTable",
    "FactTableSchema",
    "Cube",
    "poi_parent_mapping",
    "spatial_drilldown",
    "spatial_rollup",
]
