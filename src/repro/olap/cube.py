"""A lightweight data-cube view over a fact table.

The paper frames OLAP data as "a data cube, where each cell ... contains a
measure or set of (probably aggregated) measures of interest".  This module
provides the standard cube operations over :class:`~repro.olap.facttable.FactTable`:
roll-up, drill-down (against the retained base table), slice and dice.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Sequence, Tuple

from repro.errors import AggregationError, SchemaError
from repro.olap.aggregation import AggregateFunction
from repro.olap.dimension import DimensionInstance
from repro.olap.facttable import FactTable


class Cube:
    """A cube = base fact table + dimension instances + a measure policy.

    The cube never mutates the base table; every operation returns either a
    new :class:`Cube` (slice/dice) or a plain dict of cells (rollup).
    """

    def __init__(
        self,
        fact_table: FactTable,
        dimensions: Mapping[str, DimensionInstance],
    ) -> None:
        self.fact_table = fact_table
        self.dimensions = dict(dimensions)
        for attr in fact_table.schema.dimension_attributes:
            if attr.dimension not in self.dimensions:
                raise SchemaError(
                    f"cube is missing dimension instance {attr.dimension!r}"
                )
            schema = self.dimensions[attr.dimension].schema
            if attr.level not in schema.levels:
                raise SchemaError(
                    f"fact attribute {attr.name!r} bound to unknown level "
                    f"{attr.level!r} of dimension {attr.dimension!r}"
                )

    def __len__(self) -> int:
        return len(self.fact_table)

    @classmethod
    def from_rows(
        cls,
        name: str,
        attributes: Sequence[Tuple[str, str, str, DimensionInstance]],
        measures: Sequence[str],
        rows: Sequence[Mapping[str, Hashable]],
    ) -> "Cube":
        """Build a cube from plain rows in one call.

        ``attributes`` is a sequence of ``(column, dimension, level,
        instance)`` tuples; the fact-table schema and the dimension
        mapping are derived from it.  Used by derived stores (e.g.
        :meth:`repro.preagg.PreAggStore.as_cube`) that materialize their
        cells as a cube without hand-assembling schema objects.
        """
        from repro.olap.facttable import DimensionAttribute, FactTableSchema

        schema = FactTableSchema(
            name,
            [
                DimensionAttribute(column, dimension, level)
                for column, dimension, level, _ in attributes
            ],
            measures,
        )
        table = FactTable(schema)
        table.insert_many(rows)
        return cls(
            table,
            {dimension: instance for _, dimension, _, instance in attributes},
        )

    # -- cube operations -----------------------------------------------------

    def rollup(
        self,
        levels: Mapping[str, str],
        function: AggregateFunction | str,
        measure: Optional[str] = None,
    ) -> Dict[Tuple[Hashable, ...], float]:
        """Aggregate cells at the requested granularity.

        Parameters
        ----------
        levels:
            Mapping ``attribute name -> target level``.  Attributes not
            mentioned are aggregated away entirely (rolled up to All and
            dropped from the group key).
        function, measure:
            The aggregation to apply within each cell.

        Returns
        -------
        dict
            Mapping from tuples of the target-level members (in the order
            of ``levels``) to aggregated measure values.
        """
        table = self.fact_table
        for attribute_name, level in levels.items():
            table = table.rolled_up(self.dimensions, attribute_name, level)
        return table.aggregate(function, measure, group_by=list(levels))

    def slice(self, attribute_name: str, member: Hashable) -> "Cube":
        """Fix one dimension attribute to a member, dropping other values."""
        self.fact_table.schema.attribute(attribute_name)  # validates
        sliced = self.fact_table.select(
            lambda row: row[attribute_name] == member
        )
        return Cube(sliced, self.dimensions)

    def slice_at_level(
        self, attribute_name: str, level: str, member: Hashable
    ) -> "Cube":
        """Slice by a member of a *coarser* level.

        Keeps base rows whose attribute value rolls up to ``member`` at
        ``level`` — e.g. slice daily facts by month.
        """
        attr = self.fact_table.schema.attribute(attribute_name)
        instance = self.dimensions[attr.dimension]
        sliced = self.fact_table.select(
            lambda row: instance.try_rollup(
                row[attribute_name], attr.level, level
            )
            == member
        )
        return Cube(sliced, self.dimensions)

    def dice(self, predicate) -> "Cube":
        """Keep the rows satisfying an arbitrary row predicate."""
        return Cube(self.fact_table.select(predicate), self.dimensions)

    def drilldown(
        self,
        levels: Mapping[str, str],
        function: AggregateFunction | str,
        measure: Optional[str] = None,
    ) -> Dict[Tuple[Hashable, ...], float]:
        """Re-aggregate at a finer granularity.

        Since the cube retains its base table, drill-down is just a rollup
        to finer levels; the method exists to make intent explicit and to
        validate that each requested level is at or below the attribute's
        base level is not required (any level of the dimension works).
        """
        return self.rollup(levels, function, measure)
