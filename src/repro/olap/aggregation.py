"""The aggregate operation of Definition 7 (after Consens & Mendelzon).

``γ_{f A(X)}(r)`` groups the relation ``r`` by the attribute list ``X`` and
aggregates attribute ``A`` within each group with ``f`` from
``AGG = {MIN, MAX, COUNT, SUM, AVG}``.  The paper applies this operator to
the spatio-temporal region ``C`` — a relation of ``(Oid, t[, gid])`` tuples
— to answer every moving-object aggregate query.
"""

from __future__ import annotations

import enum
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import AggregationError


class AggregateFunction(enum.Enum):
    """The aggregate functions of Definition 7."""

    MIN = "MIN"
    MAX = "MAX"
    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"

    @classmethod
    def parse(cls, name: str) -> "AggregateFunction":
        """Parse a (case-insensitive) function name."""
        try:
            return cls[name.strip().upper()]
        except KeyError:
            raise AggregationError(
                f"unknown aggregate function {name!r}; "
                f"expected one of {[f.value for f in cls]}"
            ) from None

    def apply(self, values: Sequence) -> float:
        """Apply the function to a non-empty sequence of values.

        COUNT counts values (including duplicates); the numeric functions
        require numeric inputs.
        """
        if len(values) == 0:
            raise AggregationError(f"{self.value} over an empty group")
        if self is AggregateFunction.COUNT:
            return len(values)
        try:
            if self is AggregateFunction.MIN:
                return min(values)
            if self is AggregateFunction.MAX:
                return max(values)
            if self is AggregateFunction.SUM:
                return sum(values)
            return sum(values) / len(values)
        except TypeError as exc:
            raise AggregationError(
                f"{self.value} applied to non-numeric values"
            ) from exc


Row = Mapping[str, Hashable]


def aggregate(
    rows: Iterable[Row],
    function: AggregateFunction | str,
    measure: Optional[str],
    group_by: Sequence[str] = (),
) -> Dict[Tuple[Hashable, ...], float]:
    """Compute ``γ_{f measure(group_by)}(rows)``.

    Parameters
    ----------
    rows:
        The relation, as an iterable of mappings.
    function:
        Aggregate function (enum or name).
    measure:
        The attribute ``A`` to aggregate.  May be None for COUNT, which then
        counts rows.
    group_by:
        The grouping attribute list ``X``.  Empty means one global group,
        keyed by the empty tuple.

    Returns
    -------
    dict
        Mapping from group key (tuple of the ``group_by`` values) to the
        aggregated value.
    """
    if isinstance(function, str):
        function = AggregateFunction.parse(function)
    if measure is None and function is not AggregateFunction.COUNT:
        raise AggregationError(f"{function.value} requires a measure attribute")
    groups: Dict[Tuple[Hashable, ...], List] = {}
    for row in rows:
        try:
            key = tuple(row[attr] for attr in group_by)
        except KeyError as exc:
            raise AggregationError(
                f"grouping attribute {exc.args[0]!r} missing from row"
            ) from None
        if measure is None:
            value: Hashable = 1
        else:
            try:
                value = row[measure]
            except KeyError:
                raise AggregationError(
                    f"measure attribute {measure!r} missing from row"
                ) from None
        groups.setdefault(key, []).append(value)
    return {key: function.apply(values) for key, values in groups.items()}


def aggregate_single(
    rows: Iterable[Row],
    function: AggregateFunction | str,
    measure: Optional[str] = None,
) -> float:
    """Aggregate the whole relation into a single value.

    Raises :class:`AggregationError` when the relation is empty, except for
    COUNT which returns 0 (the count of an empty relation is well defined).
    """
    if isinstance(function, str):
        function = AggregateFunction.parse(function)
    result = aggregate(rows, function, measure, group_by=())
    if not result:
        if function is AggregateFunction.COUNT:
            return 0
        raise AggregationError(f"{function.value} over an empty relation")
    return result[()]


def distinct_count(rows: Iterable[Row], attribute: str) -> int:
    """Count distinct values of ``attribute`` over the relation.

    The paper's query 1 ("number of cars in region South...") counts
    *object identifiers*, not samples; that is a COUNT DISTINCT, provided
    here as a convenience alongside the five standard functions.
    """
    seen = set()
    for row in rows:
        try:
            seen.add(row[attribute])
        except KeyError:
            raise AggregationError(
                f"attribute {attribute!r} missing from row"
            ) from None
    return len(seen)
